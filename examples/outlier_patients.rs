//! The §1 outlier-analysis scenario: AVG-constrained ACQs.
//!
//! "Select patients who had extremely high average cost": the analyst
//! constrains the AVG aggregate of the result set. AVG lacks its own
//! optimal substructure but decomposes into SUM and COUNT (§2.6), which is
//! exactly how the engine's mergeable states evaluate it.
//!
//! ```text
//! cargo run --release --example outlier_patients
//! ```

use acquire::core::{run_acquire, AcquireConfig, EvalLayerKind};
use acquire::datagen::{patients, GenConfig};
use acquire::engine::{Catalog, Executor};
use acquire::query::{
    AcqQuery, AggConstraint, AggErrorFn, AggregateSpec, CmpOp, ColRef, Interval, Predicate,
    RefineSide,
};

fn main() {
    let mut catalog = Catalog::new();
    catalog
        .register(patients::patients(&GenConfig::uniform(50_000)).expect("patients"))
        .expect("register");
    let table = catalog.table("patients").expect("table");

    // Start from a cohort with low blood pressure and plenty of exercise —
    // cheap patients — and ask ACQUIRE to relax the cohort until its average
    // annual cost reaches $40K (hunting the expensive outliers).
    let bp_domain = table.numeric_domain("systolic_bp").expect("numeric");
    let ex_domain = table.numeric_domain("exercise_hours").expect("numeric");
    let query = AcqQuery::builder()
        .table("patients")
        .predicate(
            Predicate::select(
                ColRef::new("patients", "systolic_bp"),
                Interval::new(bp_domain.lo(), 120.0),
                RefineSide::Upper,
            )
            .with_domain(bp_domain),
        )
        .predicate(
            Predicate::select(
                ColRef::new("patients", "exercise_hours"),
                Interval::new(8.0, ex_domain.hi()),
                RefineSide::Lower,
            )
            .with_domain(ex_domain),
        )
        .constraint(AggConstraint::new(
            AggregateSpec::avg(ColRef::new("patients", "annual_cost")),
            CmpOp::Ge,
            40_000.0,
        ))
        .error_fn(AggErrorFn::HingeRelative)
        .build()
        .expect("valid AVG ACQ");

    println!("Input ACQ:\n  {}\n", query.to_sql());

    let mut exec = Executor::new(catalog);
    let outcome = run_acquire(
        &mut exec,
        &query,
        &AcquireConfig::default(),
        EvalLayerKind::GridIndex,
    )
    .expect("acquire");

    println!(
        "Original cohort AVG(annual_cost) = {:.0}; target >= 40000; satisfied = {}",
        outcome.original_aggregate, outcome.satisfied
    );
    let best = outcome
        .best()
        .or(outcome.closest.as_ref())
        .expect("candidate");
    println!(
        "\nRecommended cohort (AVG = {:.0}, refinement {:.1}):\n  {}",
        best.aggregate, best.qscore, best.sql
    );
    println!(
        "\nSearch: {} grid queries; {}",
        outcome.explored, outcome.stats
    );
}

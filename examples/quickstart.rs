//! Quickstart: the smallest possible ACQUIRE session.
//!
//! Builds a tiny table by hand, states a COUNT-constrained query through the
//! builder API, and lets ACQUIRE recommend refined queries.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use acquire::core::{run_acquire, AcquireConfig, EvalLayerKind};
use acquire::engine::{Catalog, DataType, Executor, Field, TableBuilder, Value};
use acquire::query::{
    AcqQuery, AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide,
};

fn main() {
    // --- 1. A products table ------------------------------------------------
    let mut b = TableBuilder::new(
        "products",
        vec![
            Field::new("price", DataType::Float),
            Field::new("rating", DataType::Float),
        ],
    )
    .expect("schema");
    for i in 0..1_000 {
        b.push_row(vec![
            Value::Float(5.0 + f64::from(i) * 0.5), // prices 5 .. 504.5
            Value::Float(f64::from(i % 50) / 10.0), // ratings 0 .. 4.9
        ]);
    }
    let mut catalog = Catalog::new();
    catalog
        .register(b.finish().expect("table"))
        .expect("register");

    // --- 2. An Aggregation Constrained Query --------------------------------
    // "Products under $50 with rating at least 4.0" — but we need exactly 300
    // of them for the campaign, and the original query is far too strict.
    let query = AcqQuery::builder()
        .table("products")
        .predicate(Predicate::select(
            ColRef::new("products", "price"),
            Interval::new(5.0, 50.0),
            RefineSide::Upper, // the price cap may move up
        ))
        .predicate(Predicate::select(
            ColRef::new("products", "rating"),
            Interval::new(4.0, 4.9),
            RefineSide::Lower, // the rating floor may move down
        ))
        .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 300.0))
        .build()
        .expect("valid ACQ");

    println!("Input ACQ:\n  {}\n", query.to_sql());

    // --- 3. Refine ----------------------------------------------------------
    let mut exec = Executor::new(catalog);
    let outcome = run_acquire(
        &mut exec,
        &query,
        &AcquireConfig::default(),
        EvalLayerKind::GridIndex,
    )
    .expect("acquire");

    println!(
        "original COUNT = {}, target = 300, satisfied = {}",
        outcome.original_aggregate, outcome.satisfied
    );
    println!(
        "explored {} grid queries in {} layers; evaluation-layer work: {}\n",
        outcome.explored, outcome.layers, outcome.stats
    );
    for (i, r) in outcome.queries.iter().take(5).enumerate() {
        println!(
            "#{i}: QScore {:.2}, COUNT {}, error {:.4}\n    {}",
            r.qscore, r.aggregate, r.error, r.sql
        );
    }
    assert!(outcome.satisfied, "this example's target is reachable");
}

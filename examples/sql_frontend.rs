//! A tour of the ACQ SQL dialect (§2.1): what parses, what binds, and the
//! diagnostics the frontend produces.
//!
//! ```text
//! cargo run --example sql_frontend
//! ```

use acquire::datagen::{tpch, GenConfig};
use acquire::sql::{compile, parse};

fn main() {
    let catalog = tpch::generate_q2(&GenConfig::uniform(5_000)).expect("tpch tables");

    println!("== statements that compile ==\n");
    let good = [
        // The paper's Q2' verbatim (modulo column availability).
        "SELECT * FROM supplier, part, partsupp \
         CONSTRAINT SUM(ps_availqty) >= 0.1M \
         WHERE (s_suppkey = ps_suppkey) NOREFINE AND (p_partkey = ps_partkey) NOREFINE \
         AND (p_retailprice < 1000) AND (s_acctbal < 2000) AND (p_size = 10) NOREFINE",
        // Ranges split into two independently refinable one-sided predicates.
        "SELECT * FROM part CONSTRAINT COUNT(*) = 2K WHERE 10 <= p_size <= 20",
        // Magnitude suffixes, unqualified columns, AVG decomposition.
        "SELECT * FROM partsupp CONSTRAINT AVG(ps_supplycost) >= 0.5K WHERE ps_availqty < 5000",
        // A refinable equi-join (becomes a band |l - r| <= w).
        "SELECT * FROM part, partsupp CONSTRAINT COUNT(*) = 1K \
         WHERE p_partkey = ps_partkey AND p_retailprice < 1200",
    ];
    for sql in good {
        let q = compile(sql, &catalog).expect("compiles");
        println!(
            "ok: {} flexible predicate(s), {} structural join(s)",
            q.dims(),
            q.structural_joins.len()
        );
        println!("    {}\n", q.to_sql());
    }

    println!("== diagnostics ==\n");
    let bad = [
        // STDDEV lacks the optimal substructure property (§2.6).
        "SELECT * FROM part CONSTRAINT STDDEV(p_size) = 5 WHERE p_retailprice < 1000",
        // ACQs need a CONSTRAINT clause.
        "SELECT * FROM part WHERE p_size < 10",
        // Unknown column.
        "SELECT * FROM part CONSTRAINT COUNT(*) = 10 WHERE p_nope < 10",
        // Ambiguous unqualified column across two tables would also fail;
        // here: a join with an inequality is not a refinable predicate.
        "SELECT * FROM part, partsupp CONSTRAINT COUNT(*) = 10 WHERE p_partkey < ps_partkey",
    ];
    for sql in bad {
        match compile(sql, &catalog) {
            Ok(_) => unreachable!("{sql} should not compile"),
            Err(e) => println!("error: {e}\n    on: {sql}\n"),
        }
    }

    println!("== raw parse tree ==\n");
    let ast =
        parse("SELECT * FROM t CONSTRAINT COUNT(*) = 1M WHERE 25 <= age <= 35").expect("parses");
    println!("{ast:#?}");
}

//! The §3 "estimation and/or sampling" evaluation-layer strategies in
//! action: run the same ACQ search exactly, over a 10% Bernoulli sample,
//! and over per-dimension histograms — then verify every recommendation
//! against the full data.
//!
//! ```text
//! cargo run --release --example approximate_search
//! ```

use std::time::Instant;

use acquire::core::{
    acquire, run_acquire, AcquireConfig, EvalLayerKind, HistogramEstimator, RefinedSpace,
};
use acquire::datagen::{tpch, GenConfig};
use acquire::engine::{sample_catalog_tables, scale_target_for_sample, Catalog, Executor};
use acquire::query::{
    AcqQuery, AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide,
};

fn exact_count(catalog: &Catalog, query: &AcqQuery, pscores: &[f64]) -> f64 {
    let mut exec = Executor::new(catalog.clone());
    let mut q = query.clone();
    exec.populate_domains(&mut q).expect("domains");
    let rq = exec.resolve(&q).expect("resolve");
    let rel = exec.base_relation(&rq, pscores).expect("relation");
    exec.full_aggregate(&rq, &rel, pscores)
        .expect("aggregate")
        .value()
        .unwrap_or(0.0)
}

fn main() {
    let rows = 200_000;
    let target = 60_000.0;
    let catalog = tpch::generate_lineitem(&GenConfig::uniform(rows)).expect("lineitem");
    let table = catalog.table("lineitem").expect("table");

    let mut b = AcqQuery::builder().table("lineitem");
    for col in ["l_quantity", "l_extendedprice"] {
        let domain = table.numeric_domain(col).expect("numeric");
        b = b.predicate(
            Predicate::select(
                ColRef::new("lineitem", col),
                Interval::new(domain.lo(), domain.lo() + 0.4 * domain.width()),
                RefineSide::Upper,
            )
            .with_domain(domain),
        );
    }
    let query = b
        .constraint(AggConstraint::new(
            AggregateSpec::count(),
            CmpOp::Eq,
            target,
        ))
        .build()
        .expect("query");
    let cfg = AcquireConfig::default();
    println!("ACQ: {}\n", query.to_sql());

    // --- exact -------------------------------------------------------------
    let t0 = Instant::now();
    let mut exec = Executor::new(catalog.clone());
    let exact = run_acquire(&mut exec, &query, &cfg, EvalLayerKind::GridIndex).expect("exact");
    let exact_ms = t0.elapsed().as_secs_f64() * 1e3;
    let best = exact.best().expect("satisfiable").clone();
    println!(
        "exact      : {:8.1} ms  refinement {:6.2}  count {} (verified {})",
        exact_ms,
        best.qscore,
        best.aggregate,
        exact_count(&catalog, &query, &best.pscores)
    );

    // --- 10% Bernoulli sample (§3 "sampling", Fig. 10a's 1K mimic) ----------
    let t0 = Instant::now();
    let (sampled, rate) = sample_catalog_tables(&catalog, &["lineitem"], 0.1, 42).expect("sample");
    let squery = scale_target_for_sample(&query, rate);
    let mut exec = Executor::new(sampled);
    let s = run_acquire(&mut exec, &squery, &cfg, EvalLayerKind::GridIndex).expect("sampled");
    let sample_ms = t0.elapsed().as_secs_f64() * 1e3;
    let sbest = s.best().expect("satisfiable").clone();
    let verified = exact_count(&catalog, &query, &sbest.pscores);
    println!(
        "10% sample : {:8.1} ms  refinement {:6.2}  full-data count {} (target {target}, err {:.3})",
        sample_ms,
        sbest.qscore,
        verified,
        (verified - target).abs() / target
    );

    // --- histogram estimation (§3 "estimation") -----------------------------
    let t0 = Instant::now();
    let mut q = query.clone();
    Executor::new(catalog.clone())
        .populate_domains(&mut q)
        .expect("domains");
    let space = RefinedSpace::new(&q, &cfg).expect("space");
    let caps = space.caps();
    let mut exec = Executor::new(catalog.clone());
    let mut est = HistogramEstimator::new(&mut exec, &q, &caps, space.step()).expect("estimator");
    let e = acquire(&mut est, &q, &cfg).expect("estimated");
    let est_ms = t0.elapsed().as_secs_f64() * 1e3;
    let ebest = e.best().expect("satisfiable").clone();
    let verified = exact_count(&catalog, &query, &ebest.pscores);
    println!(
        "histograms : {:8.1} ms  refinement {:6.2}  full-data count {} (target {target}, err {:.3})",
        est_ms,
        ebest.qscore,
        verified,
        (verified - target).abs() / target
    );

    println!(
        "\nAll three searches explored {} / {} / {} grid queries respectively.",
        exact.explored, s.explored, e.explored
    );
    println!(
        "Note: l_extendedprice = l_quantity x unit price, so these two dimensions are\n\
         correlated and the histogram layer's independence assumption (AVI) shows its\n\
         classic bias — sampling does not suffer from it. See `HistogramEstimator` docs."
    );
}

//! Example 1 of the paper: HighStyle Designers' ad campaign.
//!
//! Campaign manager Alice targets users by demographics but must reach a
//! budgeted audience size. Fixed criteria (gender, city list) are NOREFINE;
//! the rest may be relaxed. The query is stated in the paper's SQL dialect
//! (`CONSTRAINT` + `NOREFINE`) and compiled through `acq-sql`.
//!
//! ```text
//! cargo run --release --example ad_campaign
//! ```

use acquire::core::{run_acquire, AcquireConfig, EvalLayerKind};
use acquire::datagen::{users, GenConfig};
use acquire::engine::{Catalog, Executor};
use acquire::sql::compile;

fn main() {
    // The audience table (100K users; Example 1 reasons about 1M+ — use
    // `GenConfig::uniform(1_000_000)` for the full-size run).
    let mut catalog = Catalog::new();
    catalog
        .register(users::users(&GenConfig::uniform(100_000)).expect("users"))
        .expect("register");

    // Q1' from the paper, adapted to this table's demographics: the budget
    // buys 10K users. Location and gender stay fixed; age, income and
    // activity may be refined.
    let sql = "SELECT * FROM users \
               CONSTRAINT COUNT(*) = 10K \
               WHERE city IN ('Boston', 'New York', 'Seattle', 'Miami', 'Austin') NOREFINE \
               AND gender = 'Women' NOREFINE \
               AND 22 <= age <= 50 \
               AND income <= 150000 \
               AND daily_minutes <= 400";
    let query = compile(sql, &catalog).expect("compile ACQ");
    println!("Input ACQ:\n  {sql}\n");

    let mut exec = Executor::new(catalog);
    let outcome = run_acquire(
        &mut exec,
        &query,
        &AcquireConfig::default(),
        EvalLayerKind::GridIndex,
    )
    .expect("acquire");

    println!(
        "Facebook-style estimate for the original query: {} users (target 10000)\n",
        outcome.original_aggregate
    );
    if outcome.satisfied {
        println!(
            "ACQUIRE recommends {} alternative refinements:",
            outcome.queries.len()
        );
        for (i, r) in outcome.queries.iter().take(5).enumerate() {
            println!(
                "  #{i}: audience {} (err {:.3}), refinement {:.1}\n      {}",
                r.aggregate, r.error, r.qscore, r.sql
            );
        }
    } else if let Some(closest) = &outcome.closest {
        println!(
            "No refinement reaches 10K within tolerance; closest audience: {}",
            closest.aggregate
        );
    }
    println!(
        "\nSearch cost: {} grid queries, {} evaluation-layer work",
        outcome.explored, outcome.stats
    );
}

//! §7.2: contracting a query that returns too many results.
//!
//! The expansion driver handles undershooting queries; when the original
//! query *overshoots* (`COUNT <= N` budgets, dashboards with row limits),
//! ACQUIRE constructs `Q'_min` — each predicate at its minimum — and
//! searches the space between `Q'_min` and `Q`, minimising refinement with
//! respect to `Q`.
//!
//! ```text
//! cargo run --release --example contraction
//! ```

use acquire::core::{run_contraction, AcquireConfig, EvalLayerKind};
use acquire::datagen::{users, GenConfig};
use acquire::engine::{Catalog, Executor};
use acquire::query::{
    AcqQuery, AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide,
};

fn main() {
    let mut catalog = Catalog::new();
    catalog
        .register(users::users(&GenConfig::uniform(50_000)).expect("users"))
        .expect("register");
    let table = catalog.table("users").expect("table");

    // A broad mailing-list query — but the mail budget only covers 3,000
    // recipients, so the aggregate constraint is COUNT(*) <= 3000.
    let age_domain = table.numeric_domain("age").expect("numeric");
    let income_domain = table.numeric_domain("income").expect("numeric");
    let query = AcqQuery::builder()
        .table("users")
        .predicate(
            Predicate::select(
                ColRef::new("users", "age"),
                Interval::new(age_domain.lo(), 60.0),
                RefineSide::Upper,
            )
            .with_domain(age_domain),
        )
        .predicate(
            Predicate::select(
                ColRef::new("users", "income"),
                Interval::new(income_domain.lo(), 150_000.0),
                RefineSide::Upper,
            )
            .with_domain(income_domain),
        )
        .constraint(AggConstraint::new(
            AggregateSpec::count(),
            CmpOp::Le,
            3_000.0,
        ))
        .build()
        .expect("valid ACQ");

    println!("Input ACQ (overshooting):\n  {}\n", query.to_sql());

    let mut exec = Executor::new(catalog);
    let outcome = run_contraction(
        &mut exec,
        &query,
        &AcquireConfig::default(),
        EvalLayerKind::GridIndex,
    )
    .expect("contract");

    println!("satisfied = {}", outcome.satisfied);
    for (i, r) in outcome.queries.iter().take(5).enumerate() {
        println!(
            "  #{i}: audience {} (contraction wrt Q: {:.1})\n      {}",
            r.aggregate, r.qscore, r.sql
        );
    }
    let best = outcome
        .best()
        .expect("the budget is reachable by contraction");
    assert!(best.aggregate <= 3_000.0 * 1.05);
    println!(
        "\nBest contraction keeps {} of the original audience while meeting the budget.",
        best.aggregate
    );
}

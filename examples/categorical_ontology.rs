//! §7.3: refining categorical predicates through an ontology tree.
//!
//! The paper's Fig. 7 example: a query for restaurants serving Gyro can be
//! relaxed to "any Greek", then "any Mediterranean", by rolling the accepted
//! category up the taxonomy; each roll-up level is a fixed PScore step.
//!
//! ```text
//! cargo run --example categorical_ontology
//! ```

use std::sync::Arc;

use acquire::core::{run_acquire, AcquireConfig, EvalLayerKind};
use acquire::engine::{Catalog, DataType, Executor, Field, TableBuilder, Value};
use acquire::query::{
    AcqQuery, AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, OntologyTree, Predicate,
    RefineSide,
};

fn main() {
    // A restaurants table whose `cuisine` column carries taxonomy leaves.
    let ontology = Arc::new(OntologyTree::sample_cuisine());
    let cuisines = ["Gyro", "Falafel", "Shawarma", "Sushi", "PadThai"];
    let mut b = TableBuilder::new(
        "restaurants",
        vec![
            Field::new("cuisine", DataType::Str),
            Field::new("price", DataType::Float),
        ],
    )
    .expect("schema");
    for i in 0..500 {
        b.push_row(vec![
            Value::from(cuisines[i % cuisines.len()]),
            Value::Float(5.0 + (i % 40) as f64),
        ]);
    }
    let mut catalog = Catalog::new();
    catalog
        .register(b.finish().expect("table"))
        .expect("register");

    // "Places serving Gyro under $15" — but we want 250 options. Only 100
    // restaurants serve Gyro, so the cuisine must be rolled up (and/or the
    // price cap relaxed).
    let query = AcqQuery::builder()
        .table("restaurants")
        .predicate(Predicate::categorical(
            ColRef::new("restaurants", "cuisine"),
            Arc::clone(&ontology),
            vec!["Gyro".to_string()],
        ))
        .predicate(Predicate::select(
            ColRef::new("restaurants", "price"),
            Interval::new(5.0, 15.0),
            RefineSide::Upper,
        ))
        .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Ge, 250.0))
        .build()
        .expect("valid ACQ");

    println!("Input ACQ:\n  {}\n", query.to_sql());
    println!(
        "Taxonomy distances from Gyro: Falafel = {} roll-ups, Sushi = {} roll-ups\n",
        ontology
            .rollup_distance(&["Gyro".to_string()], "Falafel")
            .unwrap(),
        ontology
            .rollup_distance(&["Gyro".to_string()], "Sushi")
            .unwrap(),
    );

    let mut exec = Executor::new(catalog);
    let outcome = run_acquire(
        &mut exec,
        &query,
        &AcquireConfig::default(),
        EvalLayerKind::GridIndex,
    )
    .expect("acquire");

    println!(
        "original COUNT = {}, satisfied = {}",
        outcome.original_aggregate, outcome.satisfied
    );
    for (i, r) in outcome.queries.iter().take(4).enumerate() {
        println!(
            "  #{i}: {} restaurants (refinement {:.1})\n      {}",
            r.aggregate, r.qscore, r.sql
        );
    }
}

//! Example 2 of the paper: HybridCars' supply-chain order (query Q2').
//!
//! HybridCars needs 100,000 units of a part: the constraint is on
//! `SUM(ps_availqty)` over a three-way join `supplier ⋈ part ⋈ partsupp`.
//! Key joins and exact part-spec predicates are NOREFINE; price and account
//! -balance predicates may be refined.
//!
//! ```text
//! cargo run --release --example supply_chain
//! ```

use acquire::core::{run_acquire, AcquireConfig, EvalLayerKind};
use acquire::datagen::{tpch, GenConfig};
use acquire::engine::Executor;
use acquire::sql::compile;

fn main() {
    // supplier / part / partsupp at 50K partsupp rows (the paper's Q2 is on
    // standard TPC-H; crank `rows` up for the full-size run).
    let catalog = tpch::generate_q2(&GenConfig::uniform(50_000)).expect("tpch q2 tables");

    // Q2' from the paper. `p_size`/`p_type` stay fixed; the generated part
    // table has sizes 1..=50, so size 10 with a modest retail-price cap
    // gives a selective starting query.
    let sql = "SELECT * FROM supplier, part, partsupp \
               CONSTRAINT SUM(ps_availqty) >= 0.1M \
               WHERE (s_suppkey = ps_suppkey) NOREFINE AND \
               (p_partkey = ps_partkey) NOREFINE AND \
               (p_retailprice < 1000) AND (s_acctbal < 2000) AND \
               (p_size = 10) NOREFINE";
    let query = compile(sql, &catalog).expect("compile Q2'");
    println!("Input ACQ (the paper's Q2'):\n  {sql}\n");

    let mut exec = Executor::new(catalog);
    let outcome = run_acquire(
        &mut exec,
        &query,
        &AcquireConfig::default(),
        EvalLayerKind::GridIndex,
    )
    .expect("acquire");

    println!(
        "Original query supplies {} units (need 100000); satisfied = {}\n",
        outcome.original_aggregate, outcome.satisfied
    );
    let best = outcome
        .best()
        .or(outcome.closest.as_ref())
        .expect("a candidate always exists");
    println!(
        "Recommended order query (refinement {:.1}, supplies {} units):\n  {}",
        best.qscore, best.aggregate, best.sql
    );
    println!(
        "\nSearch cost: {} grid queries across {} layers; {}",
        outcome.explored, outcome.layers, outcome.stats
    );
}

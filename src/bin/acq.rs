//! `acq` — run Aggregation Constrained Queries from the command line.
//!
//! ```text
//! acq --table users=examples/data/users.csv \
//!     [--gamma 10] [--delta 0.05] [--layer grid|cached|scan] [--top 5] \
//!     [--norm l1|l2|linf] [--stats] \
//!     "SELECT * FROM users CONSTRAINT COUNT(*) = 10K WHERE age <= 30"
//!
//! acq --demo users "SELECT * FROM users CONSTRAINT COUNT(*) = 5K WHERE income <= 60000"
//!
//! acq serve --demo users --addr 127.0.0.1:7171
//! ```
//!
//! Loads CSV files into the engine catalog (`--table name=path`, repeatable;
//! column types are inferred), compiles the ACQ statement, and runs ACQUIRE
//! — expansion for `=`/`>=`/`>` constraints, the §7.2 contraction for
//! `<=`/`<` — printing the recommended refined queries.

use std::process::ExitCode;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use acquire::core::{
    run_acquire_progress, run_contraction, AcqOutcome, AcquireConfig, CancellationToken,
    EvalLayerKind, ExecutionBudget, ExplainProfile, FaultPolicy, Obs, ProgressSink, Termination,
    DEFAULT_PROGRESS_CAPACITY,
};
use acquire::datagen::{patients, tpch, users, GenConfig};
use acquire::engine::{csv, Catalog, Executor};
use acquire::query::{CmpOp, Norm};
use acquire::sql::compile;

struct Opts {
    tables: Vec<(String, String)>,
    demos: Vec<String>,
    sql: Option<String>,
    gamma: f64,
    delta: f64,
    layer: EvalLayerKind,
    norm: Norm,
    top: usize,
    demo_rows: usize,
    show_stats: bool,
    json: bool,
    threads: usize,
    explain: bool,
    timeout: Option<f64>,
    max_memory: Option<usize>,
    max_explored: Option<u64>,
    best_effort: bool,
    trace: bool,
    trace_out: Option<String>,
    trace_chrome: bool,
    progress: bool,
    metrics_out: Option<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            tables: Vec::new(),
            demos: Vec::new(),
            sql: None,
            gamma: 10.0,
            delta: 0.05,
            layer: EvalLayerKind::GridIndex,
            norm: Norm::L1,
            top: 5,
            demo_rows: 50_000,
            show_stats: false,
            json: false,
            threads: 1,
            explain: false,
            timeout: None,
            max_memory: None,
            max_explored: None,
            best_effort: false,
            trace: false,
            trace_out: None,
            trace_chrome: false,
            progress: false,
            metrics_out: None,
        }
    }
}

const USAGE: &str = "usage: acq [OPTIONS] \"<ACQ SQL>\"
       acq serve [OPTIONS]            (long-running service; see acq serve --help)
       acq journal <COMMAND> [ARGS]   (inspect a --journal file; see acq journal --help)

options:
  --table NAME=PATH   load a CSV file as table NAME (repeatable)
  --demo NAME         generate a demo table: users | patients | tpch (repeatable)
  --demo-rows N       demo table size (default 50000)
  --gamma G           refinement threshold (default 10)
  --delta D           aggregate error threshold (default 0.05)
  --layer KIND        evaluation layer: grid | cached | scan (default grid)
  --norm NORM         l1 | l2 | linf (default l1)
  --top N             number of refined queries to print (default 5)
  --json              print the outcome as JSON instead of text
  --threads N         worker threads for scoring and the parallel Explore
                      phase (default 1; results are bit-identical for any
                      value)
  --explain           print the base-relation materialisation plan and an
                      EXPLAIN-style search profile (grid dims, layers,
                      Eq. 17 reuse accounting, phase latency split); with
                      --json, adds a \"profile\" key to the output
  --stats             print evaluation-layer work counters
  --timeout SECS      wall-clock deadline for the search (fractional ok);
                      on expiry the closest-so-far answer is returned
  --max-memory BYTES  cap retained sub-aggregate memory (suffixes K/M/G)
  --max-explored N    cap the number of grid queries explored
  --best-effort       absorb mid-search evaluation faults into an
                      interrupted outcome instead of failing
  --trace             print a human-readable phase-span trace of the search
                      to stderr
  --trace-out PATH    write the trace to PATH instead
  --trace-format FMT  text | chrome; chrome emits Chrome trace-event JSON
                      loadable in ui.perfetto.dev, and implies --trace when
                      no trace sink is set
  --progress          stream refinement progress to stderr while the search
                      runs: one NDJSON event per layer boundary
  --metrics-out PATH  write a JSON metrics snapshot (counters, gauges,
                      latency histograms, worker utilisation) to PATH
  --help              this message

The SQL dialect is the paper's: SELECT * FROM t [, t2 ...]
CONSTRAINT AGG(attr) OP X WHERE pred [NOREFINE] AND ...";

/// Parses a byte count with an optional K/M/G suffix (powers of 1024).
fn parse_bytes(s: &str) -> Result<usize, String> {
    let (digits, shift) = match s.trim().to_ascii_uppercase() {
        t if t.ends_with('K') => (t[..t.len() - 1].to_string(), 10),
        t if t.ends_with('M') => (t[..t.len() - 1].to_string(), 20),
        t if t.ends_with('G') => (t[..t.len() - 1].to_string(), 30),
        t => (t, 0),
    };
    let n: usize = digits
        .parse()
        .map_err(|e| format!("--max-memory: {e} (expected BYTES with optional K/M/G)"))?;
    n.checked_mul(1usize << shift)
        .ok_or_else(|| format!("--max-memory: {s} overflows"))
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut need = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--table" => {
                let spec = need("--table")?;
                let (name, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--table expects NAME=PATH, got {spec}"))?;
                opts.tables.push((name.to_string(), path.to_string()));
            }
            "--demo" => opts.demos.push(need("--demo")?),
            "--demo-rows" => {
                opts.demo_rows = need("--demo-rows")?
                    .parse()
                    .map_err(|e| format!("--demo-rows: {e}"))?;
            }
            "--gamma" => {
                opts.gamma = need("--gamma")?
                    .parse()
                    .map_err(|e| format!("--gamma: {e}"))?;
            }
            "--delta" => {
                opts.delta = need("--delta")?
                    .parse()
                    .map_err(|e| format!("--delta: {e}"))?;
            }
            "--layer" => {
                opts.layer = match need("--layer")?.as_str() {
                    "grid" => EvalLayerKind::GridIndex,
                    "cached" => EvalLayerKind::CachedScore,
                    "scan" => EvalLayerKind::Scan,
                    other => return Err(format!("unknown layer {other}")),
                };
            }
            "--norm" => {
                opts.norm = match need("--norm")?.to_ascii_lowercase().as_str() {
                    "l1" => Norm::L1,
                    "l2" => Norm::Lp(2.0),
                    "linf" | "loo" => Norm::LInf,
                    other => return Err(format!("unknown norm {other}")),
                };
            }
            "--top" => {
                opts.top = need("--top")?.parse().map_err(|e| format!("--top: {e}"))?;
            }
            "--stats" => opts.show_stats = true,
            "--json" => opts.json = true,
            "--explain" => opts.explain = true,
            "--best-effort" => opts.best_effort = true,
            "--trace" => opts.trace = true,
            "--trace-out" => opts.trace_out = Some(need("--trace-out")?),
            "--trace-format" => {
                opts.trace_chrome = match need("--trace-format")?.as_str() {
                    "text" => false,
                    "chrome" => true,
                    other => return Err(format!("unknown trace format {other} (text|chrome)")),
                };
            }
            "--progress" => opts.progress = true,
            "--metrics-out" => opts.metrics_out = Some(need("--metrics-out")?),
            "--timeout" => {
                let secs: f64 = need("--timeout")?
                    .parse()
                    .map_err(|e| format!("--timeout: {e}"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(format!(
                        "--timeout: expected non-negative seconds, got {secs}"
                    ));
                }
                opts.timeout = Some(secs);
            }
            "--max-memory" => {
                opts.max_memory = Some(parse_bytes(&need("--max-memory")?)?);
            }
            "--max-explored" => {
                opts.max_explored = Some(
                    need("--max-explored")?
                        .parse()
                        .map_err(|e| format!("--max-explored: {e}"))?,
                );
            }
            "--threads" => {
                opts.threads = need("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            other if opts.sql.is_none() && !other.starts_with("--") => {
                opts.sql = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument {other}\n\n{USAGE}")),
        }
    }
    if opts.sql.is_none() {
        return Err(USAGE.to_string());
    }
    Ok(opts)
}

fn build_catalog(opts: &Opts) -> Result<Catalog, String> {
    let mut catalog = Catalog::new();
    for (name, path) in &opts.tables {
        let table = csv::read_csv(name, path).map_err(|e| e.to_string())?;
        eprintln!(
            "loaded {name}: {} rows, schema {}",
            table.num_rows(),
            table.schema()
        );
        catalog.register(table).map_err(|e| e.to_string())?;
    }
    for demo in &opts.demos {
        let cfg = GenConfig::uniform(opts.demo_rows);
        match demo.as_str() {
            "users" => {
                catalog
                    .register(users::users(&cfg).map_err(|e| e.to_string())?)
                    .map_err(|e| e.to_string())?;
            }
            "patients" => {
                catalog
                    .register(patients::patients(&cfg).map_err(|e| e.to_string())?)
                    .map_err(|e| e.to_string())?;
            }
            "tpch" => {
                let tp = tpch::generate(&cfg).map_err(|e| e.to_string())?;
                for name in tp.table_names() {
                    catalog
                        .register((*tp.table(name).map_err(|e| e.to_string())?).clone())
                        .map_err(|e| e.to_string())?;
                }
            }
            other => {
                return Err(format!(
                    "unknown demo dataset {other} (users|patients|tpch)"
                ))
            }
        }
        eprintln!("generated demo dataset: {demo} ({} rows)", opts.demo_rows);
    }
    if catalog.is_empty() {
        return Err("no tables: pass --table NAME=PATH or --demo NAME".to_string());
    }
    Ok(catalog)
}

/// Minimal JSON string escaping (the outcome contains no exotic content,
/// but SQL strings may embed quotes from categorical values).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn termination_json(t: &Termination) -> String {
    match t {
        Termination::Interrupted {
            reason,
            explored,
            elapsed,
        } => format!(
            "{{\"status\":\"interrupted\",\"reason\":\"{}\",\"detail\":\"{}\",\"explored\":{},\"elapsed_ms\":{}}}",
            reason.slug(),
            json_escape(&reason.to_string()),
            explored,
            elapsed.as_millis()
        ),
        // `slug()` is the stable machine-readable vocabulary shared with the
        // serve registry; human `Display` text may change, slugs may not.
        complete => format!("{{\"status\":\"{}\"}}", complete.slug()),
    }
}

fn print_outcome_json(
    outcome: &AcqOutcome,
    opts: &Opts,
    original: &acquire::query::AcqQuery,
    obs: &Obs,
    profile: Option<&ExplainProfile>,
) {
    let expanding = original.constraint.op.is_expanding();
    let result_json = |r: &acquire::core::RefinedQueryResult| {
        let pscores: Vec<String> = r.pscores.iter().map(|&p| json_num(p)).collect();
        let changes: Vec<String> = if expanding {
            r.explain(original)
                .iter()
                .map(|c| format!("\"{}\"", json_escape(c)))
                .collect()
        } else {
            Vec::new()
        };
        format!(
            "{{\"pscores\":[{}],\"qscore\":{},\"aggregate\":{},\"error\":{},\"sql\":\"{}\",\"changes\":[{}]}}",
            pscores.join(","),
            json_num(r.qscore),
            json_num(r.aggregate),
            json_num(r.error),
            json_escape(&r.sql),
            changes.join(",")
        )
    };
    let queries: Vec<String> = outcome
        .queries
        .iter()
        .take(opts.top)
        .map(&result_json)
        .collect();
    let closest = outcome
        .closest
        .as_ref()
        .map(&result_json)
        .unwrap_or_else(|| "null".to_string());
    // Every executor work counter, not a hand-picked subset: the field list
    // comes from the engine itself so the JSON never lags behind ExecStats.
    let stats: Vec<String> = outcome
        .stats
        .fields()
        .iter()
        .map(|(k, v)| format!("\"{k}\":{v}"))
        .collect();
    let metrics = obs
        .snapshot()
        .map(|s| s.to_json())
        .unwrap_or_else(|| "null".to_string());
    // The `profile` key appears only under --explain, mirroring the serve
    // endpoint's `?explain=1` opt-in.
    let profile = profile
        .map(|p| format!(",\"profile\":{}", p.to_json()))
        .unwrap_or_default();
    println!(
        "{{\"satisfied\":{},\"termination\":{},\"original_aggregate\":{},\"explored\":{},\"queries\":[{}],\"closest\":{},\"stats\":{{{}}},\"metrics\":{}{}}}",
        outcome.satisfied,
        termination_json(&outcome.termination),
        json_num(outcome.original_aggregate),
        outcome.explored,
        queries.join(","),
        closest,
        stats.join(","),
        metrics,
        profile
    );
}

fn print_outcome(
    outcome: &AcqOutcome,
    opts: &Opts,
    original: &acquire::query::AcqQuery,
    obs: &Obs,
    profile: Option<&ExplainProfile>,
) {
    if opts.json {
        print_outcome_json(outcome, opts, original, obs, profile);
        return;
    }
    if outcome.original_aggregate.is_finite() {
        println!("original aggregate: {}", outcome.original_aggregate);
    }
    if let Termination::Interrupted {
        reason, elapsed, ..
    } = &outcome.termination
    {
        println!(
            "search interrupted after {:.3}s ({reason}); results below are the best found so far",
            elapsed.as_secs_f64()
        );
    }
    if outcome.satisfied {
        println!(
            "constraint satisfied; {} alternative refinement(s), {} grid queries explored\n",
            outcome.queries.len(),
            outcome.explored
        );
        for (i, r) in outcome.queries.iter().take(opts.top).enumerate() {
            println!(
                "#{i}  aggregate {}  error {:.4}  refinement {:.2}",
                r.aggregate, r.error, r.qscore
            );
            println!("    {}\n", r.sql);
        }
    } else {
        println!("constraint NOT satisfiable within thresholds.");
        if let Some(c) = &outcome.closest {
            println!(
                "closest query reaches {} (error {:.4}, refinement {:.2}):\n    {}",
                c.aggregate, c.error, c.qscore, c.sql
            );
        }
    }
    if opts.show_stats {
        println!("work: {}", outcome.stats);
    }
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    let catalog = build_catalog(&opts)?;
    let sql = opts.sql.as_deref().ok_or_else(|| USAGE.to_string())?;
    let query = compile(sql, &catalog).map_err(|e| e.to_string())?;
    let query_for_explain = query.clone();

    let mut budget = ExecutionBudget::unlimited();
    if let Some(secs) = opts.timeout {
        budget = budget.with_deadline(Duration::from_secs_f64(secs));
    }
    if let Some(bytes) = opts.max_memory {
        budget = budget.with_max_store_bytes(bytes);
    }
    if let Some(n) = opts.max_explored {
        budget = budget.with_max_explored(n);
    }
    let cfg = AcquireConfig {
        gamma: opts.gamma,
        delta: opts.delta,
        norm: opts.norm.clone(),
        budget,
        fault_policy: if opts.best_effort {
            FaultPolicy::BestEffort
        } else {
            FaultPolicy::Propagate
        },
        ..Default::default()
    }
    .with_threads(opts.threads);

    // Observability: tracing when a trace sink is requested, counters-only
    // when only metrics/JSON are, disabled otherwise (the zero-cost default).
    let tracing = opts.trace || opts.trace_out.is_some() || opts.trace_chrome;
    let obs = if tracing {
        Obs::with_trace(acquire::obs::DEFAULT_TRACE_CAPACITY)
    } else if opts.metrics_out.is_some() || opts.json || opts.explain {
        // --explain needs live counters for the profile's latency split and
        // at-most-once audit.
        Obs::enabled()
    } else {
        Obs::disabled()
    };

    let mut exec = Executor::new(catalog);

    // --progress: a polling printer drains the driver's wait-free sink to
    // stderr so stdout stays reserved for the answer. The `done` flag covers
    // runs that never reach a terminal event (contraction searches drive no
    // sink): the printer reads it *before* draining, guaranteeing one final
    // drain after the search ends.
    let progress = opts
        .progress
        .then(|| Arc::new(ProgressSink::new(DEFAULT_PROGRESS_CAPACITY)));
    let done = Arc::new(AtomicBool::new(false));
    let printer = progress.as_ref().map(|sink| {
        let sink = Arc::clone(sink);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut cursor = 0u64;
            loop {
                let was_done = done.load(Ordering::Acquire);
                let (events, next, _missed) = sink.drain_from(cursor);
                cursor = next;
                let mut terminal = false;
                for e in &events {
                    eprintln!("{}", e.to_json());
                    terminal |= e.terminal;
                }
                if terminal || was_done {
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        })
    });

    let search_started = Instant::now();
    let outcome = match query.constraint.op {
        CmpOp::Le | CmpOp::Lt => {
            if !opts.json {
                println!("(overshooting constraint: running the §7.2 contraction search)\n");
            }
            // The §7.2 contraction search is not phase-instrumented; its
            // executor work counters are still bridged below.
            run_contraction(&mut exec, &query, &cfg, opts.layer).map_err(|e| e.to_string())?
        }
        _ => {
            let expanded = run_acquire_progress(
                &mut exec,
                &query,
                &cfg,
                opts.layer,
                &CancellationToken::new(),
                &obs,
                progress.as_deref(),
            )
            .map_err(|e| e.to_string())?;
            // §7.2 also covers `=` constraints whose original query already
            // returns too much: expansion can only grow the aggregate, so
            // fall through to the contraction search.
            if !expanded.satisfied
                && query.constraint.op == CmpOp::Eq
                && expanded.original_aggregate > query.constraint.target
            {
                match run_contraction(&mut exec, &query, &cfg, opts.layer) {
                    Ok(contracted) => {
                        if !opts.json {
                            println!(
                                "(the original query already overshoots {} > {}: \
                                 ran the §7.2 contraction search)\n",
                                expanded.original_aggregate, query.constraint.target
                            );
                        }
                        contracted
                    }
                    // Nothing contractible (e.g. point predicates): the
                    // expansion outcome's closest query is still useful.
                    Err(_) => expanded,
                }
            } else {
                expanded
            }
        }
    };
    let search_duration = search_started.elapsed();
    done.store(true, Ordering::Release);
    if let Some(handle) = printer {
        let _ = handle.join();
    }
    if opts.explain && !opts.json {
        println!("base-relation plan:");
        for line in exec.last_plan() {
            println!("  - {line}");
        }
        println!();
    }
    // (Re-)bridge the final executor stats: the contraction and Eq-overshoot
    // paths run outside `acquire_observed`, and replacement is idempotent
    // for the plain expansion path.
    obs.record_exec_stats(&outcome.stats.fields());
    let profile = opts.explain.then(|| {
        ExplainProfile::new(
            &query_for_explain,
            &cfg,
            &outcome,
            obs.snapshot().as_ref(),
            search_duration,
        )
    });
    if opts.explain && !opts.json {
        println!("{}", profile.as_ref().expect("built above").render_text());
    }
    let trace = if opts.trace_chrome {
        obs.render_trace_chrome()
    } else {
        obs.render_trace()
    };
    if let Some(trace) = trace {
        if let Some(path) = &opts.trace_out {
            std::fs::write(path, &trace).map_err(|e| format!("--trace-out {path}: {e}"))?;
        }
        // Chrome format implies stderr output when no file sink is set; the
        // text render carries its own trailing newline, the JSON does not.
        if opts.trace || (opts.trace_chrome && opts.trace_out.is_none()) {
            if opts.trace_chrome {
                eprintln!("{trace}");
            } else {
                eprint!("{trace}");
            }
        }
    }
    if let Some(path) = &opts.metrics_out {
        let snapshot = obs
            .snapshot()
            .expect("metrics requested but observability is disabled");
        std::fs::write(path, snapshot.to_json())
            .map_err(|e| format!("--metrics-out {path}: {e}"))?;
    }
    print_outcome(&outcome, &opts, &query_for_explain, &obs, profile.as_ref());
    // `explain` interprets pscores as expansions of the original query;
    // contraction outcomes measure the remaining contraction instead, so
    // the per-predicate diff only applies to expansion searches.
    if !opts.json && query_for_explain.constraint.op.is_expanding() {
        if let Some(best) = outcome.best() {
            let changes = best.explain(&query_for_explain);
            if !changes.is_empty() {
                println!("changes vs the original query:");
                for c in changes {
                    println!("  - {c}");
                }
            }
        }
    }
    Ok(())
}

const JOURNAL_USAGE: &str = "usage: acq journal <COMMAND> [ARGS]

commands:
  summarize PATH     record counts by kind and termination, alert transitions
                     by rule, torn-tail and malformed-line accounting
  grep NEEDLE PATH   print records containing NEEDLE (fixed string match)
  replay PATH        print every record in order, oldest rotated segment
                     first, skipping (and counting) a torn final line

PATH is the file passed to `acq serve --journal`; rotated segments
(PATH.1, PATH.2, ...) are discovered automatically. Records are NDJSON
validated against schemas/journal.schema.json.";

/// `acq journal <summarize|grep|replay>`: offline inspection of a
/// `--journal` NDJSON log, torn tails included honestly.
fn run_journal<I: Iterator<Item = String>>(mut args: I) -> Result<(), String> {
    let cmd = args
        .next()
        .ok_or_else(|| format!("journal: missing command\n\n{JOURNAL_USAGE}"))?;
    let need_path = |arg: Option<String>| -> Result<std::path::PathBuf, String> {
        arg.map(std::path::PathBuf::from)
            .ok_or_else(|| format!("journal {cmd}: missing PATH\n\n{JOURNAL_USAGE}"))
    };
    let read = |path: &std::path::Path| {
        let read = acquire::obs::journal::read_journal(path)
            .map_err(|e| format!("journal: {}: {e}", path.display()))?;
        if read.segments == 0 {
            return Err(format!("journal: {}: no such journal", path.display()));
        }
        Ok(read)
    };
    // Journal output is meant for pipelines (`acq journal grep ... | head`);
    // when the downstream reader closes early, stop quietly like cat does
    // instead of panicking on the broken pipe.
    let emit = |out: &mut std::io::StdoutLock<'_>, line: &str| -> bool {
        use std::io::Write as _;
        writeln!(out, "{line}").is_ok()
    };
    match cmd.as_str() {
        "--help" | "-h" => Err(JOURNAL_USAGE.to_string()),
        "replay" => {
            let read = read(&need_path(args.next())?)?;
            let mut out = std::io::stdout().lock();
            for r in &read.records {
                if !emit(&mut out, r) {
                    break;
                }
            }
            if read.torn > 0 {
                eprintln!("journal: skipped {} torn final line(s)", read.torn);
            }
            Ok(())
        }
        "grep" => {
            let needle = args
                .next()
                .ok_or_else(|| format!("journal grep: missing NEEDLE\n\n{JOURNAL_USAGE}"))?;
            let read = read(&need_path(args.next())?)?;
            let mut out = std::io::stdout().lock();
            for r in read.records.iter().filter(|r| r.contains(&needle)) {
                if !emit(&mut out, r) {
                    break;
                }
            }
            Ok(())
        }
        "summarize" => {
            let path = need_path(args.next())?;
            let read = read(&path)?;
            let s = acquire::obs::journal::summarize(&read);
            println!("journal {}:", path.display());
            println!("  segments: {}", read.segments);
            println!(
                "  records: {} ({} query, {} alert), malformed: {}, torn: {}",
                s.records, s.queries, s.alerts, s.malformed, s.torn
            );
            for (term, n) in &s.by_termination {
                println!("  termination {term}: {n}");
            }
            for (edge, n) in &s.by_alert {
                println!("  alert {edge}: {n}");
            }
            Ok(())
        }
        other => Err(format!(
            "journal: unknown command {other}\n\n{JOURNAL_USAGE}"
        )),
    }
}

fn main() -> ExitCode {
    // `acq serve ...` delegates to the long-running service (the `acq-serve`
    // binary shares the same entry point); `acq journal ...` inspects the
    // durable query journal that service writes.
    let mut args = std::env::args().skip(1).peekable();
    let result = match args.peek().map(String::as_str) {
        Some("serve") => {
            args.next();
            acquire::serve::cli::run(args)
        }
        Some("journal") => {
            args.next();
            run_journal(args)
        }
        _ => run(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

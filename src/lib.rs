//! # acquire — Refinement Driven Processing of Aggregation Constrained Queries
//!
//! A full reproduction of *Vartak, Raghavan, Rundensteiner, Madden:
//! "Refinement Driven Processing of Aggregation Constrained Queries"*
//! (EDBT 2016) as a Rust workspace. This facade crate re-exports every
//! sub-crate:
//!
//! * [`query`] (`acq-query`) — the ACQ model: predicates, intervals,
//!   refinement scores, norms, aggregate constraints, ontologies;
//! * [`engine`] (`acq-engine`) — the in-memory columnar evaluation layer:
//!   tables, joins, cell queries, mergeable aggregates, the §7.4 bitmap
//!   grid index, work counters;
//! * [`datagen`] (`acq-datagen`) — deterministic TPC-H-shaped / users /
//!   patients datasets, uniform and Zipf-skewed;
//! * [`sql`] (`acq-sql`) — the `CONSTRAINT` / `NOREFINE` SQL dialect;
//! * [`core`] (`acquire-core`) — ACQUIRE itself: refined space, Expand,
//!   Explore (incremental aggregate computation), driver, repartitioning,
//!   contraction;
//! * [`baselines`] (`acq-baselines`) — Top-k, TQGen, BinSearch;
//! * [`obs`] (`acq-obs`) — zero-dependency observability: spans, counters,
//!   gauges, latency histograms, JSON/Prometheus snapshot sinks;
//! * [`serve`] (`acq-serve`) — a long-running ACQ service: hand-rolled
//!   HTTP/1.1, live telemetry, per-query profiles, scrape/health surface.
//!
//! ## Quickstart
//!
//! ```
//! use acquire::engine::Executor;
//! use acquire::core::{run_acquire, AcquireConfig, EvalLayerKind};
//! use acquire::datagen::{users, GenConfig};
//! use acquire::sql::compile;
//!
//! // 1. Data: the Example 1 advertising audience.
//! let mut catalog = acquire::engine::Catalog::new();
//! catalog.register(users::users(&GenConfig::uniform(5_000)).unwrap()).unwrap();
//!
//! // 2. An Aggregation Constrained Query in the paper's SQL dialect.
//! let query = compile(
//!     "SELECT * FROM users CONSTRAINT COUNT(*) = 2K \
//!      WHERE age <= 30 AND income <= 60000 AND gender = 'Women' NOREFINE",
//!     &catalog,
//! )
//! .unwrap();
//!
//! // 3. Refine it.
//! let mut exec = Executor::new(catalog);
//! let outcome =
//!     run_acquire(&mut exec, &query, &AcquireConfig::default(), EvalLayerKind::GridIndex)
//!         .unwrap();
//! assert!(outcome.satisfied);
//! println!("{}", outcome.best().unwrap().sql);
//! ```

#![forbid(unsafe_code)]

pub use acq_baselines as baselines;
pub use acq_datagen as datagen;
pub use acq_engine as engine;
pub use acq_obs as obs;
pub use acq_query as query;
pub use acq_serve as serve;
pub use acq_sql as sql;
pub use acquire_core as core;

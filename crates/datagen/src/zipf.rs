//! Exact Zipfian sampling over a finite rank set.
//!
//! The paper's skewed datasets use the Chaudhuri–Narasayya TPC-D generator
//! with `Z = 1` (§8.3, reference 3); attribute values there follow a
//! Zipfian rank-frequency law `p(rank k) ∝ 1 / k^Z`. This module implements
//! the same law by inverse-CDF sampling over a precomputed cumulative table,
//! which is exact (no rejection) and fast (binary search per draw).

use rand::Rng;

/// A Zipfian distribution over ranks `0..n` with exponent `z >= 0`;
/// `z = 0` degenerates to the uniform distribution.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[k]` = P(rank <= k).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler. Panics when `n == 0` or `z` is negative/NaN.
    #[must_use]
    pub fn new(n: usize, z: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(z >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(z);
            cdf.push(total);
        }
        let norm = total;
        for c in &mut cdf {
            *c /= norm;
        }
        // Guard against floating error on the last entry.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is trivial (should never be; see `new`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `k`.
    #[must_use]
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn z_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn z_one_matches_harmonic_weights() {
        let z = Zipf::new(3, 1.0);
        let h = 1.0 + 0.5 + 1.0 / 3.0;
        assert!((z.pmf(0) - 1.0 / h).abs() < 1e-12);
        assert!((z.pmf(1) - 0.5 / h).abs() < 1e-12);
        assert!((z.pmf(2) - (1.0 / 3.0) / h).abs() < 1e-9);
    }

    #[test]
    fn samples_cover_support_and_skew() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 must dominate rank 50 heavily under Z=1.
        assert!(
            counts[0] > counts[50] * 10,
            "{} vs {}",
            counts[0],
            counts[50]
        );
        // All samples in range (indexing would have panicked otherwise).
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(10, 0.5);
        let a: Vec<usize> = (0..20)
            .scan(StdRng::seed_from_u64(1), |r, _| Some(z.sample(r)))
            .collect();
        let b: Vec<usize> = (0..20)
            .scan(StdRng::seed_from_u64(1), |r, _| Some(z.sample(r)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn skew_grows_with_z() {
        // The head's mass is monotone in the exponent.
        let mut last = 0.0;
        for z in [0.0, 0.5, 1.0, 2.0] {
            let head = Zipf::new(50, z).pmf(0);
            assert!(head >= last, "pmf(0) must grow with z: {head} < {last}");
            last = head;
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }
}

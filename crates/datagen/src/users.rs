//! The Example 1 advertising-audience table.
//!
//! HighStyle Designers' campaign manager selects target users by
//! demographics and needs the audience COUNT to hit the budgeted reach
//! (§1, Example 1). This generator produces a `users` table with the
//! numeric demographics the refined queries touch (age, income, activity,
//! friends, account age) plus categorical columns (`city`, `gender`,
//! `education`) for NOREFINE filters and the §7.3 ontology example.

use rand::Rng;

use acq_engine::{DataType, EngineResult, Field, Table, TableBuilder, Value};

use crate::tpch::NumGen;
use crate::zipf::Zipf;
use crate::GenConfig;

/// The cities users are drawn from (Zipf-popular head first).
pub const CITIES: [&str; 12] = [
    "New York",
    "Los Angeles",
    "Chicago",
    "Boston",
    "Seattle",
    "Miami",
    "Austin",
    "Denver",
    "Portland",
    "Atlanta",
    "Phoenix",
    "Detroit",
];

/// Education levels.
pub const EDUCATION: [&str; 4] = ["HighSchool", "CollegeGrad", "Masters", "Doctorate"];

/// Generates the `users` table with `cfg.rows` rows.
pub fn users(cfg: &GenConfig) -> EngineResult<Table> {
    let mut rng = cfg.rng(10);
    let rows = cfg.rows;
    let age = NumGen::new(13.0, 80.0, cfg.zipf_z);
    let income = NumGen::new(8_000.0, 250_000.0, cfg.zipf_z);
    let minutes = NumGen::new(0.0, 600.0, cfg.zipf_z);
    let account_age = NumGen::new(0.0, 5_000.0, cfg.zipf_z);
    // Friend counts are heavy-tailed regardless of the skew setting: a few
    // hubs, many low-degree users (always Zipf with z >= 1.1).
    let friends = Zipf::new(5_000, cfg.zipf_z.max(1.1));
    let city_pick = Zipf::new(CITIES.len(), 0.7);

    let mut b = TableBuilder::new(
        "users",
        vec![
            Field::new("user_id", DataType::Int),
            Field::new("age", DataType::Int),
            Field::new("income", DataType::Float),
            Field::new("daily_minutes", DataType::Float),
            Field::new("friend_count", DataType::Int),
            Field::new("account_age_days", DataType::Float),
            Field::new("city", DataType::Str),
            Field::new("gender", DataType::Str),
            Field::new("education", DataType::Str),
        ],
    )?;
    b.reserve(rows);
    for key in 0..rows {
        b.push_row(vec![
            Value::Int(key as i64),
            Value::Int(age.sample_int(&mut rng).clamp(13, 80)),
            Value::Float(income.sample(&mut rng)),
            Value::Float(minutes.sample(&mut rng)),
            Value::Int(friends.sample(&mut rng) as i64),
            Value::Float(account_age.sample(&mut rng)),
            Value::from(CITIES[city_pick.sample(&mut rng)]),
            Value::from(if rng.gen_bool(0.5) { "Women" } else { "Men" }),
            Value::from(EDUCATION[rng.gen_range(0..EDUCATION.len())]),
        ]);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_rows_with_sane_domains() {
        let t = users(&GenConfig::uniform(2000)).unwrap();
        assert_eq!(t.num_rows(), 2000);
        let age = t.numeric_domain("age").unwrap();
        assert!(age.lo() >= 13.0 && age.hi() <= 80.0);
        let inc = t.numeric_domain("income").unwrap();
        assert!(inc.lo() >= 8_000.0 && inc.hi() <= 250_000.0);
    }

    #[test]
    fn cities_are_from_the_vocabulary() {
        let t = users(&GenConfig::uniform(500)).unwrap();
        let col = t.column_by_name("city").unwrap();
        for r in 0..t.num_rows() {
            let c = col.get_str(r).unwrap();
            assert!(CITIES.contains(&c), "unexpected city {c}");
        }
    }

    #[test]
    fn friend_counts_are_heavy_tailed() {
        let t = users(&GenConfig::uniform(5000)).unwrap();
        let col = t.column_by_name("friend_count").unwrap();
        let low = (0..t.num_rows())
            .filter(|&r| col.get_i64(r).unwrap() < 100)
            .count();
        assert!(low > t.num_rows() / 2, "hubs should be rare: {low}");
    }
}

//! Schema-free synthetic tables for tests, property tests and benchmarks.

use rand::Rng;

use acq_engine::{Catalog, DataType, EngineResult, Field, Table, TableBuilder, Value};

use crate::tpch::NumGen;
use crate::GenConfig;

/// A table `name` with `cols` float columns `x0..x{cols-1}` drawn from
/// `[0, 1000]` under the configured skew, plus an integer key column `id`.
pub fn numeric_table(cfg: &GenConfig, name: &str, cols: usize) -> EngineResult<Table> {
    assert!(cols >= 1, "at least one data column");
    let mut rng = cfg.rng(30 + cols as u64);
    let gen = NumGen::new(0.0, 1000.0, cfg.zipf_z);
    let mut fields = vec![Field::new("id", DataType::Int)];
    for c in 0..cols {
        fields.push(Field::new(format!("x{c}"), DataType::Float));
    }
    let mut b = TableBuilder::new(name, fields)?;
    b.reserve(cfg.rows);
    for key in 0..cfg.rows {
        let mut row = Vec::with_capacity(cols + 1);
        row.push(Value::Int(key as i64));
        for _ in 0..cols {
            row.push(Value::Float(gen.sample(&mut rng)));
        }
        b.push_row(row);
    }
    b.finish()
}

/// Two tables `left` and `right`, each with a float join attribute `j`
/// in `[0, 1000]` and a float payload `v`, for join-refinement tests.
pub fn join_pair(cfg: &GenConfig, left_rows: usize, right_rows: usize) -> EngineResult<Catalog> {
    let mut catalog = Catalog::new();
    for (stream, (name, rows)) in [("left", left_rows), ("right", right_rows)]
        .into_iter()
        .enumerate()
    {
        let mut rng = cfg.rng(40 + stream as u64);
        let j = NumGen::new(0.0, 1000.0, cfg.zipf_z);
        let mut b = TableBuilder::new(
            name,
            vec![
                Field::new("j", DataType::Float),
                Field::new("v", DataType::Float),
            ],
        )?;
        b.reserve(rows);
        for _ in 0..rows {
            b.push_row(vec![
                Value::Float(j.sample(&mut rng)),
                Value::Float(rng.gen_range(0.0..=100.0)),
            ]);
        }
        catalog.register(b.finish()?)?;
    }
    Ok(catalog)
}

/// A catalog holding just one [`numeric_table`] named `t`.
pub fn numeric_catalog(cfg: &GenConfig, cols: usize) -> EngineResult<Catalog> {
    let mut catalog = Catalog::new();
    catalog.register(numeric_table(cfg, "t", cols)?)?;
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_table_shape() {
        let t = numeric_table(&GenConfig::uniform(100), "t", 3).unwrap();
        assert_eq!(t.num_rows(), 100);
        assert_eq!(t.schema().len(), 4);
        let d = t.numeric_domain("x2").unwrap();
        assert!(d.lo() >= 0.0 && d.hi() <= 1000.0);
    }

    #[test]
    fn join_pair_builds_catalog() {
        let c = join_pair(&GenConfig::uniform(50), 50, 30).unwrap();
        assert_eq!(c.table("left").unwrap().num_rows(), 50);
        assert_eq!(c.table("right").unwrap().num_rows(), 30);
    }

    #[test]
    #[should_panic(expected = "at least one data column")]
    fn zero_columns_panics() {
        let _ = numeric_table(&GenConfig::uniform(10), "t", 0);
    }
}

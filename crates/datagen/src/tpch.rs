//! TPC-H-shaped tables.
//!
//! The paper's experiments run on TPC-H data (1K–10M tuples, §8.3) with
//! queries adapted to numeric range and join predicates; Example 2's Q2
//! skeleton joins `supplier ⋈ partsupp ⋈ part`. This module generates those
//! tables (plus `customer`, `orders`, `lineitem`, whose five numeric
//! attributes drive the dimensionality experiments) at any scale, uniform or
//! Zipf-skewed per [`GenConfig::zipf_z`].
//!
//! Column domains follow the TPC-H specification's shapes (account balances
//! in `[-999.99, 9999.99]`, part sizes `1..=50`, retail prices around
//! `[900, 2100]`, quantities `1..=50`, …); exact dbgen value formulas are
//! replaced by seeded draws, which preserves everything the refinement
//! experiments depend on (domains, selectivities, skew).

use rand::Rng;

use acq_engine::{Catalog, DataType, EngineResult, Field, Table, TableBuilder, Value};

use crate::zipf::Zipf;
use crate::GenConfig;

/// Number of value buckets used when skewing continuous attributes.
const SKEW_BUCKETS: usize = 1000;

/// A numeric value generator honouring the configured skew: under `Z = 0`
/// values are continuous-uniform in `[lo, hi]`; under `Z > 0` a Zipfian rank
/// picks one of [`SKEW_BUCKETS`] equi-width buckets (low values most
/// frequent) with uniform jitter inside the bucket.
#[derive(Debug, Clone)]
pub(crate) struct NumGen {
    lo: f64,
    hi: f64,
    zipf: Option<Zipf>,
}

impl NumGen {
    pub(crate) fn new(lo: f64, hi: f64, z: f64) -> Self {
        let zipf = (z > 0.0).then(|| Zipf::new(SKEW_BUCKETS, z));
        Self { lo, hi, zipf }
    }

    pub(crate) fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match &self.zipf {
            None => rng.gen_range(self.lo..=self.hi),
            Some(zipf) => {
                let bucket = zipf.sample(rng);
                let w = (self.hi - self.lo) / SKEW_BUCKETS as f64;
                let base = self.lo + bucket as f64 * w;
                base + rng.gen_range(0.0..=w.max(f64::MIN_POSITIVE))
            }
        }
    }

    pub(crate) fn sample_int<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        self.sample(rng).round() as i64
    }

    /// A concentrated (Bates-style) draw: the mean of four samples. Real
    /// measure-like attributes (amounts, totals, dates-of-activity) are
    /// bell-shaped rather than uniform, and the refinement experiments
    /// depend on that: most of the mass sits near the middle of the domain,
    /// so moving a predicate bound a little admits many tuples — the
    /// regime in which the paper's refinement scores (Fig. 8c: 0–35%)
    /// live. Under skew the four draws are Zipfian, preserving the §8.4.4
    /// asymmetry.
    pub(crate) fn sample_bell<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.sample(rng) + self.sample(rng) + self.sample(rng) + self.sample(rng)) / 4.0
    }
}

/// TPC-H part-type vocabulary (6 × 5 × 5 = 150 types, as in the spec).
fn part_type(rng: &mut impl Rng) -> String {
    const A: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
    const B: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
    const C: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
    format!(
        "{} {} {}",
        A[rng.gen_range(0..A.len())],
        B[rng.gen_range(0..B.len())],
        C[rng.gen_range(0..C.len())]
    )
}

/// Row counts of each table at a given base size (`GenConfig::rows` is the
/// `partsupp`/`lineitem` cardinality, the tables the experiments aggregate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpchSizes {
    /// `supplier` rows.
    pub supplier: usize,
    /// `part` rows.
    pub part: usize,
    /// `partsupp` rows.
    pub partsupp: usize,
    /// `customer` rows.
    pub customer: usize,
    /// `orders` rows.
    pub orders: usize,
    /// `lineitem` rows.
    pub lineitem: usize,
}

impl TpchSizes {
    /// Derives table sizes from the base row count, mirroring TPC-H's
    /// relative cardinalities (suppliers ≪ parts < partsupp ≈ lineitem).
    #[must_use]
    pub fn for_base(rows: usize) -> Self {
        let rows = rows.max(16);
        Self {
            supplier: (rows / 100).max(8),
            part: (rows / 5).max(16),
            partsupp: rows,
            customer: (rows / 10).max(8),
            orders: (rows / 2).max(8),
            lineitem: rows,
        }
    }
}

/// Generates the full TPC-H-shaped catalog.
pub fn generate(cfg: &GenConfig) -> EngineResult<Catalog> {
    let mut catalog = Catalog::new();
    let sizes = TpchSizes::for_base(cfg.rows);
    catalog.register(supplier(cfg, sizes.supplier)?)?;
    catalog.register(part(cfg, sizes.part)?)?;
    catalog.register(partsupp(cfg, sizes.partsupp, sizes.part, sizes.supplier)?)?;
    catalog.register(customer(cfg, sizes.customer)?)?;
    catalog.register(orders(cfg, sizes.orders, sizes.customer)?)?;
    catalog.register(lineitem(cfg, sizes.lineitem, sizes.orders)?)?;
    Ok(catalog)
}

/// Generates only the Example 2 / Q2 tables (`supplier`, `part`,
/// `partsupp`).
pub fn generate_q2(cfg: &GenConfig) -> EngineResult<Catalog> {
    let mut catalog = Catalog::new();
    let sizes = TpchSizes::for_base(cfg.rows);
    catalog.register(supplier(cfg, sizes.supplier)?)?;
    catalog.register(part(cfg, sizes.part)?)?;
    catalog.register(partsupp(cfg, sizes.partsupp, sizes.part, sizes.supplier)?)?;
    Ok(catalog)
}

/// Generates only `lineitem` (the table with five numeric attributes used
/// by the dimensionality experiments).
pub fn generate_lineitem(cfg: &GenConfig) -> EngineResult<Catalog> {
    let mut catalog = Catalog::new();
    let sizes = TpchSizes::for_base(cfg.rows);
    catalog.register(lineitem(cfg, sizes.lineitem, sizes.orders)?)?;
    Ok(catalog)
}

/// The `supplier` table: `s_suppkey`, `s_nationkey`, `s_acctbal`.
pub fn supplier(cfg: &GenConfig, rows: usize) -> EngineResult<Table> {
    let mut rng = cfg.rng(1);
    let acctbal = NumGen::new(-999.99, 9999.99, cfg.zipf_z);
    let mut b = TableBuilder::new(
        "supplier",
        vec![
            Field::new("s_suppkey", DataType::Int),
            Field::new("s_nationkey", DataType::Int),
            Field::new("s_acctbal", DataType::Float),
        ],
    )?;
    b.reserve(rows);
    for key in 0..rows {
        b.push_row(vec![
            Value::Int(key as i64),
            Value::Int(rng.gen_range(0..25)),
            Value::Float(acctbal.sample(&mut rng)),
        ]);
    }
    b.finish()
}

/// The `part` table: `p_partkey`, `p_size`, `p_retailprice`, `p_type`.
pub fn part(cfg: &GenConfig, rows: usize) -> EngineResult<Table> {
    let mut rng = cfg.rng(2);
    let price = NumGen::new(900.0, 2100.0, cfg.zipf_z);
    let size = NumGen::new(1.0, 50.0, cfg.zipf_z);
    let mut b = TableBuilder::new(
        "part",
        vec![
            Field::new("p_partkey", DataType::Int),
            Field::new("p_size", DataType::Int),
            Field::new("p_retailprice", DataType::Float),
            Field::new("p_type", DataType::Str),
        ],
    )?;
    b.reserve(rows);
    for key in 0..rows {
        b.push_row(vec![
            Value::Int(key as i64),
            Value::Int(size.sample_int(&mut rng).clamp(1, 50)),
            Value::Float(price.sample(&mut rng)),
            Value::from(part_type(&mut rng)),
        ]);
    }
    b.finish()
}

/// The `partsupp` table: `ps_partkey`, `ps_suppkey`, `ps_availqty`,
/// `ps_supplycost`. Foreign keys are Zipf-distributed under skew so popular
/// parts/suppliers dominate, as in the Chaudhuri–Narasayya generator.
pub fn partsupp(
    cfg: &GenConfig,
    rows: usize,
    parts: usize,
    suppliers: usize,
) -> EngineResult<Table> {
    let mut rng = cfg.rng(3);
    let qty = NumGen::new(1.0, 9999.0, cfg.zipf_z);
    let cost = NumGen::new(1.0, 1000.0, cfg.zipf_z);
    let pk = (cfg.zipf_z > 0.0).then(|| Zipf::new(parts, cfg.zipf_z));
    let sk = (cfg.zipf_z > 0.0).then(|| Zipf::new(suppliers, cfg.zipf_z));
    let mut b = TableBuilder::new(
        "partsupp",
        vec![
            Field::new("ps_partkey", DataType::Int),
            Field::new("ps_suppkey", DataType::Int),
            Field::new("ps_availqty", DataType::Int),
            Field::new("ps_supplycost", DataType::Float),
        ],
    )?;
    b.reserve(rows);
    for _ in 0..rows {
        let p = match &pk {
            Some(z) => z.sample(&mut rng) as i64,
            None => rng.gen_range(0..parts as i64),
        };
        let s = match &sk {
            Some(z) => z.sample(&mut rng) as i64,
            None => rng.gen_range(0..suppliers as i64),
        };
        b.push_row(vec![
            Value::Int(p),
            Value::Int(s),
            Value::Int(qty.sample_int(&mut rng).max(1)),
            Value::Float(cost.sample(&mut rng)),
        ]);
    }
    b.finish()
}

/// The `customer` table: `c_custkey`, `c_nationkey`, `c_acctbal`.
pub fn customer(cfg: &GenConfig, rows: usize) -> EngineResult<Table> {
    let mut rng = cfg.rng(4);
    let acctbal = NumGen::new(-999.99, 9999.99, cfg.zipf_z);
    let mut b = TableBuilder::new(
        "customer",
        vec![
            Field::new("c_custkey", DataType::Int),
            Field::new("c_nationkey", DataType::Int),
            Field::new("c_acctbal", DataType::Float),
        ],
    )?;
    b.reserve(rows);
    for key in 0..rows {
        b.push_row(vec![
            Value::Int(key as i64),
            Value::Int(rng.gen_range(0..25)),
            Value::Float(acctbal.sample(&mut rng)),
        ]);
    }
    b.finish()
}

/// The `orders` table: `o_orderkey`, `o_custkey`, `o_totalprice`,
/// `o_orderdate` (days since epoch start of the 7-year TPC-H window).
pub fn orders(cfg: &GenConfig, rows: usize, customers: usize) -> EngineResult<Table> {
    let mut rng = cfg.rng(5);
    let price = NumGen::new(1000.0, 500_000.0, cfg.zipf_z);
    let ck = (cfg.zipf_z > 0.0).then(|| Zipf::new(customers, cfg.zipf_z));
    let mut b = TableBuilder::new(
        "orders",
        vec![
            Field::new("o_orderkey", DataType::Int),
            Field::new("o_custkey", DataType::Int),
            Field::new("o_totalprice", DataType::Float),
            Field::new("o_orderdate", DataType::Int),
        ],
    )?;
    b.reserve(rows);
    for key in 0..rows {
        let c = match &ck {
            Some(z) => z.sample(&mut rng) as i64,
            None => rng.gen_range(0..customers as i64),
        };
        b.push_row(vec![
            Value::Int(key as i64),
            Value::Int(c),
            Value::Float(price.sample(&mut rng)),
            Value::Int(rng.gen_range(0..2557)),
        ]);
    }
    b.finish()
}

/// The `lineitem` table with five numeric non-key attributes —
/// `l_quantity`, `l_extendedprice`, `l_discount`, `l_tax`, `l_shipdate` —
/// which the dimensionality experiments refine one through five of.
pub fn lineitem(cfg: &GenConfig, rows: usize, orders: usize) -> EngineResult<Table> {
    let mut rng = cfg.rng(6);
    let qty = NumGen::new(1.0, 50.0, cfg.zipf_z);
    // As in TPC-H, the extended price is quantity × unit price, so its
    // distribution is concentrated (a product of uniforms), not uniform —
    // which matters for refinement experiments: most of the mass sits in
    // the middle of the [900, 105000] domain.
    let unit_price = NumGen::new(900.0, 2100.0, cfg.zipf_z);
    let discount = NumGen::new(0.0, 0.10, cfg.zipf_z);
    let tax = NumGen::new(0.0, 0.08, cfg.zipf_z);
    let ship = NumGen::new(0.0, 2557.0, cfg.zipf_z);
    let ok = (cfg.zipf_z > 0.0).then(|| Zipf::new(orders, cfg.zipf_z));
    let mut b = TableBuilder::new(
        "lineitem",
        vec![
            Field::new("l_orderkey", DataType::Int),
            Field::new("l_quantity", DataType::Float),
            Field::new("l_extendedprice", DataType::Float),
            Field::new("l_discount", DataType::Float),
            Field::new("l_tax", DataType::Float),
            Field::new("l_shipdate", DataType::Float),
        ],
    )?;
    b.reserve(rows);
    for _ in 0..rows {
        let o = match &ok {
            Some(z) => z.sample(&mut rng) as i64,
            None => rng.gen_range(0..orders as i64),
        };
        let quantity = qty.sample_bell(&mut rng);
        let extended = quantity * unit_price.sample(&mut rng);
        b.push_row(vec![
            Value::Int(o),
            Value::Float(quantity),
            Value::Float(extended),
            Value::Float(discount.sample_bell(&mut rng)),
            Value::Float(tax.sample_bell(&mut rng)),
            Value::Float(ship.sample_bell(&mut rng)),
        ]);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale_with_base() {
        let s = TpchSizes::for_base(100_000);
        assert_eq!(s.partsupp, 100_000);
        assert_eq!(s.lineitem, 100_000);
        assert_eq!(s.supplier, 1000);
        assert_eq!(s.part, 20_000);
        // Tiny bases clamp to usable minimums.
        let tiny = TpchSizes::for_base(1);
        assert!(tiny.supplier >= 8 && tiny.part >= 16);
    }

    #[test]
    fn q2_catalog_has_three_tables() {
        let cat = generate_q2(&GenConfig::uniform(1000)).unwrap();
        assert!(cat.table("supplier").is_ok());
        assert!(cat.table("part").is_ok());
        assert!(cat.table("partsupp").is_ok());
        assert_eq!(cat.len(), 3);
    }

    #[test]
    fn full_catalog_and_domains() {
        let cat = generate(&GenConfig::uniform(500)).unwrap();
        assert_eq!(cat.len(), 6);
        let part = cat.table("part").unwrap();
        let size = part.numeric_domain("p_size").unwrap();
        assert!(size.lo() >= 1.0 && size.hi() <= 50.0);
        let li = cat.table("lineitem").unwrap();
        let d = li.numeric_domain("l_discount").unwrap();
        assert!(d.lo() >= 0.0 && d.hi() <= 0.10);
    }

    #[test]
    fn foreign_keys_reference_existing_rows() {
        let cfg = GenConfig::uniform(1000);
        let sizes = TpchSizes::for_base(cfg.rows);
        let ps = partsupp(&cfg, sizes.partsupp, sizes.part, sizes.supplier).unwrap();
        let pk = ps.numeric_domain("ps_partkey").unwrap();
        assert!(pk.lo() >= 0.0 && pk.hi() < sizes.part as f64);
        let sk = ps.numeric_domain("ps_suppkey").unwrap();
        assert!(sk.lo() >= 0.0 && sk.hi() < sizes.supplier as f64);
    }

    #[test]
    fn determinism() {
        let a = generate_q2(&GenConfig::uniform(200)).unwrap();
        let b = generate_q2(&GenConfig::uniform(200)).unwrap();
        let (ta, tb) = (a.table("partsupp").unwrap(), b.table("partsupp").unwrap());
        for row in 0..ta.num_rows() {
            assert_eq!(ta.value(row, 3), tb.value(row, 3));
        }
        let c = generate_q2(&GenConfig::uniform(200).with_seed(9)).unwrap();
        let tc = c.table("partsupp").unwrap();
        let differs = (0..ta.num_rows()).any(|r| ta.value(r, 3) != tc.value(r, 3));
        assert!(differs, "different seeds must differ");
    }

    #[test]
    fn skew_concentrates_mass() {
        let cfg = GenConfig::skewed(20_000);
        let li = lineitem(&cfg, 20_000, 1000).unwrap();
        let col = li.column_by_name("l_quantity").unwrap();
        let below_10 = (0..li.num_rows())
            .filter(|&r| col.get_f64(r).unwrap() < 10.0)
            .count();
        // Under Z=1 the low buckets dominate: far more than the uniform 18%.
        assert!(
            below_10 as f64 > 0.5 * li.num_rows() as f64,
            "{below_10} of {}",
            li.num_rows()
        );
    }
}

//! # acq-datagen — deterministic workload data
//!
//! The paper evaluates on TPC-H data of 1K–10M tuples, both uniform (the
//! TPC-H default, Zipf `Z = 0`) and skewed (`Z = 1`, generated with the
//! Chaudhuri–Narasayya skewed TPC-D generator (reference 3 of the paper)). This crate reproduces
//! those datasets with a seeded, dependency-light generator:
//!
//! * [`tpch`] — TPC-H-shaped `part`, `supplier`, `partsupp`, `customer`,
//!   `orders` and `lineitem` tables with the columns the paper's queries
//!   touch (the Q2 skeleton of Example 2), configurable size and skew;
//! * [`users`] — the Example 1 advertising audience table (demographics +
//!   a categorical city column);
//! * [`patients`] — the §1/§9 outlier-analysis motivating table (AVG cost);
//! * [`zipf::Zipf`] — an exact inverse-CDF Zipfian sampler (`Z = 0` is
//!   uniform);
//! * [`synthetic`] — schema-free uniform/skewed numeric tables for tests,
//!   property tests and micro-benchmarks.
//!
//! Everything is deterministic in the seed: the same [`GenConfig`] always
//! produces bit-identical tables.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod patients;
pub mod synthetic;
pub mod tpch;
pub mod users;
pub mod zipf;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generator configuration shared by every dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenConfig {
    /// Base row count (tables derive their sizes from it; see each module).
    pub rows: usize,
    /// RNG seed; equal seeds give bit-identical data.
    pub seed: u64,
    /// Zipf skew parameter `Z`; 0.0 is uniform, 1.0 matches the paper's
    /// skewed setting (§8.4.4).
    pub zipf_z: f64,
}

impl GenConfig {
    /// Uniform data of the given size with a fixed default seed.
    #[must_use]
    pub fn uniform(rows: usize) -> Self {
        Self {
            rows,
            seed: 0xACC_0FFEE,
            zipf_z: 0.0,
        }
    }

    /// Skewed (`Z = 1`) data of the given size.
    #[must_use]
    pub fn skewed(rows: usize) -> Self {
        Self {
            rows,
            seed: 0xACC_0FFEE,
            zipf_z: 1.0,
        }
    }

    /// Same config with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub(crate) fn rng(&self, stream: u64) -> StdRng {
        // Separate deterministic streams per table to decouple sizes.
        StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(stream),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_deterministic() {
        use rand::RngCore;
        let c = GenConfig::uniform(10);
        let mut a = c.rng(1);
        let mut b = c.rng(1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut other = c.rng(2);
        assert_ne!(a.next_u64(), other.next_u64());
    }

    #[test]
    fn skewed_sets_z() {
        assert_eq!(GenConfig::skewed(5).zipf_z, 1.0);
        assert_eq!(GenConfig::uniform(5).zipf_z, 0.0);
    }
}

//! The outlier-analysis `patients` table.
//!
//! §1 motivates AVG-constrained ACQs with "select patients who had extremely
//! high average cost" (and §9's Top-k discussion selects patients by income,
//! blood pressure and weekly exercise). Costs are heavy-tailed so that
//! AVG-directed refinement has outliers to find.

use rand::Rng;

use acq_engine::{DataType, EngineResult, Field, Table, TableBuilder, Value};

use crate::tpch::NumGen;
use crate::GenConfig;

/// Generates the `patients` table with `cfg.rows` rows.
pub fn patients(cfg: &GenConfig) -> EngineResult<Table> {
    let mut rng = cfg.rng(20);
    let rows = cfg.rows;
    let age = NumGen::new(0.0, 95.0, cfg.zipf_z);
    let income = NumGen::new(5_000.0, 300_000.0, cfg.zipf_z);
    let systolic = NumGen::new(90.0, 200.0, cfg.zipf_z);
    let exercise = NumGen::new(0.0, 20.0, cfg.zipf_z);

    let mut b = TableBuilder::new(
        "patients",
        vec![
            Field::new("patient_id", DataType::Int),
            Field::new("age", DataType::Int),
            Field::new("income", DataType::Float),
            Field::new("systolic_bp", DataType::Float),
            Field::new("exercise_hours", DataType::Float),
            Field::new("annual_cost", DataType::Float),
        ],
    )?;
    b.reserve(rows);
    for key in 0..rows {
        let bp = systolic.sample(&mut rng);
        let ex = exercise.sample(&mut rng);
        // Log-uniform cost with a clinically plausible correlation: high
        // blood pressure and little exercise shift the whole tail upward, so
        // AVG(annual_cost) genuinely varies across predicate regions (the
        // outlier-hunting scenario of §1 needs structure to find).
        let base_exponent = rng.gen_range(2.0..=4.5);
        let risk = (bp - 90.0) / 110.0 * 1.2 + (20.0 - ex) / 20.0 * 0.3;
        let cost = 10f64.powf((base_exponent + risk).min(6.0));
        b.push_row(vec![
            Value::Int(key as i64),
            Value::Int(age.sample_int(&mut rng).clamp(0, 95)),
            Value::Float(income.sample(&mut rng)),
            Value::Float(bp),
            Value::Float(ex),
            Value::Float(cost),
        ]);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_correlates_with_blood_pressure() {
        // The outlier-analysis example depends on AVG(cost) varying across
        // predicate regions: high-BP patients must cost more on average.
        let t = patients(&GenConfig::uniform(8000)).unwrap();
        let bp = t.column_by_name("systolic_bp").unwrap();
        let cost = t.column_by_name("annual_cost").unwrap();
        let (mut lo_sum, mut lo_n, mut hi_sum, mut hi_n) = (0.0, 0u32, 0.0, 0u32);
        for r in 0..t.num_rows() {
            let b = bp.get_f64(r).unwrap();
            let c = cost.get_f64(r).unwrap();
            if b < 120.0 {
                lo_sum += c;
                lo_n += 1;
            } else if b > 170.0 {
                hi_sum += c;
                hi_n += 1;
            }
        }
        let (lo_avg, hi_avg) = (lo_sum / f64::from(lo_n), hi_sum / f64::from(hi_n));
        assert!(
            hi_avg > 3.0 * lo_avg,
            "high-BP cohort should cost much more: {hi_avg} vs {lo_avg}"
        );
    }

    #[test]
    fn domains_and_heavy_tail() {
        let t = patients(&GenConfig::uniform(3000)).unwrap();
        assert_eq!(t.num_rows(), 3000);
        let cost = t.numeric_domain("annual_cost").unwrap();
        assert!(cost.lo() >= 100.0);
        assert!(cost.hi() <= 1_000_000.0);
        // Median is far below the mean for a log-uniform tail.
        let col = t.column_by_name("annual_cost").unwrap();
        let mut v: Vec<f64> = (0..t.num_rows()).map(|r| col.get_f64(r).unwrap()).collect();
        v.sort_by(f64::total_cmp);
        let median = v[v.len() / 2];
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean > 2.0 * median, "mean {mean} median {median}");
    }
}

//! A process-scoped registry of in-flight and recently completed queries.
//!
//! `acq-serve` runs every request against its own per-query [`crate::Obs`]
//! handle; this registry is the cross-request index that `GET /queries` and
//! `GET /trace/<id>` read. It stores *summaries* — termination status,
//! counts, the rendered trace — not live handles, so lookups never contend
//! with a running query's instruments.
//!
//! The completed ring is bounded: once full, finishing a query evicts the
//! oldest completed record and `dropped_records` counts the eviction, the
//! same honesty discipline as the bounded trace buffer.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

use crate::snapshot::json_escape;

/// Default number of completed query records retained.
pub const DEFAULT_COMPLETED_CAPACITY: usize = 256;

/// Lifecycle state of a registered query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// Accepted and currently executing.
    Running,
    /// Finished with an [`crate::registry::QuerySummary`].
    Completed,
    /// Rejected or aborted with an error before producing an outcome.
    Failed,
}

impl QueryStatus {
    /// Stable lower-case name used in JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryStatus::Running => "running",
            QueryStatus::Completed => "completed",
            QueryStatus::Failed => "failed",
        }
    }
}

/// Outcome summary recorded when a query finishes successfully.
#[derive(Debug, Clone, Default)]
pub struct QuerySummary {
    /// Termination status slug (`"complete"`, `"deadline"`, …).
    pub termination: String,
    /// Grid cells committed by the driver (`AcqOutcome.explored`).
    pub explored: u64,
    /// `cells_executed` counter from the query's own snapshot; the
    /// registry invariant `cells_executed == explored` is checked per
    /// query by the serve tests.
    pub cells_executed: u64,
    /// Refined queries that satisfied the constraint.
    pub answers: u64,
    /// Whether at least one answer satisfied the constraint.
    pub satisfied: bool,
    /// Expand layers reached.
    pub layers: u64,
}

/// One registered query.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Registry-assigned request ID (monotonic per process).
    pub id: u64,
    /// The submitted SQL text.
    pub sql: String,
    /// Worker threads the request ran with.
    pub threads: usize,
    /// Lifecycle state.
    pub status: QueryStatus,
    /// Outcome summary; `None` while running or on failure.
    pub summary: Option<QuerySummary>,
    /// Error text for failed queries.
    pub error: Option<String>,
    /// Wall-clock duration in milliseconds; `None` while running.
    pub duration_ms: Option<u64>,
    /// The query's rendered trace JSON (see [`crate::TraceBuf::render_json`]),
    /// captured at completion; `None` while running or if tracing was off.
    pub trace_json: Option<String>,
}

impl QueryRecord {
    /// Renders the record as a compact JSON object (without the trace,
    /// which `GET /trace/<id>` serves separately).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160 + self.sql.len());
        s.push_str(&format!(
            "{{\"id\":{},\"status\":\"{}\",\"sql\":\"{}\",\"threads\":{}",
            self.id,
            self.status.as_str(),
            json_escape(&self.sql),
            self.threads
        ));
        match self.duration_ms {
            Some(ms) => s.push_str(&format!(",\"duration_ms\":{ms}")),
            None => s.push_str(",\"duration_ms\":null"),
        }
        if let Some(sum) = &self.summary {
            s.push_str(&format!(
                ",\"termination\":\"{}\",\"explored\":{},\"cells_executed\":{},\
                 \"answers\":{},\"satisfied\":{},\"layers\":{}",
                json_escape(&sum.termination),
                sum.explored,
                sum.cells_executed,
                sum.answers,
                sum.satisfied,
                sum.layers
            ));
        }
        if let Some(err) = &self.error {
            s.push_str(&format!(",\"error\":\"{}\"", json_escape(err)));
        }
        s.push_str(&format!(",\"has_trace\":{}}}", self.trace_json.is_some()));
        s
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    next_id: u64,
    running: BTreeMap<u64, QueryRecord>,
    completed: VecDeque<QueryRecord>,
    dropped_records: u64,
}

/// Thread-safe registry of queries keyed by request ID.
#[derive(Debug)]
pub struct QueryRegistry {
    inner: Mutex<RegistryInner>,
    completed_cap: usize,
}

impl Default for QueryRegistry {
    fn default() -> Self {
        Self::new(DEFAULT_COMPLETED_CAPACITY)
    }
}

impl QueryRegistry {
    /// Creates a registry retaining at most `completed_cap` finished records.
    pub fn new(completed_cap: usize) -> Self {
        Self {
            inner: Mutex::new(RegistryInner::default()),
            completed_cap: completed_cap.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a new running query and returns its request ID.
    pub fn begin(&self, sql: String, threads: usize) -> u64 {
        let mut inner = self.lock();
        inner.next_id += 1;
        let id = inner.next_id;
        inner.running.insert(
            id,
            QueryRecord {
                id,
                sql,
                threads,
                status: QueryStatus::Running,
                summary: None,
                error: None,
                duration_ms: None,
                trace_json: None,
            },
        );
        id
    }

    /// Completes a running query with its outcome summary and optional
    /// rendered trace.
    pub fn finish(
        &self,
        id: u64,
        summary: QuerySummary,
        duration_ms: u64,
        trace_json: Option<String>,
    ) {
        self.seal(id, |rec| {
            rec.status = QueryStatus::Completed;
            rec.summary = Some(summary);
            rec.duration_ms = Some(duration_ms);
            rec.trace_json = trace_json;
        });
    }

    /// Marks a running query as failed.
    pub fn fail(&self, id: u64, error: String, duration_ms: u64) {
        self.seal(id, |rec| {
            rec.status = QueryStatus::Failed;
            rec.error = Some(error);
            rec.duration_ms = Some(duration_ms);
        });
    }

    fn seal(&self, id: u64, apply: impl FnOnce(&mut QueryRecord)) {
        let mut inner = self.lock();
        let Some(mut rec) = inner.running.remove(&id) else {
            return; // unknown or already sealed: nothing to record
        };
        apply(&mut rec);
        if inner.completed.len() >= self.completed_cap {
            inner.completed.pop_front();
            inner.dropped_records += 1;
        }
        inner.completed.push_back(rec);
    }

    /// Looks up a query by ID (running or retained-completed).
    pub fn get(&self, id: u64) -> Option<QueryRecord> {
        let inner = self.lock();
        inner
            .running
            .get(&id)
            .or_else(|| inner.completed.iter().find(|r| r.id == id))
            .cloned()
    }

    /// `(running, completed_retained, dropped_records)` counts.
    pub fn counts(&self) -> (usize, usize, u64) {
        let inner = self.lock();
        (
            inner.running.len(),
            inner.completed.len(),
            inner.dropped_records,
        )
    }

    /// Renders the registry for `GET /queries`: running queries in ID
    /// order, then completed most-recent-first, plus the drop counter.
    pub fn to_json(&self) -> String {
        let inner = self.lock();
        let mut s = String::with_capacity(256);
        s.push_str("{\"running\":[");
        for (i, rec) in inner.running.values().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&rec.to_json());
        }
        s.push_str("],\"completed\":[");
        for (i, rec) in inner.completed.iter().rev().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&rec.to_json());
        }
        s.push_str(&format!(
            "],\"dropped_records\":{}}}",
            inner.dropped_records
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(explored: u64) -> QuerySummary {
        QuerySummary {
            termination: "complete".to_string(),
            explored,
            cells_executed: explored,
            answers: 1,
            satisfied: true,
            layers: 2,
        }
    }

    #[test]
    fn lifecycle_running_to_completed() {
        let reg = QueryRegistry::new(8);
        let id = reg.begin("select 1".to_string(), 4);
        assert_eq!(reg.get(id).unwrap().status, QueryStatus::Running);
        assert_eq!(reg.counts(), (1, 0, 0));

        reg.finish(id, summary(9), 12, Some("{\"events\":[]}".to_string()));
        let rec = reg.get(id).unwrap();
        assert_eq!(rec.status, QueryStatus::Completed);
        assert_eq!(rec.summary.as_ref().unwrap().explored, 9);
        assert_eq!(rec.duration_ms, Some(12));
        assert!(rec.trace_json.is_some());
        assert_eq!(reg.counts(), (0, 1, 0));
    }

    #[test]
    fn failed_queries_keep_their_error() {
        let reg = QueryRegistry::default();
        let id = reg.begin("select nope".to_string(), 1);
        reg.fail(id, "bind: unknown column `nope`".to_string(), 3);
        let rec = reg.get(id).unwrap();
        assert_eq!(rec.status, QueryStatus::Failed);
        assert!(rec.error.as_ref().unwrap().contains("unknown column"));
        assert!(rec.to_json().contains("\"status\":\"failed\""));
    }

    #[test]
    fn completed_ring_evicts_oldest_and_counts_drops() {
        let reg = QueryRegistry::new(2);
        let ids: Vec<u64> = (0..4).map(|i| reg.begin(format!("q{i}"), 1)).collect();
        for &id in &ids {
            reg.finish(id, summary(1), 1, None);
        }
        assert_eq!(reg.counts(), (0, 2, 2));
        assert!(reg.get(ids[0]).is_none(), "oldest evicted");
        assert!(reg.get(ids[3]).is_some());
        assert!(reg.to_json().contains("\"dropped_records\":2"));
    }

    #[test]
    fn registry_json_orders_completed_most_recent_first() {
        let reg = QueryRegistry::new(8);
        let a = reg.begin("first".to_string(), 1);
        let b = reg.begin("second".to_string(), 1);
        reg.finish(a, summary(1), 1, None);
        reg.finish(b, summary(2), 1, None);
        let json = reg.to_json();
        let first = json.find("\"sql\":\"first\"").unwrap();
        let second = json.find("\"sql\":\"second\"").unwrap();
        assert!(second < first, "most recent completion listed first");
        let parsed = crate::json::parse(&json).expect("registry JSON parses");
        assert_eq!(
            parsed.pointer("/completed/0/sql").and_then(|v| v.as_str()),
            Some("second")
        );
    }

    #[test]
    fn ids_are_unique_across_threads() {
        let reg = std::sync::Arc::new(QueryRegistry::default());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                (0..50)
                    .map(|_| reg.begin("q".to_string(), 1))
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 200, "no duplicate request IDs");
    }
}

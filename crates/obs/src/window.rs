//! Process-scoped instruments for long-running servers.
//!
//! The PR 3 instruments ([`crate::Metrics`]) are cumulative-forever, which
//! is the right shape for one-shot runs but useless for *watching* a
//! service: a counter that only ever grows cannot answer "how many queries
//! per second right now?". This module adds the two time-aware primitives
//! `acq-serve` exposes on `/metrics`:
//!
//! * [`RateCounter`] — a cumulative counter plus a ring of per-second
//!   buckets, so a scrape can report both the all-time total and the rate
//!   over the most recent window without the scraper having to keep state.
//! * [`DecayingHistogram`] — a fixed-bucket latency histogram whose bucket
//!   counts are halved every half-life, so p50/p95/p99 estimates track the
//!   *recent* latency distribution instead of being dominated by startup.
//!
//! Both record through relaxed atomics only — they are safe to commit from
//! request threads — and both take the current time as an explicit
//! `elapsed-since-epoch` argument so tests can drive the clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::metrics::Histogram;
use crate::snapshot::HistogramSnapshot;

/// Ring slots in a [`RateCounter`]; one per second.
pub const RATE_SLOTS: usize = 64;

/// Default averaging window for [`RateCounter::rate_per_sec`].
pub const DEFAULT_RATE_WINDOW_SECS: u64 = 30;

/// A cumulative counter with a per-second ring for rate estimation.
///
/// `record` is two relaxed `fetch_add`s plus at most one slot recycle; the
/// ring aliases after [`RATE_SLOTS`] seconds, so each slot carries the
/// second it was last written and is lazily zeroed when a new second claims
/// it. Rates are therefore exact over any window shorter than the ring.
#[derive(Debug)]
pub struct RateCounter {
    total: AtomicU64,
    /// Event counts per ring slot.
    slots: [AtomicU64; RATE_SLOTS],
    /// The absolute second each slot last counted for.
    stamps: [AtomicU64; RATE_SLOTS],
}

impl Default for RateCounter {
    fn default() -> Self {
        Self::new()
    }
}

/// Sentinel stamp for a slot that has never been written. Using an
/// impossible second (not representable within ~584 billion years of
/// uptime) keeps slot 0 of second 0 distinguishable from "never".
const STAMP_EMPTY: u64 = u64::MAX;

impl RateCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self {
            total: AtomicU64::new(0),
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
            stamps: std::array::from_fn(|_| AtomicU64::new(STAMP_EMPTY)),
        }
    }

    /// Adds `n` events at `now` (elapsed since the process epoch).
    pub fn record(&self, n: u64, now: Duration) {
        self.total.fetch_add(n, Ordering::Relaxed); // relaxed-ok: independent monotone counter
        let sec = now.as_secs();
        let i = (sec % RATE_SLOTS as u64) as usize;
        // Recycle the slot if it still carries an older second. The swap
        // makes exactly one thread the recycler; events the losers already
        // added for the *new* second are lost with the old count, which
        // under-counts one slot by at most the events of one race window —
        // acceptable for a rate gauge, never for `total`.
        // relaxed-ok: rate gauge tolerates racy recycle
        if self.stamps[i].load(Ordering::Relaxed) != sec {
            // relaxed-ok: swap picks one recycler
            if self.stamps[i].swap(sec, Ordering::Relaxed) != sec {
                self.slots[i].store(0, Ordering::Relaxed); // relaxed-ok: rate gauge tolerates racy recycle
            }
        }
        self.slots[i].fetch_add(n, Ordering::Relaxed); // relaxed-ok: per-slot gauge, no ordering needed
    }

    /// All-time event count.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed) // relaxed-ok: monotone counter read
    }

    /// Events per second averaged over the last `window` full seconds
    /// before `now`, clamped to the ring capacity. The current (partial)
    /// second is excluded so a scrape early in a second does not read an
    /// artificially low rate.
    pub fn rate_per_sec(&self, window: u64, now: Duration) -> f64 {
        let window = window.clamp(1, RATE_SLOTS as u64 - 1);
        let current = now.as_secs();
        let mut sum = 0u64;
        for back in 1..=window {
            let Some(sec) = current.checked_sub(back) else {
                break;
            };
            let i = (sec % RATE_SLOTS as u64) as usize;
            // relaxed-ok: gauge read, staleness tolerated
            if self.stamps[i].load(Ordering::Relaxed) == sec {
                sum += self.slots[i].load(Ordering::Relaxed); // relaxed-ok: gauge read, staleness tolerated
            }
        }
        sum as f64 / window as f64
    }
}

/// A fixed-bucket histogram whose counts decay by half every `half_life`.
///
/// Observations go through the inner lock-free [`Histogram`]; decay is a
/// periodic sweep that halves every bucket (and `count`/`sum`), serialised
/// by a `try_lock` so sweeps never run concurrently and — crucially for the
/// serve crate's instrument-commit discipline — `observe` never *blocks*:
/// a thread that loses the sweep race skips the decay (the winner is doing
/// it) and just records. The sweep subtracts `v - v/2` from each cell
/// instead of storing `v/2`, so observations that land *during* a sweep are
/// preserved rather than overwritten.
#[derive(Debug)]
pub struct DecayingHistogram {
    inner: Histogram,
    half_life: Duration,
    /// Elapsed-at-last-decay, in milliseconds; guarded by the sweep lock.
    last_decay_ms: Mutex<u64>,
}

impl DecayingHistogram {
    /// Creates a decaying histogram over `bounds` with the given half-life.
    pub fn new(bounds: &'static [u64], half_life: Duration) -> Self {
        Self {
            inner: Histogram::new(bounds),
            half_life: half_life.max(Duration::from_millis(1)),
            last_decay_ms: Mutex::new(0),
        }
    }

    /// Records one observation at `now`, applying any due decay first.
    pub fn observe(&self, v: u64, now: Duration) {
        self.maybe_decay(now);
        self.inner.observe(v);
    }

    /// Snapshot of the decayed distribution under `name`, applying any due
    /// decay first.
    pub fn snapshot(&self, name: &'static str, now: Duration) -> HistogramSnapshot {
        self.maybe_decay(now);
        HistogramSnapshot::of(name, &self.inner)
    }

    /// Applies one halving per elapsed half-life (capped so a long-idle
    /// histogram zeroes out instead of sweeping 64 times).
    fn maybe_decay(&self, now: Duration) {
        let now_ms = now.as_millis() as u64;
        let mut last = match self.last_decay_ms.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            // Another thread holds the sweep; never block a commit path.
            Err(std::sync::TryLockError::WouldBlock) => return,
        };
        let hl_ms = self.half_life.as_millis().max(1) as u64;
        let due = now_ms.saturating_sub(*last) / hl_ms;
        if due == 0 {
            return;
        }
        for _ in 0..due.min(8) {
            self.inner.halve();
        }
        if due > 8 {
            // ≥ 9 half-lives idle: the surviving counts round to zero.
            self.inner.halve_to_zero();
        }
        *last += due * hl_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(secs: u64) -> Duration {
        Duration::from_secs(secs)
    }

    #[test]
    fn rate_counter_totals_and_windows() {
        let c = RateCounter::new();
        // 5 events/sec for seconds 0..10.
        for sec in 0..10 {
            c.record(5, s(sec));
        }
        assert_eq!(c.total(), 50);
        // At t=10, the last 5 full seconds each carry 5 events.
        assert!((c.rate_per_sec(5, s(10)) - 5.0).abs() < 1e-9);
        // A long idle gap: slots age out of the window.
        assert_eq!(c.rate_per_sec(5, s(1000)), 0.0);
        assert_eq!(c.total(), 50, "total never decays");
    }

    #[test]
    fn rate_counter_ring_recycles_aliased_slots() {
        let c = RateCounter::new();
        c.record(100, s(3));
        // Second 3 + RATE_SLOTS aliases into the same slot; the old count
        // must not leak into the new second's rate.
        let aliased = 3 + RATE_SLOTS as u64;
        c.record(7, s(aliased));
        assert!((c.rate_per_sec(1, s(aliased + 1)) - 7.0).abs() < 1e-9);
        assert_eq!(c.total(), 107);
    }

    #[test]
    fn rate_counter_wraps_around_after_idle_gap_longer_than_window() {
        let c = RateCounter::new();
        // A burst, then an idle gap longer than the whole ring (so every
        // slot's stamp is stale when traffic resumes).
        for sec in 0..10 {
            c.record(4, s(sec));
        }
        let resume = 10 + RATE_SLOTS as u64 + 17;
        c.record(6, s(resume));
        c.record(6, s(resume + 1));
        // The window after the gap sees only post-gap traffic: stale slots
        // alias into range but their stamps disqualify them.
        assert!((c.rate_per_sec(2, s(resume + 2)) - 6.0).abs() < 1e-9);
        // A wide window is not polluted by pre-gap slots either.
        let wide = c.rate_per_sec(RATE_SLOTS as u64 - 1, s(resume + 2));
        assert!(
            (wide - 12.0 / (RATE_SLOTS as f64 - 1.0)).abs() < 1e-9,
            "only the 12 post-gap events may count, got {wide}"
        );
        assert_eq!(c.total(), 52, "total survives the gap undecayed");
    }

    #[test]
    fn empty_histograms_report_no_quantiles() {
        // A decaying histogram that has never observed anything...
        let h = DecayingHistogram::new(&[10, 100], Duration::from_secs(1));
        let snap = h.snapshot("h", s(5));
        assert_eq!(snap.count, 0);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), None, "q={q}");
        }
        // ...and one that decayed all the way back to empty.
        let d = DecayingHistogram::new(&[10], Duration::from_secs(1));
        d.observe(5, s(0));
        let decayed = d.snapshot("h", s(100));
        assert_eq!(decayed.count, 0);
        assert_eq!(decayed.quantile(0.5), None);
    }

    #[test]
    fn rate_excludes_the_partial_current_second() {
        let c = RateCounter::new();
        c.record(9, s(5));
        // Scraping within second 5 ignores its partial count...
        assert_eq!(c.rate_per_sec(3, s(5)), 0.0);
        // ...and sees it once the second has completed.
        assert!((c.rate_per_sec(1, s(6)) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn decaying_histogram_halves_per_half_life() {
        let h = DecayingHistogram::new(&[10, 100], Duration::from_secs(10));
        for _ in 0..8 {
            h.observe(5, s(0));
        }
        assert_eq!(h.snapshot("h", s(9)).count, 8, "within one half-life");
        assert_eq!(h.snapshot("h", s(10)).count, 4);
        assert_eq!(h.snapshot("h", s(20)).count, 2);
        // Nine+ half-lives idle: fully decayed.
        assert_eq!(h.snapshot("h", s(200)).count, 0);
        // New observations land on the decayed state.
        h.observe(50, s(201));
        let snap = h.snapshot("h", s(201));
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 50);
    }

    #[test]
    fn decay_is_monotone_in_time() {
        let h = DecayingHistogram::new(&[10], Duration::from_secs(1));
        for _ in 0..1000 {
            h.observe(1, s(0));
        }
        let mut prev = h.snapshot("h", s(0)).count;
        for t in 1..12 {
            let cur = h.snapshot("h", s(t)).count;
            assert!(cur <= prev, "t={t}: {cur} > {prev}");
            prev = cur;
        }
        assert_eq!(prev, 0, "1000 observations decay out within 11 halvings");
    }
}

//! A minimal recursive-descent JSON parser.
//!
//! The workspace builds offline with no serde, so schema validation (CI's
//! `validate_metrics` bin) and the crate's own round-trip tests need a small
//! self-contained parser. It accepts the full JSON grammar (RFC 8259) minus
//! `\uXXXX` surrogate-pair decoding, which the snapshot format never emits.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as f64; integers up to 2^53 are exact).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is not preserved (keys are sorted).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a str, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_obj().and_then(|o| o.get(key))
    }

    /// Resolves a `/a/b/0`-style JSON pointer (no `~` escapes; array
    /// indices are decimal).
    pub fn pointer(&self, ptr: &str) -> Option<&JsonValue> {
        let mut cur = self;
        for part in ptr.split('/').skip(1) {
            cur = match cur {
                JsonValue::Obj(o) => o.get(part)?,
                JsonValue::Arr(a) => a.get(part.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// The JSON type name used in validation messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "boolean",
            JsonValue::Num(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }
}

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("unsupported \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // boundary arithmetic is safe).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"s":"x\ny"}"#).unwrap();
        assert_eq!(v.pointer("/a/0").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(v.pointer("/a/1").and_then(JsonValue::as_f64), Some(2.5));
        assert_eq!(v.pointer("/a/2").and_then(JsonValue::as_f64), Some(-300.0));
        assert_eq!(v.pointer("/b/c"), Some(&JsonValue::Null));
        assert_eq!(v.pointer("/b/d").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.pointer("/s").and_then(JsonValue::as_str), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes_and_raw_utf8() {
        let v = parse(r#""café ☕""#).unwrap();
        assert_eq!(v.as_str(), Some("café ☕"));
    }
}

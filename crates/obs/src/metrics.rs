//! Lock-free instrument primitives and the fixed pipeline instrument registry.
//!
//! Everything in this module is a plain atomic: recording is a single
//! `fetch_add`/`store` with relaxed ordering, cheap enough to leave compiled
//! into hot loops. There is no dynamic metric registration — the pipeline's
//! instruments form a closed set ([`Metrics`]) so lookup cost is a field
//! access and the snapshot format is stable.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sentinel stored in a [`Gauge`] that has never been set; such gauges are
/// omitted from snapshots.
pub const GAUGE_UNSET: u64 = u64::MAX;

/// A last-write-wins instantaneous value (e.g. current layer, store bytes).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// Creates an unset gauge.
    pub const fn new() -> Self {
        Self(AtomicU64::new(GAUGE_UNSET))
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to at least `v` (used for peaks).
    #[inline]
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v.min(GAUGE_UNSET - 1), Ordering::Relaxed);
    }

    /// Current value, or `None` if never set.
    #[inline]
    pub fn get(&self) -> Option<u64> {
        match self.0.load(Ordering::Relaxed) {
            GAUGE_UNSET => None,
            v => Some(v),
        }
    }
}

/// Bucket upper bounds (inclusive, nanoseconds) for cell execution latency.
///
/// Log-spaced powers of four from 250 ns to ~4.2 s; observations above the
/// last bound land in the implicit overflow (`+Inf`) bucket.
pub const LATENCY_BUCKETS_NS: &[u64] = &[
    250,
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    4_194_304_000,
];

/// Bucket upper bounds (inclusive, cells) for Expand batch sizes, matching
/// the driver's power-of-two batching up to `MAX_BATCH`.
pub const BATCH_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// A fixed-bucket histogram with cumulative `count` and `sum`.
///
/// Bucket bounds are a static slice chosen at construction; one extra
/// overflow bucket catches observations above the last bound. All updates
/// are relaxed atomics, so concurrent `observe` calls never lock.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// Creates a histogram over `bounds` (must be strictly increasing).
    pub fn new(bounds: &'static [u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Self {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Bucket upper bounds (without the overflow bucket).
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Per-bucket (non-cumulative) counts; the final entry is the overflow
    /// bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Halves every cell (buckets, `count`, `sum`), rounding down.
    ///
    /// Used by [`crate::window::DecayingHistogram`]. Each cell subtracts
    /// `v - v/2` instead of storing `v/2`, so observations racing with the
    /// sweep survive it instead of being overwritten.
    pub fn halve(&self) {
        for cell in self.cells() {
            let v = cell.load(Ordering::Relaxed);
            cell.fetch_sub(v - v / 2, Ordering::Relaxed);
        }
    }

    /// Zeroes every cell the same race-tolerant way as [`Self::halve`].
    pub fn halve_to_zero(&self) {
        for cell in self.cells() {
            let v = cell.load(Ordering::Relaxed);
            cell.fetch_sub(v, Ordering::Relaxed);
        }
    }

    /// Folds a captured snapshot of a same-bounds histogram into this one.
    /// Snapshots over different bounds are ignored (shape mismatch).
    pub fn absorb(&self, snap: &crate::snapshot::HistogramSnapshot) {
        if snap.buckets.len() != self.buckets.len() {
            return;
        }
        for (cell, &(_, n)) in self.buckets.iter().zip(&snap.buckets) {
            cell.fetch_add(n, Ordering::Relaxed);
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
    }

    fn cells(&self) -> impl Iterator<Item = &AtomicU64> {
        self.buckets.iter().chain([&self.count, &self.sum])
    }
}

/// Maximum worker slots tracked individually; workers beyond this alias into
/// the last slot (the pipeline caps thread counts far below this).
pub const MAX_WORKERS: usize = 64;

/// Per-worker execution tallies for the Explore thread pool.
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Cells this worker executed speculatively (own chunk + stolen).
    pub cells: Counter,
    /// Cells this worker claimed from another worker's chunk.
    pub steals: Counter,
}

/// The closed set of pipeline instruments.
///
/// Counters and histograms split into two determinism classes, documented
/// per field: *deterministic* instruments are only touched from the driver's
/// serial commit loop and are bit-reproducible for a given query and budget
/// regardless of thread count; *scheduling-dependent* instruments are
/// recorded from worker threads and vary run to run (they are informational
/// and excluded from determinism tests).
#[derive(Debug)]
pub struct Metrics {
    /// Deterministic: committed cell executions — equals `AcqOutcome.explored`.
    pub cells_executed: Counter,
    /// Scheduling-dependent: speculative executions on pool workers (a cell
    /// abandoned by the pool and re-run serially is not counted here).
    pub cells_speculative: Counter,
    /// Deterministic: refined queries that satisfied the constraint.
    pub answers_found: Counter,
    /// Deterministic: repartition rounds performed (Algorithm 4).
    pub repartitions: Counter,
    /// Deterministic: runs that ended on an interrupt (budget/cancellation).
    pub interrupts: Counter,
    /// Deterministic under a fixed fault schedule: injected faults fired.
    pub faults_injected: Counter,
    /// Invariant: §5 at-most-once violations detected by the pool's result
    /// slots. Must always read 0; any other value is a bug.
    pub at_most_once_violations: Counter,
    /// Scheduling-dependent: total cross-chunk steals in the pool.
    pub worker_steals: Counter,
    /// Trace events discarded because the bounded buffer was full.
    pub trace_dropped: Counter,
    /// Deterministic: the Expand layer currently being explored.
    pub current_layer: Gauge,
    /// Deterministic: cells in the most recent Expand batch.
    pub frontier_batch: Gauge,
    /// Deterministic: live entries in the aggregate store.
    pub store_len: Gauge,
    /// Deterministic: peak live entries (mirrors `AcqOutcome.peak_store`).
    pub store_peak: Gauge,
    /// Deterministic: approximate bytes held by the aggregate store.
    pub store_bytes: Gauge,
    /// Deterministic: remaining `max_explored` budget, if one is set.
    pub budget_headroom: Gauge,
    /// Per-cell execution latency. The *count* is deterministic (one
    /// observation per committed cell); the sampled durations are wall
    /// clock and therefore vary.
    pub cell_latency_ns: Histogram,
    /// Deterministic: Expand batch size distribution.
    pub batch_cells: Histogram,
    workers: Vec<WorkerStats>,
    /// Accumulated engine work counters (`ExecStats` fields, including the
    /// zone-map counters) summed across every absorbed per-query snapshot,
    /// keyed by field name in first-seen order. This is what lets a
    /// process-scoped `/metrics` scrape surface `acq_exec_*_total` lines.
    exec_stats: std::sync::Mutex<Vec<(String, u64)>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Creates the registry with every instrument at zero/unset.
    pub fn new() -> Self {
        Self {
            cells_executed: Counter::new(),
            cells_speculative: Counter::new(),
            answers_found: Counter::new(),
            repartitions: Counter::new(),
            interrupts: Counter::new(),
            faults_injected: Counter::new(),
            at_most_once_violations: Counter::new(),
            worker_steals: Counter::new(),
            trace_dropped: Counter::new(),
            current_layer: Gauge::new(),
            frontier_batch: Gauge::new(),
            store_len: Gauge::new(),
            store_peak: Gauge::new(),
            store_bytes: Gauge::new(),
            budget_headroom: Gauge::new(),
            cell_latency_ns: Histogram::new(LATENCY_BUCKETS_NS),
            batch_cells: Histogram::new(BATCH_BUCKETS),
            workers: (0..MAX_WORKERS).map(|_| WorkerStats::default()).collect(),
            exec_stats: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// The accumulated engine work counters, in first-seen field order.
    pub fn exec_stat_values(&self) -> Vec<(String, u64)> {
        self.exec_stats
            .lock()
            .map(|g| g.clone())
            .unwrap_or_default()
    }

    /// Records one speculative cell execution by worker `w`, stolen or not.
    #[inline]
    pub fn record_worker_cell(&self, w: usize, stolen: bool) {
        let slot = &self.workers[w.min(MAX_WORKERS - 1)];
        slot.cells.inc();
        self.cells_speculative.inc();
        if stolen {
            slot.steals.inc();
            self.worker_steals.inc();
        }
    }

    /// Per-worker tallies for workers that executed at least one cell.
    pub fn worker_tallies(&self) -> Vec<(usize, u64, u64)> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.cells.get() > 0)
            .map(|(i, s)| (i, s.cells.get(), s.steals.get()))
            .collect()
    }

    /// Name/value pairs for every counter, in stable snapshot order.
    pub fn counter_values(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("cells_executed", self.cells_executed.get()),
            ("cells_speculative", self.cells_speculative.get()),
            ("answers_found", self.answers_found.get()),
            ("repartitions", self.repartitions.get()),
            ("interrupts", self.interrupts.get()),
            ("faults_injected", self.faults_injected.get()),
            (
                "at_most_once_violations",
                self.at_most_once_violations.get(),
            ),
            ("worker_steals", self.worker_steals.get()),
            ("trace_dropped", self.trace_dropped.get()),
        ]
    }

    /// Name/value pairs for every *set* gauge, in stable snapshot order.
    pub fn gauge_values(&self) -> Vec<(&'static str, u64)> {
        [
            ("current_layer", self.current_layer.get()),
            ("frontier_batch", self.frontier_batch.get()),
            ("store_len", self.store_len.get()),
            ("store_peak", self.store_peak.get()),
            ("store_bytes", self.store_bytes.get()),
            ("budget_headroom", self.budget_headroom.get()),
        ]
        .into_iter()
        .filter_map(|(k, v)| v.map(|v| (k, v)))
        .collect()
    }

    /// Folds a finished run's snapshot into this registry.
    ///
    /// This is how `acq-serve` aggregates: each request runs against its own
    /// per-query [`crate::Obs`] handle (so `/trace/<id>` and explain profiles
    /// stay per-query), and at completion the query's snapshot is absorbed
    /// into one process-scoped registry scraped by `/metrics`. Counters,
    /// engine work counters (`exec_stats`) and histogram buckets add; gauges
    /// keep the maximum seen across runs, which preserves the peak semantics
    /// (`store_peak`) and gives "worst run so far" for the rest.
    pub fn absorb_snapshot(&self, snap: &crate::snapshot::MetricsSnapshot) {
        for &(name, v) in &snap.counters {
            match name {
                "cells_executed" => self.cells_executed.add(v),
                "cells_speculative" => self.cells_speculative.add(v),
                "answers_found" => self.answers_found.add(v),
                "repartitions" => self.repartitions.add(v),
                "interrupts" => self.interrupts.add(v),
                "faults_injected" => self.faults_injected.add(v),
                "at_most_once_violations" => self.at_most_once_violations.add(v),
                "worker_steals" => self.worker_steals.add(v),
                "trace_dropped" => self.trace_dropped.add(v),
                _ => {} // counters added after this writer are skipped, not lost: they stay in the per-query snapshot
            }
        }
        for &(name, v) in &snap.gauges {
            match name {
                "current_layer" => self.current_layer.raise(v),
                "frontier_batch" => self.frontier_batch.raise(v),
                "store_len" => self.store_len.raise(v),
                "store_peak" => self.store_peak.raise(v),
                "store_bytes" => self.store_bytes.raise(v),
                "budget_headroom" => self.budget_headroom.raise(v),
                _ => {}
            }
        }
        for h in &snap.histograms {
            match h.name {
                "cell_latency_ns" => self.cell_latency_ns.absorb(h),
                "batch_cells" => self.batch_cells.absorb(h),
                _ => {}
            }
        }
        for &(w, cells, steals) in &snap.workers {
            let slot = &self.workers[w.min(MAX_WORKERS - 1)];
            slot.cells.add(cells);
            slot.steals.add(steals);
        }
        if let Ok(mut acc) = self.exec_stats.lock() {
            for (name, v) in &snap.exec_stats {
                match acc.iter_mut().find(|(k, _)| k == name) {
                    Some((_, total)) => *total += v,
                    None => acc.push((name.clone(), *v)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        assert_eq!(g.get(), None);
        g.set(7);
        assert_eq!(g.get(), Some(7));
        g.raise(3);
        assert_eq!(g.get(), Some(7), "raise never lowers");
        g.raise(11);
        assert_eq!(g.get(), Some(11));
    }

    #[test]
    fn histogram_buckets_observations() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5 + 10 + 11 + 100 + 5000);
        // Bounds are inclusive: 10 lands in the first bucket, 5000 overflows.
        assert_eq!(h.bucket_counts(), vec![2, 2, 0, 1]);
    }

    #[test]
    fn empty_histogram_snapshot_has_no_quantiles() {
        let h = Histogram::new(&[10, 100, 1000]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.bucket_counts(), vec![0, 0, 0, 0]);
        let snap = crate::snapshot::HistogramSnapshot::of("h", &h);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), None, "q={q}");
        }
        assert_eq!(
            snap.quantiles(),
            [("p50", None), ("p95", None), ("p99", None)]
        );
    }

    #[test]
    fn histogram_halving_and_absorb() {
        let h = Histogram::new(&[10, 100]);
        for v in [5, 5, 50, 500] {
            h.observe(v);
        }
        h.halve();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 280);
        assert_eq!(h.bucket_counts(), vec![1, 0, 0], "halving rounds down");
        h.halve_to_zero();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);

        let src = Histogram::new(&[10, 100]);
        src.observe(7);
        src.observe(700);
        let snap = crate::snapshot::HistogramSnapshot::of("h", &src);
        h.absorb(&snap);
        h.absorb(&snap);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1414);
        assert_eq!(h.bucket_counts(), vec![2, 0, 2]);
        // Shape mismatch is ignored rather than corrupting buckets.
        let other = Histogram::new(&[1]);
        other.observe(1);
        h.absorb(&crate::snapshot::HistogramSnapshot::of("o", &other));
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn absorb_snapshot_adds_counters_and_raises_gauges() {
        let per_query = Metrics::new();
        per_query.cells_executed.add(10);
        per_query.answers_found.add(2);
        per_query.store_peak.set(30);
        per_query.cell_latency_ns.observe(500);
        per_query.record_worker_cell(1, true);
        let snap = crate::snapshot::MetricsSnapshot::capture(&per_query, 0, vec![], vec![]);

        let process = Metrics::new();
        process.cells_executed.add(5);
        process.store_peak.set(40);
        process.absorb_snapshot(&snap);
        process.absorb_snapshot(&snap);
        assert_eq!(process.cells_executed.get(), 25);
        assert_eq!(process.answers_found.get(), 4);
        assert_eq!(process.store_peak.get(), Some(40), "gauges keep the max");
        assert_eq!(process.cell_latency_ns.count(), 2);
        assert_eq!(process.worker_tallies(), vec![(1, 2, 2)]);
        assert_eq!(process.worker_steals.get(), 2);
    }

    #[test]
    fn absorb_snapshot_accumulates_exec_stats() {
        let per_query = Metrics::new();
        let snap = crate::snapshot::MetricsSnapshot::capture(
            &per_query,
            0,
            vec![
                ("tuples_scanned".to_string(), 100),
                ("zones_pruned".to_string(), 7),
            ],
            vec![],
        );
        let process = Metrics::new();
        process.absorb_snapshot(&snap);
        process.absorb_snapshot(&snap);
        assert_eq!(
            process.exec_stat_values(),
            vec![
                ("tuples_scanned".to_string(), 200),
                ("zones_pruned".to_string(), 14),
            ]
        );
    }

    #[test]
    fn worker_tallies_skip_idle_workers() {
        let m = Metrics::new();
        m.record_worker_cell(0, false);
        m.record_worker_cell(2, true);
        m.record_worker_cell(2, false);
        assert_eq!(m.worker_tallies(), vec![(0, 1, 0), (2, 2, 1)]);
        assert_eq!(m.cells_speculative.get(), 3);
        assert_eq!(m.worker_steals.get(), 1);
        // Out-of-range workers alias into the last slot instead of panicking.
        m.record_worker_cell(1000, true);
        assert_eq!(m.worker_tallies().last(), Some(&(MAX_WORKERS - 1, 1, 1)));
    }
}

//! Admission-control instruments for an overload-resilient server.
//!
//! `acq-serve` sheds, queues and degrades work instead of falling over;
//! this module is the closed set of counters that make every one of those
//! decisions observable. Like the pipeline registry ([`crate::Metrics`])
//! there is no dynamic registration: the instruments are plain fields, so
//! recording is a relaxed `fetch_add` and the scrape format is stable.
//! Every counter is wait-free — these commits happen on request threads
//! between accepting a query and writing its response (the serve crate's
//! `commit_paths` discipline).

use crate::metrics::Counter;

/// Counters for every admission-control decision a server can take.
///
/// The Prometheus names rendered by [`AdmissionStats::render_prometheus`]
/// are `<prefix>_<field>_total`; `acq-serve` uses the `acq_serve` prefix,
/// giving e.g. `acq_serve_conn_rejected_total`.
#[derive(Debug, Default)]
pub struct AdmissionStats {
    /// Connections shed at the door: the bounded accept queue was full (or
    /// a connection-handling thread could not be obtained), so the server
    /// answered `503` on the accepted stream instead of silently dropping it.
    pub conn_rejected: Counter,
    /// Queries rejected with `429 Too Many Requests` by a per-client or
    /// global token bucket.
    pub rate_limited: Counter,
    /// Queries rejected with `503 Service Unavailable` at the query gate:
    /// the pending queue was full, the queue wait timed out, or the server
    /// was shutting down.
    pub shed: Counter,
    /// Admitted queries that waited in the bounded pending queue first.
    pub queued: Counter,
    /// Admitted queries run in best-effort mode with a shrunken budget
    /// because load crossed the high-water mark; their responses carry
    /// `"degraded": true` and an explicit termination status.
    pub degraded: Counter,
    /// Queries admitted to execution (degraded ones included).
    pub admitted: Counter,
    /// Requests that started arriving but did not complete within the read
    /// deadline (slowloris headers, stalled bodies): answered `408`.
    pub read_timeouts: Counter,
    /// Additional requests served on an already-established keep-alive
    /// connection (the first request on a connection does not count).
    pub keepalive_reuses: Counter,
    /// Per-client token buckets dropped by the limiter's TTL sweep or its
    /// size cap — the memory bound holding under address-diverse floods.
    pub clients_evicted: Counter,
}

impl AdmissionStats {
    /// Fresh instruments, all zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `(name, help, counter)` rows in stable render order.
    fn rows(&self) -> [(&'static str, &'static str, &Counter); 9] {
        [
            (
                "conn_rejected",
                "Connections shed with 503 at the bounded accept queue",
                &self.conn_rejected,
            ),
            (
                "rate_limited",
                "Queries rejected with 429 by a token bucket",
                &self.rate_limited,
            ),
            (
                "shed",
                "Queries rejected with 503 at the admission gate",
                &self.shed,
            ),
            (
                "queued",
                "Admitted queries that waited in the pending queue",
                &self.queued,
            ),
            (
                "degraded",
                "Admitted queries run best-effort with shrunken budgets",
                &self.degraded,
            ),
            ("admitted", "Queries admitted to execution", &self.admitted),
            (
                "read_timeouts",
                "Requests answered 408 after missing the read deadline",
                &self.read_timeouts,
            ),
            (
                "keepalive_reuses",
                "Extra requests served over kept-alive connections",
                &self.keepalive_reuses,
            ),
            (
                "clients_evicted",
                "Per-client token buckets dropped by the TTL sweep or size cap",
                &self.clients_evicted,
            ),
        ]
    }

    /// Renders every counter as Prometheus text under `prefix`
    /// (`<prefix>_<name>_total`).
    #[must_use]
    pub fn render_prometheus(&self, prefix: &str) -> String {
        let mut s = String::with_capacity(1024);
        for (name, help, c) in self.rows() {
            s.push_str(&format!(
                "# HELP {prefix}_{name}_total {help}\n\
                 # TYPE {prefix}_{name}_total counter\n\
                 {prefix}_{name}_total {}\n",
                c.get()
            ));
        }
        s
    }

    /// Renders every counter as one flat JSON object (`{"name": value}`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        for (i, (name, _, c)) in self.rows().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{name}\":{}", c.get()));
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_rendering_covers_every_counter() {
        let stats = AdmissionStats::new();
        stats.conn_rejected.add(2);
        stats.rate_limited.inc();
        stats.shed.add(3);
        stats.degraded.inc();
        let text = stats.render_prometheus("acq_serve");
        for series in [
            "acq_serve_conn_rejected_total 2",
            "acq_serve_rate_limited_total 1",
            "acq_serve_shed_total 3",
            "acq_serve_queued_total 0",
            "acq_serve_degraded_total 1",
            "acq_serve_admitted_total 0",
            "acq_serve_read_timeouts_total 0",
            "acq_serve_keepalive_reuses_total 0",
        ] {
            assert!(text.contains(series), "missing {series:?} in:\n{text}");
        }
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "bad exposition line: {line}"
            );
        }
    }

    #[test]
    fn json_rendering_parses_and_matches() {
        let stats = AdmissionStats::new();
        stats.admitted.add(5);
        stats.keepalive_reuses.add(7);
        let v = crate::json::parse(&stats.to_json()).expect("valid JSON");
        assert_eq!(v.pointer("/admitted").and_then(|x| x.as_u64()), Some(5));
        assert_eq!(
            v.pointer("/keepalive_reuses").and_then(|x| x.as_u64()),
            Some(7)
        );
        assert_eq!(v.pointer("/shed").and_then(|x| x.as_u64()), Some(0));
    }
}

//! Zero-dependency observability for the ACQUIRE pipeline.
//!
//! The crate provides one cheap, cloneable handle — [`Obs`] — that the
//! driver, thread pool, governor and fault layers thread through the
//! pipeline. A handle exists in three states:
//!
//! - **disabled** ([`Obs::disabled`]): a `None` inside; every record method
//!   is a branch on a null pointer and nothing else. This is the default
//!   everywhere, which is how the <2% disabled-overhead budget is met.
//! - **counters** ([`Obs::enabled`]): the fixed instrument registry
//!   ([`Metrics`]) is live — atomic counters, gauges and fixed-bucket
//!   histograms — but no trace buffer, so no strings are ever built.
//! - **tracing** ([`Obs::with_trace`]): counters plus a bounded
//!   human-readable span/event buffer ([`TraceBuf`]).
//!
//! Sinks are pull-based: [`Obs::snapshot`] captures a [`MetricsSnapshot`]
//! that renders to JSON (`--metrics-out`) or Prometheus text, and
//! [`Obs::render_trace`] renders the trace log (`--trace`). Snapshot
//! determinism is inherited from *where* instruments are recorded, not from
//! this crate: the pipeline commits all deterministic metrics in serial
//! emission order (see DESIGN.md), so two runs of the same query produce
//! identical counter values for any thread count.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod admission;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod schema;
pub mod snapshot;
pub mod timeseries;
pub mod trace;
pub mod window;

pub use admission::AdmissionStats;
pub use journal::{
    Journal, JournalRing, DEFAULT_JOURNAL_CAPACITY, DEFAULT_JOURNAL_MAX_BYTES, JOURNAL_VERSION,
};
pub use metrics::{Counter, Gauge, Histogram, Metrics, WorkerStats, MAX_WORKERS};
pub use registry::{QueryRecord, QueryRegistry, QueryStatus, QuerySummary};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot, SNAPSHOT_QUANTILES, SNAPSHOT_VERSION};
pub use timeseries::{
    CounterSource, FlightRecorder, DEFAULT_RECORDER_CADENCE, DEFAULT_RECORDER_CAPACITY,
    TIMESERIES_VERSION,
};
pub use trace::{TraceBuf, TraceEvent};
pub use window::{DecayingHistogram, RateCounter};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Default bound on retained trace events.
pub const DEFAULT_TRACE_CAPACITY: usize = 10_000;

/// Sentinel in `ObsInner::query_id` meaning "no request ID attached";
/// [`QueryRegistry`] IDs start at 1.
const QUERY_ID_UNSET: u64 = 0;

#[derive(Debug)]
struct ObsInner {
    metrics: Metrics,
    trace: Option<TraceBuf>,
    start: Instant,
    exec_stats: Mutex<Vec<(String, u64)>>,
    meta: Mutex<Vec<(String, String)>>,
    query_id: AtomicU64,
}

/// A cloneable observability handle; see the crate docs for the three
/// states. Cloning shares the underlying instruments.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// The no-op handle: every method returns immediately.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Counters, gauges and histograms live; tracing off.
    pub fn enabled() -> Self {
        Self::build(None)
    }

    /// Counters plus a trace buffer bounded at `capacity` events.
    pub fn with_trace(capacity: usize) -> Self {
        Self::build(Some(TraceBuf::new(capacity)))
    }

    fn build(trace: Option<TraceBuf>) -> Self {
        Self {
            inner: Some(Arc::new(ObsInner {
                metrics: Metrics::new(),
                trace,
                start: Instant::now(),
                exec_stats: Mutex::new(Vec::new()),
                meta: Mutex::new(Vec::new()),
                query_id: AtomicU64::new(QUERY_ID_UNSET),
            })),
        }
    }

    /// Whether any instruments are live.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether the trace buffer is live (implies [`Obs::is_enabled`]).
    #[inline]
    pub fn is_tracing(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.trace.is_some())
    }

    /// The instrument registry, if enabled. Hot paths should bind this once
    /// (`if let Some(m) = obs.metrics()`) instead of re-checking per event.
    #[inline]
    pub fn metrics(&self) -> Option<&Metrics> {
        self.inner.as_deref().map(|i| &i.metrics)
    }

    /// Time since the handle was created, or zero when disabled.
    pub fn uptime(&self) -> Duration {
        self.inner
            .as_deref()
            .map(|i| i.start.elapsed())
            .unwrap_or(Duration::ZERO)
    }

    /// Records an instantaneous trace event. The label closure only runs
    /// when tracing is live, so callers can format freely.
    #[inline]
    pub fn trace(&self, depth: u8, label: impl FnOnce() -> String) {
        self.trace_inner(depth, None, label);
    }

    /// Records a completed span of duration `dur`.
    #[inline]
    pub fn trace_span(&self, depth: u8, dur: Duration, label: impl FnOnce() -> String) {
        self.trace_inner(depth, Some(dur), label);
    }

    fn trace_inner(&self, depth: u8, dur: Option<Duration>, label: impl FnOnce() -> String) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        let Some(buf) = inner.trace.as_ref() else {
            return;
        };
        let event = TraceEvent {
            at: inner.start.elapsed(),
            dur,
            depth,
            label: label(),
        };
        if !buf.push(event) {
            inner.metrics.trace_dropped.inc();
        }
    }

    /// Attaches a key/value run metadata pair (layer kind, thread count, …).
    /// Re-setting a key overwrites its previous value.
    pub fn set_meta(&self, key: &str, value: &str) {
        if let Some(inner) = self.inner.as_deref() {
            let mut meta = inner.meta.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(slot) = meta.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value.to_string();
            } else {
                meta.push((key.to_string(), value.to_string()));
            }
        }
    }

    /// Replaces the bridged engine executor statistics. Takes plain
    /// name/value pairs so the engine crate needs no dependency on this one.
    pub fn record_exec_stats(&self, fields: &[(&str, u64)]) {
        if let Some(inner) = self.inner.as_deref() {
            *inner
                .exec_stats
                .lock()
                .unwrap_or_else(PoisonError::into_inner) =
                fields.iter().map(|&(k, v)| (k.to_string(), v)).collect();
        }
    }

    /// Captures a snapshot of every instrument, or `None` when disabled.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        let inner = self.inner.as_deref()?;
        Some(MetricsSnapshot::capture(
            &inner.metrics,
            inner.start.elapsed().as_millis() as u64,
            inner
                .exec_stats
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
            inner
                .meta
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
        ))
    }

    /// Renders the trace buffer as text, or `None` unless tracing.
    pub fn render_trace(&self) -> Option<String> {
        let inner = self.inner.as_deref()?;
        let buf = inner.trace.as_ref()?;
        Some(buf.render(inner.metrics.trace_dropped.get()))
    }

    /// Renders the trace buffer as JSON (with an honest `truncated` flag),
    /// or `None` unless tracing. This is what `GET /trace/<id>` serves.
    pub fn render_trace_json(&self) -> Option<String> {
        let inner = self.inner.as_deref()?;
        let buf = inner.trace.as_ref()?;
        Some(buf.render_json(inner.metrics.trace_dropped.get()))
    }

    /// Renders the trace buffer in the Chrome trace-event format (see
    /// [`TraceBuf::render_chrome`]), or `None` unless tracing. This is what
    /// `GET /trace/<id>?format=chrome` and `--trace-format=chrome` serve;
    /// the output opens directly in `ui.perfetto.dev`.
    pub fn render_trace_chrome(&self) -> Option<String> {
        let inner = self.inner.as_deref()?;
        let buf = inner.trace.as_ref()?;
        Some(buf.render_chrome(inner.metrics.trace_dropped.get()))
    }

    /// Attaches a [`QueryRegistry`] request ID to this handle. The driver
    /// reads it back ([`Obs::query_id`]) to tag its phase spans, so a trace
    /// scraped from a multi-query server is attributable to its request.
    /// Also mirrored into the snapshot metadata as `query_id`.
    pub fn set_query_id(&self, id: u64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.query_id.store(id, Ordering::Relaxed); // relaxed-ok: tag set once before the search
            self.set_meta("query_id", &id.to_string());
        }
    }

    /// The attached request ID, if any.
    pub fn query_id(&self) -> Option<u64> {
        let inner = self.inner.as_deref()?;
        // relaxed-ok: tag read, no ordering needed
        match inner.query_id.load(Ordering::Relaxed) {
            QUERY_ID_UNSET => None,
            id => Some(id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        assert!(!obs.is_tracing());
        assert!(obs.metrics().is_none());
        obs.trace(0, || panic!("label must not be built when disabled"));
        obs.set_meta("k", "v");
        obs.record_exec_stats(&[("x", 1)]);
        assert!(obs.snapshot().is_none());
        assert!(obs.render_trace().is_none());
    }

    #[test]
    fn counters_only_handle_skips_label_construction() {
        let obs = Obs::enabled();
        assert!(obs.is_enabled());
        assert!(!obs.is_tracing());
        obs.trace(0, || {
            panic!("label must not be built without a trace buffer")
        });
        obs.metrics().unwrap().cells_executed.inc();
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.counter("cells_executed"), Some(1));
        assert!(obs.render_trace().is_none());
    }

    #[test]
    fn tracing_handle_records_and_renders() {
        let obs = Obs::with_trace(8);
        obs.trace(0, || "start".to_string());
        obs.trace_span(1, Duration::from_millis(2), || "layer 0".to_string());
        let text = obs.render_trace().unwrap();
        assert!(text.contains("start"), "{text}");
        assert!(text.contains("layer 0"), "{text}");
    }

    #[test]
    fn clones_share_instruments() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        clone.metrics().unwrap().cells_executed.add(3);
        assert_eq!(obs.snapshot().unwrap().counter("cells_executed"), Some(3));
    }

    #[test]
    fn meta_overwrites_and_exec_stats_replace() {
        let obs = Obs::enabled();
        obs.set_meta("layer", "scan");
        obs.set_meta("layer", "grid-index");
        obs.record_exec_stats(&[("cell_queries", 1)]);
        obs.record_exec_stats(&[("cell_queries", 9)]);
        let snap = obs.snapshot().unwrap();
        assert_eq!(
            snap.meta,
            vec![("layer".to_string(), "grid-index".to_string())]
        );
        assert_eq!(snap.exec_stats, vec![("cell_queries".to_string(), 9)]);
    }

    #[test]
    fn query_ids_attach_and_surface_in_meta() {
        let obs = Obs::enabled();
        assert_eq!(obs.query_id(), None);
        obs.set_query_id(7);
        assert_eq!(obs.query_id(), Some(7));
        let snap = obs.snapshot().unwrap();
        assert!(snap
            .meta
            .contains(&("query_id".to_string(), "7".to_string())));
        // Disabled handles stay inert.
        let off = Obs::disabled();
        off.set_query_id(3);
        assert_eq!(off.query_id(), None);
    }

    #[test]
    fn trace_overflow_counts_dropped_events() {
        let obs = Obs::with_trace(1);
        obs.trace(0, || "kept".to_string());
        obs.trace(0, || "dropped".to_string());
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.counter("trace_dropped"), Some(1));
        assert!(obs.render_trace().unwrap().contains("1 event(s) dropped"));
    }
}

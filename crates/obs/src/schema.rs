//! A validator for the JSON-Schema subset used by
//! `schemas/metrics.schema.json`.
//!
//! Supported keywords: `type` (string or array of strings, including
//! `"integer"`), `required`, `properties`, `additionalProperties` (schema
//! form only), `items`, `minimum`, `enum`, and `const`. That is enough to
//! pin down the metrics snapshot structure; anything fancier would be
//! over-engineering for an offline validator.

use crate::json::JsonValue;

/// Validates `value` against `schema`, returning every violation found
/// (empty vec = valid). Paths in messages are JSON-pointer style.
pub fn validate(schema: &JsonValue, value: &JsonValue) -> Vec<String> {
    let mut errors = Vec::new();
    check(schema, value, "", &mut errors);
    errors
}

fn type_matches(ty: &str, value: &JsonValue) -> bool {
    match ty {
        "integer" => value.as_f64().is_some_and(|n| n.fract() == 0.0),
        other => value.type_name() == other,
    }
}

fn check(schema: &JsonValue, value: &JsonValue, path: &str, errors: &mut Vec<String>) {
    let here = || {
        if path.is_empty() {
            "/".to_string()
        } else {
            path.to_string()
        }
    };

    if let Some(expected) = schema.get("const") {
        if expected != value {
            errors.push(format!("{}: value does not match const", here()));
        }
    }
    if let Some(options) = schema.get("enum").and_then(JsonValue::as_arr) {
        if !options.contains(value) {
            errors.push(format!("{}: value not in enum", here()));
        }
    }
    if let Some(ty) = schema.get("type") {
        let ok = match ty {
            JsonValue::Str(t) => type_matches(t, value),
            JsonValue::Arr(ts) => ts
                .iter()
                .filter_map(JsonValue::as_str)
                .any(|t| type_matches(t, value)),
            _ => true,
        };
        if !ok {
            errors.push(format!(
                "{}: expected type {:?}, found {}",
                here(),
                ty,
                value.type_name()
            ));
            return; // structural keywords below assume the right type
        }
    }
    if let Some(min) = schema.get("minimum").and_then(JsonValue::as_f64) {
        if let Some(n) = value.as_f64() {
            if n < min {
                errors.push(format!("{}: {n} below minimum {min}", here()));
            }
        }
    }
    if let Some(obj) = value.as_obj() {
        if let Some(required) = schema.get("required").and_then(JsonValue::as_arr) {
            for key in required.iter().filter_map(JsonValue::as_str) {
                if !obj.contains_key(key) {
                    errors.push(format!("{}: missing required property \"{key}\"", here()));
                }
            }
        }
        let props = schema.get("properties").and_then(JsonValue::as_obj);
        let additional = schema.get("additionalProperties");
        for (key, member) in obj {
            let child_path = format!("{path}/{key}");
            if let Some(prop_schema) = props.and_then(|p| p.get(key)) {
                check(prop_schema, member, &child_path, errors);
            } else if let Some(add) = additional {
                match add {
                    JsonValue::Bool(false) => {
                        errors.push(format!("{child_path}: property not allowed"));
                    }
                    JsonValue::Obj(_) => check(add, member, &child_path, errors),
                    _ => {}
                }
            }
        }
    }
    if let (Some(items), Some(arr)) = (schema.get("items"), value.as_arr()) {
        for (i, item) in arr.iter().enumerate() {
            check(items, item, &format!("{path}/{i}"), errors);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn schema() -> JsonValue {
        parse(
            r#"{
                "type": "object",
                "required": ["version", "counters"],
                "properties": {
                    "version": {"type": "integer", "const": 1},
                    "counters": {
                        "type": "object",
                        "additionalProperties": {"type": "integer", "minimum": 0}
                    },
                    "tags": {"type": "array", "items": {"type": "string"}}
                }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn accepts_conforming_document() {
        let doc = parse(r#"{"version":1,"counters":{"x":3},"tags":["a"]}"#).unwrap();
        assert_eq!(validate(&schema(), &doc), Vec::<String>::new());
    }

    #[test]
    fn reports_each_violation_with_a_path() {
        let doc = parse(r#"{"version":2,"counters":{"x":-1},"tags":[5]}"#).unwrap();
        let errors = validate(&schema(), &doc);
        assert!(errors.iter().any(|e| e.contains("/version")), "{errors:?}");
        assert!(
            errors.iter().any(|e| e.contains("/counters/x")),
            "{errors:?}"
        );
        assert!(errors.iter().any(|e| e.contains("/tags/0")), "{errors:?}");
    }

    #[test]
    fn missing_required_property_is_an_error() {
        let doc = parse(r#"{"version":1}"#).unwrap();
        let errors = validate(&schema(), &doc);
        assert!(errors.iter().any(|e| e.contains("counters")), "{errors:?}");
    }

    #[test]
    fn additional_properties_false_rejects_unknown_keys() {
        let schema =
            parse(r#"{"type":"object","properties":{"a":{}},"additionalProperties":false}"#)
                .unwrap();
        let doc = parse(r#"{"a":1,"b":2}"#).unwrap();
        let errors = validate(&schema, &doc);
        assert!(errors.iter().any(|e| e.contains("/b")), "{errors:?}");
    }
}

//! Validates a metrics snapshot JSON file against a JSON-schema file.
//!
//! Usage: `validate_metrics <schema.json> <metrics.json>`
//!
//! Exits 0 when the document conforms; prints each violation and exits 1
//! otherwise. Used by CI to pin the `--metrics-out` format.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, schema_path, metrics_path] = args.as_slice() else {
        eprintln!("usage: validate_metrics <schema.json> <metrics.json>");
        return ExitCode::from(2);
    };
    let schema_text = match std::fs::read_to_string(schema_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {schema_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let metrics_text = match std::fs::read_to_string(metrics_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {metrics_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let schema = match acq_obs::json::parse(&schema_text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {schema_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let metrics = match acq_obs::json::parse(&metrics_text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {metrics_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let errors = acq_obs::schema::validate(&schema, &metrics);
    if errors.is_empty() {
        println!("{metrics_path}: valid");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("{metrics_path}: {e}");
        }
        eprintln!("{metrics_path}: {} violation(s)", errors.len());
        ExitCode::FAILURE
    }
}

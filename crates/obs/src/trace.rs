//! A bounded in-memory span/event buffer with human-readable rendering.
//!
//! Tracing is strictly opt-in (see [`crate::Obs::with_trace`]): the hot path
//! formats labels lazily, so a disabled or counters-only handle never pays
//! for string construction. The buffer is bounded; once full, new events are
//! counted as dropped rather than reallocating without limit.

use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// One recorded event or completed span.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Offset from the start of the run.
    pub at: Duration,
    /// Span duration; `None` for instantaneous events.
    pub dur: Option<Duration>,
    /// Nesting depth used for indentation when rendering.
    pub depth: u8,
    /// Human-readable description.
    pub label: String,
}

/// A bounded, thread-safe trace buffer.
#[derive(Debug)]
pub struct TraceBuf {
    events: Mutex<Vec<TraceEvent>>,
    cap: usize,
}

impl TraceBuf {
    /// Creates a buffer that retains at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Self {
            events: Mutex::new(Vec::new()),
            cap: cap.max(1),
        }
    }

    /// Appends an event; returns `false` (dropped) once the buffer is full.
    pub fn push(&self, event: TraceEvent) -> bool {
        let mut events = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        if events.len() >= self.cap {
            return false;
        }
        events.push(event);
        true
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the retained events in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Renders the buffer as indented human-readable text, one event per
    /// line: `[  12.345ms] (+2.1ms)   label`.
    pub fn render(&self, dropped: u64) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 48);
        for e in &events {
            let indent = "  ".repeat(e.depth as usize);
            match e.dur {
                Some(d) => out.push_str(&format!(
                    "[{:>10}] ({}) {}{}\n",
                    fmt_dur(e.at),
                    fmt_dur(d),
                    indent,
                    e.label
                )),
                None => out.push_str(&format!("[{:>10}] {}{}\n", fmt_dur(e.at), indent, e.label)),
            }
        }
        if dropped > 0 {
            out.push_str(&format!("... {dropped} event(s) dropped (buffer full)\n"));
        }
        out
    }

    /// Buffer capacity (events retained before drops begin).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Renders the buffer as a JSON document:
    /// `{"events":[{"at_ns":…,"dur_ns":…|null,"depth":…,"label":"…"},…],
    ///   "dropped":N,"truncated":bool}`.
    ///
    /// `truncated` is the honesty bit for `GET /trace/<id>`: when `dropped`
    /// is nonzero the span tree the caller sees is a prefix, not the run.
    pub fn render_json(&self, dropped: u64) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 64 + 64);
        out.push_str("{\"events\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"at_ns\":{},\"dur_ns\":", e.at.as_nanos()));
            match e.dur {
                Some(d) => out.push_str(&d.as_nanos().to_string()),
                None => out.push_str("null"),
            }
            out.push_str(&format!(
                ",\"depth\":{},\"label\":\"{}\"}}",
                e.depth,
                crate::snapshot::json_escape(&e.label)
            ));
        }
        out.push_str(&format!(
            "],\"dropped\":{dropped},\"truncated\":{}}}",
            dropped > 0
        ));
        out
    }

    /// Renders the buffer in the Chrome trace-event JSON format, directly
    /// loadable in `ui.perfetto.dev` or `chrome://tracing`.
    ///
    /// Spans become complete (`"ph":"X"`) events with microsecond `ts`/`dur`
    /// — `ts` is the span *start* (the buffer records completion times, so
    /// the duration is subtracted back) — and instantaneous events become
    /// thread-scoped instants (`"ph":"i"`, `"s":"t"`). The recording depth
    /// maps to `tid` (depth 0 → tid 1), which renders each nesting level as
    /// its own track. Drop accounting rides along in `otherData`.
    pub fn render_chrome(&self, dropped: u64) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 96 + 96);
        out.push_str("{\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let tid = u32::from(e.depth) + 1;
            let name = crate::snapshot::json_escape(&e.label);
            match e.dur {
                Some(d) => {
                    let ts = e.at.saturating_sub(d).as_micros();
                    out.push_str(&format!(
                        "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\
                         \"pid\":1,\"tid\":{tid}}}",
                        d.as_micros()
                    ));
                }
                None => {
                    out.push_str(&format!(
                        "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                         \"pid\":1,\"tid\":{tid}}}",
                        e.at.as_micros()
                    ));
                }
            }
        }
        out.push_str(&format!(
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped\":{dropped},\
             \"truncated\":{}}}}}",
            dropped > 0
        ));
        out
    }
}

/// Re-renders a [`TraceBuf::render_json`] document in the Chrome
/// trace-event format.
///
/// The query registry retains the *rendered* trace, not the live buffer,
/// so serving `GET /trace/<id>?format=chrome` means converting the stored
/// document. Returns `None` when `json` is not a trace render.
pub fn chrome_from_render_json(json: &str) -> Option<String> {
    let v = crate::json::parse(json).ok()?;
    let events = v.pointer("/events")?.as_arr()?;
    let dropped = v.pointer("/dropped").and_then(|d| d.as_u64()).unwrap_or(0);
    let buf = TraceBuf::new(events.len().max(1));
    for e in events {
        let at = Duration::from_nanos(e.get("at_ns")?.as_u64()?);
        let dur = match e.get("dur_ns") {
            None | Some(crate::json::JsonValue::Null) => None,
            Some(d) => Some(Duration::from_nanos(d.as_u64()?)),
        };
        buf.push(TraceEvent {
            at,
            dur,
            depth: e.get("depth")?.as_u64()?.min(u64::from(u8::MAX)) as u8,
            label: e.get("label")?.as_str()?.to_string(),
        });
    }
    Some(buf.render_chrome(dropped))
}

/// Formats a duration with a unit scaled to its magnitude.
fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ms: u64, label: &str) -> TraceEvent {
        TraceEvent {
            at: Duration::from_millis(ms),
            dur: None,
            depth: 0,
            label: label.to_string(),
        }
    }

    #[test]
    fn buffer_bounds_and_renders() {
        let buf = TraceBuf::new(2);
        assert!(buf.push(ev(1, "a")));
        assert!(buf.push(TraceEvent {
            dur: Some(Duration::from_micros(1500)),
            depth: 1,
            ..ev(2, "b")
        }));
        assert!(!buf.push(ev(3, "c")), "third event dropped");
        assert_eq!(buf.len(), 2);
        let text = buf.render(1);
        assert!(text.contains("a\n"), "{text}");
        assert!(text.contains("(1.5ms)   b"), "{text}");
        assert!(text.contains("1 event(s) dropped"), "{text}");
    }

    #[test]
    fn json_rendering_reports_truncation_honestly() {
        let buf = TraceBuf::new(2);
        assert!(buf.push(ev(1, "quote \" and \\ backslash")));
        assert!(buf.push(TraceEvent {
            dur: Some(Duration::from_nanos(42)),
            ..ev(2, "b")
        }));
        assert!(!buf.push(ev(3, "dropped")));
        let json = buf.render_json(1);
        let v = crate::json::parse(&json).expect("trace JSON parses");
        assert_eq!(v.pointer("/dropped").and_then(|v| v.as_u64()), Some(1));
        assert!(matches!(
            v.pointer("/truncated"),
            Some(crate::json::JsonValue::Bool(true))
        ));
        assert_eq!(
            v.pointer("/events/0/label").and_then(|v| v.as_str()),
            Some("quote \" and \\ backslash")
        );
        assert_eq!(
            v.pointer("/events/1/dur_ns").and_then(|v| v.as_u64()),
            Some(42)
        );

        // A buffer with headroom reports truncated=false.
        let ok = TraceBuf::new(8);
        ok.push(ev(1, "a"));
        let v = crate::json::parse(&ok.render_json(0)).unwrap();
        assert!(matches!(
            v.pointer("/truncated"),
            Some(crate::json::JsonValue::Bool(false))
        ));
    }

    #[test]
    fn chrome_export_maps_spans_and_instants() {
        let buf = TraceBuf::new(8);
        assert!(buf.push(ev(5, "instant")));
        assert!(buf.push(TraceEvent {
            dur: Some(Duration::from_millis(3)),
            depth: 1,
            ..ev(10, "span") // recorded at completion: started at 7ms
        }));
        let json = buf.render_chrome(2);
        let v = crate::json::parse(&json).expect("chrome JSON parses");
        assert_eq!(
            v.pointer("/traceEvents/0/ph").and_then(|v| v.as_str()),
            Some("i")
        );
        assert_eq!(
            v.pointer("/traceEvents/0/s").and_then(|v| v.as_str()),
            Some("t")
        );
        assert_eq!(
            v.pointer("/traceEvents/0/ts").and_then(|v| v.as_u64()),
            Some(5_000)
        );
        assert_eq!(
            v.pointer("/traceEvents/1/ph").and_then(|v| v.as_str()),
            Some("X")
        );
        // ts is the span start: completion at 10ms minus 3ms duration.
        assert_eq!(
            v.pointer("/traceEvents/1/ts").and_then(|v| v.as_u64()),
            Some(7_000)
        );
        assert_eq!(
            v.pointer("/traceEvents/1/dur").and_then(|v| v.as_u64()),
            Some(3_000)
        );
        assert_eq!(
            v.pointer("/traceEvents/1/tid").and_then(|v| v.as_u64()),
            Some(2),
            "depth 1 renders on tid 2"
        );
        assert_eq!(
            v.pointer("/otherData/dropped").and_then(|v| v.as_u64()),
            Some(2)
        );
        assert!(matches!(
            v.pointer("/otherData/truncated"),
            Some(crate::json::JsonValue::Bool(true))
        ));
    }

    #[test]
    fn chrome_round_trips_through_the_rendered_json() {
        let buf = TraceBuf::new(4);
        buf.push(ev(5, "instant"));
        buf.push(TraceEvent {
            dur: Some(Duration::from_millis(3)),
            depth: 1,
            ..ev(10, "span")
        });
        let direct = buf.render_chrome(1);
        let via_json = chrome_from_render_json(&buf.render_json(1)).expect("converts");
        assert_eq!(via_json, direct, "stored-render conversion is lossless");
        assert_eq!(chrome_from_render_json("not json"), None);
        assert_eq!(chrome_from_render_json("{\"events\":7}"), None);
    }

    #[test]
    fn duration_formatting_scales_units() {
        assert_eq!(fmt_dur(Duration::from_nanos(512)), "512ns");
        assert_eq!(fmt_dur(Duration::from_micros(12)), "12.0us");
        assert_eq!(fmt_dur(Duration::from_millis(3)), "3.0ms");
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.00s");
    }
}

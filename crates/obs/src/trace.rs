//! A bounded in-memory span/event buffer with human-readable rendering.
//!
//! Tracing is strictly opt-in (see [`crate::Obs::with_trace`]): the hot path
//! formats labels lazily, so a disabled or counters-only handle never pays
//! for string construction. The buffer is bounded; once full, new events are
//! counted as dropped rather than reallocating without limit.

use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// One recorded event or completed span.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Offset from the start of the run.
    pub at: Duration,
    /// Span duration; `None` for instantaneous events.
    pub dur: Option<Duration>,
    /// Nesting depth used for indentation when rendering.
    pub depth: u8,
    /// Human-readable description.
    pub label: String,
}

/// A bounded, thread-safe trace buffer.
#[derive(Debug)]
pub struct TraceBuf {
    events: Mutex<Vec<TraceEvent>>,
    cap: usize,
}

impl TraceBuf {
    /// Creates a buffer that retains at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Self {
            events: Mutex::new(Vec::new()),
            cap: cap.max(1),
        }
    }

    /// Appends an event; returns `false` (dropped) once the buffer is full.
    pub fn push(&self, event: TraceEvent) -> bool {
        let mut events = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        if events.len() >= self.cap {
            return false;
        }
        events.push(event);
        true
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the retained events in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Renders the buffer as indented human-readable text, one event per
    /// line: `[  12.345ms] (+2.1ms)   label`.
    pub fn render(&self, dropped: u64) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 48);
        for e in &events {
            let indent = "  ".repeat(e.depth as usize);
            match e.dur {
                Some(d) => out.push_str(&format!(
                    "[{:>10}] ({}) {}{}\n",
                    fmt_dur(e.at),
                    fmt_dur(d),
                    indent,
                    e.label
                )),
                None => out.push_str(&format!("[{:>10}] {}{}\n", fmt_dur(e.at), indent, e.label)),
            }
        }
        if dropped > 0 {
            out.push_str(&format!("... {dropped} event(s) dropped (buffer full)\n"));
        }
        out
    }
}

/// Formats a duration with a unit scaled to its magnitude.
fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ms: u64, label: &str) -> TraceEvent {
        TraceEvent {
            at: Duration::from_millis(ms),
            dur: None,
            depth: 0,
            label: label.to_string(),
        }
    }

    #[test]
    fn buffer_bounds_and_renders() {
        let buf = TraceBuf::new(2);
        assert!(buf.push(ev(1, "a")));
        assert!(buf.push(TraceEvent {
            dur: Some(Duration::from_micros(1500)),
            depth: 1,
            ..ev(2, "b")
        }));
        assert!(!buf.push(ev(3, "c")), "third event dropped");
        assert_eq!(buf.len(), 2);
        let text = buf.render(1);
        assert!(text.contains("a\n"), "{text}");
        assert!(text.contains("(1.5ms)   b"), "{text}");
        assert!(text.contains("1 event(s) dropped"), "{text}");
    }

    #[test]
    fn duration_formatting_scales_units() {
        assert_eq!(fmt_dur(Duration::from_nanos(512)), "512ns");
        assert_eq!(fmt_dur(Duration::from_micros(12)), "12.0us");
        assert_eq!(fmt_dur(Duration::from_millis(3)), "3.0ms");
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.00s");
    }
}

//! A bounded in-memory span/event buffer with human-readable rendering.
//!
//! Tracing is strictly opt-in (see [`crate::Obs::with_trace`]): the hot path
//! formats labels lazily, so a disabled or counters-only handle never pays
//! for string construction. The buffer is bounded; once full, new events are
//! counted as dropped rather than reallocating without limit.

use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// One recorded event or completed span.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Offset from the start of the run.
    pub at: Duration,
    /// Span duration; `None` for instantaneous events.
    pub dur: Option<Duration>,
    /// Nesting depth used for indentation when rendering.
    pub depth: u8,
    /// Human-readable description.
    pub label: String,
}

/// A bounded, thread-safe trace buffer.
#[derive(Debug)]
pub struct TraceBuf {
    events: Mutex<Vec<TraceEvent>>,
    cap: usize,
}

impl TraceBuf {
    /// Creates a buffer that retains at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Self {
            events: Mutex::new(Vec::new()),
            cap: cap.max(1),
        }
    }

    /// Appends an event; returns `false` (dropped) once the buffer is full.
    pub fn push(&self, event: TraceEvent) -> bool {
        let mut events = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        if events.len() >= self.cap {
            return false;
        }
        events.push(event);
        true
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the retained events in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Renders the buffer as indented human-readable text, one event per
    /// line: `[  12.345ms] (+2.1ms)   label`.
    pub fn render(&self, dropped: u64) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 48);
        for e in &events {
            let indent = "  ".repeat(e.depth as usize);
            match e.dur {
                Some(d) => out.push_str(&format!(
                    "[{:>10}] ({}) {}{}\n",
                    fmt_dur(e.at),
                    fmt_dur(d),
                    indent,
                    e.label
                )),
                None => out.push_str(&format!("[{:>10}] {}{}\n", fmt_dur(e.at), indent, e.label)),
            }
        }
        if dropped > 0 {
            out.push_str(&format!("... {dropped} event(s) dropped (buffer full)\n"));
        }
        out
    }

    /// Buffer capacity (events retained before drops begin).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Renders the buffer as a JSON document:
    /// `{"events":[{"at_ns":…,"dur_ns":…|null,"depth":…,"label":"…"},…],
    ///   "dropped":N,"truncated":bool}`.
    ///
    /// `truncated` is the honesty bit for `GET /trace/<id>`: when `dropped`
    /// is nonzero the span tree the caller sees is a prefix, not the run.
    pub fn render_json(&self, dropped: u64) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 64 + 64);
        out.push_str("{\"events\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"at_ns\":{},\"dur_ns\":", e.at.as_nanos()));
            match e.dur {
                Some(d) => out.push_str(&d.as_nanos().to_string()),
                None => out.push_str("null"),
            }
            out.push_str(&format!(
                ",\"depth\":{},\"label\":\"{}\"}}",
                e.depth,
                crate::snapshot::json_escape(&e.label)
            ));
        }
        out.push_str(&format!(
            "],\"dropped\":{dropped},\"truncated\":{}}}",
            dropped > 0
        ));
        out
    }
}

/// Formats a duration with a unit scaled to its magnitude.
fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ms: u64, label: &str) -> TraceEvent {
        TraceEvent {
            at: Duration::from_millis(ms),
            dur: None,
            depth: 0,
            label: label.to_string(),
        }
    }

    #[test]
    fn buffer_bounds_and_renders() {
        let buf = TraceBuf::new(2);
        assert!(buf.push(ev(1, "a")));
        assert!(buf.push(TraceEvent {
            dur: Some(Duration::from_micros(1500)),
            depth: 1,
            ..ev(2, "b")
        }));
        assert!(!buf.push(ev(3, "c")), "third event dropped");
        assert_eq!(buf.len(), 2);
        let text = buf.render(1);
        assert!(text.contains("a\n"), "{text}");
        assert!(text.contains("(1.5ms)   b"), "{text}");
        assert!(text.contains("1 event(s) dropped"), "{text}");
    }

    #[test]
    fn json_rendering_reports_truncation_honestly() {
        let buf = TraceBuf::new(2);
        assert!(buf.push(ev(1, "quote \" and \\ backslash")));
        assert!(buf.push(TraceEvent {
            dur: Some(Duration::from_nanos(42)),
            ..ev(2, "b")
        }));
        assert!(!buf.push(ev(3, "dropped")));
        let json = buf.render_json(1);
        let v = crate::json::parse(&json).expect("trace JSON parses");
        assert_eq!(v.pointer("/dropped").and_then(|v| v.as_u64()), Some(1));
        assert!(matches!(
            v.pointer("/truncated"),
            Some(crate::json::JsonValue::Bool(true))
        ));
        assert_eq!(
            v.pointer("/events/0/label").and_then(|v| v.as_str()),
            Some("quote \" and \\ backslash")
        );
        assert_eq!(
            v.pointer("/events/1/dur_ns").and_then(|v| v.as_u64()),
            Some(42)
        );

        // A buffer with headroom reports truncated=false.
        let ok = TraceBuf::new(8);
        ok.push(ev(1, "a"));
        let v = crate::json::parse(&ok.render_json(0)).unwrap();
        assert!(matches!(
            v.pointer("/truncated"),
            Some(crate::json::JsonValue::Bool(false))
        ));
    }

    #[test]
    fn duration_formatting_scales_units() {
        assert_eq!(fmt_dur(Duration::from_nanos(512)), "512ns");
        assert_eq!(fmt_dur(Duration::from_micros(12)), "12.0us");
        assert_eq!(fmt_dur(Duration::from_millis(3)), "3.0ms");
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.00s");
    }
}

//! Metrics flight recorder: a bounded time-series of the process registry.
//!
//! `/metrics` is a point-in-time scrape; the [`FlightRecorder`] adds the
//! temporal axis. A background sampler thread captures the absorbed
//! [`Metrics`] registry at a fixed cadence into a bounded ring. Counters
//! are **delta-encoded** (each sample stores the increment since the
//! previous sample, so a flat-lining counter costs a row of zeros and rates
//! fall straight out); gauges are stored as-is, `null` until first set.
//! When the ring is full the oldest sample is evicted and counted — the
//! rendering is honest about history it no longer has.
//!
//! The recorder renders to JSON for `GET /timeseries` and answers
//! per-counter rate queries over a trailing window ([`FlightRecorder::rate`]).
//! Sampling never touches any commit path: the sampler reads the same
//! relaxed atomics a `/metrics` scrape reads.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::metrics::Metrics;

/// Schema version of the `/timeseries` JSON rendering.
pub const TIMESERIES_VERSION: u32 = 1;

/// Default sampling cadence.
pub const DEFAULT_RECORDER_CADENCE: Duration = Duration::from_millis(1000);

/// Default ring capacity: ten minutes of history at the default cadence.
pub const DEFAULT_RECORDER_CAPACITY: usize = 600;

/// Gauge columns captured per sample, in stable order. Unset gauges render
/// as `null` (matching their omission from [`MetricsSnapshot`]).
///
/// [`MetricsSnapshot`]: crate::snapshot::MetricsSnapshot
pub const RECORDER_GAUGES: &[&str] = &[
    "current_layer",
    "frontier_batch",
    "store_len",
    "store_peak",
    "store_bytes",
    "budget_headroom",
];

/// A named external counter column sampled alongside the [`Metrics`]
/// registry. Serve-level counters (shed, 429s, journal drops) live in other
/// crates; closure sources keep the dependency arrow pointing this way
/// while still giving those counters delta-encoded history and
/// [`FlightRecorder::rate`] windows — which is what the SLO alert engine
/// evaluates its burn-rate rules over.
pub type CounterSource = (String, Arc<dyn Fn() -> u64 + Send + Sync>);

fn gauge_reads(m: &Metrics) -> Vec<Option<u64>> {
    vec![
        m.current_layer.get(),
        m.frontier_batch.get(),
        m.store_len.get(),
        m.store_peak.get(),
        m.store_bytes.get(),
        m.budget_headroom.get(),
    ]
}

/// One captured sample: counter increments since the previous sample plus
/// instantaneous gauge values.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Milliseconds since the recorder started.
    pub at_ms: u64,
    /// Per-counter increments since the previous sample, aligned with the
    /// recorder's counter-name header.
    pub deltas: Vec<u64>,
    /// Gauge values at capture time, aligned with [`RECORDER_GAUGES`];
    /// `None` until a gauge is first set.
    pub gauges: Vec<Option<u64>>,
}

struct Ring {
    samples: VecDeque<Sample>,
    /// Absolute counter values at the last sample (delta-encoding state).
    last_counters: Vec<u64>,
    /// Samples evicted because the ring was full.
    evicted: u64,
}

struct RecorderInner {
    metrics: Arc<Metrics>,
    cadence: Duration,
    capacity: usize,
    start: Instant,
    counter_names: Vec<String>,
    extra: Vec<CounterSource>,
    ring: Mutex<Ring>,
    stop: AtomicBool,
}

impl RecorderInner {
    fn sample(&self) {
        let at_ms = self.start.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
        let mut counters: Vec<u64> = self
            .metrics
            .counter_values()
            .iter()
            .map(|&(_, v)| v)
            .collect();
        counters.extend(self.extra.iter().map(|(_, read)| read()));
        let gauges = gauge_reads(&self.metrics);
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        let deltas = counters
            .iter()
            .zip(&ring.last_counters)
            .map(|(&now, &prev)| now.saturating_sub(prev))
            .collect();
        ring.last_counters = counters;
        if ring.samples.len() >= self.capacity {
            ring.samples.pop_front();
            ring.evicted += 1;
        }
        ring.samples.push_back(Sample {
            at_ms,
            deltas,
            gauges,
        });
    }
}

/// The metrics flight recorder; see the module docs.
///
/// Construct with [`FlightRecorder::start`] (spawns the sampler thread) or
/// [`FlightRecorder::paused`] (no thread — tests and the bench harness tick
/// it manually with [`sample_now`]). Dropping the recorder stops and joins
/// the sampler.
///
/// [`sample_now`]: FlightRecorder::sample_now
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
    sampler: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("cadence", &self.inner.cadence)
            .field("capacity", &self.inner.capacity)
            .field("len", &self.len())
            .field("evicted", &self.evicted())
            .field("sampling", &self.sampler.is_some())
            .finish()
    }
}

impl FlightRecorder {
    fn build(
        metrics: Arc<Metrics>,
        cadence: Duration,
        capacity: usize,
        extra: Vec<CounterSource>,
    ) -> Arc<RecorderInner> {
        let mut counter_names: Vec<String> = metrics
            .counter_values()
            .iter()
            .map(|&(k, _)| k.to_string())
            .collect();
        counter_names.extend(extra.iter().map(|(name, _)| name.clone()));
        let n = counter_names.len();
        Arc::new(RecorderInner {
            metrics,
            cadence: cadence.max(Duration::from_millis(1)),
            capacity: capacity.max(1),
            start: Instant::now(),
            counter_names,
            extra,
            ring: Mutex::new(Ring {
                samples: VecDeque::new(),
                last_counters: vec![0; n],
                evicted: 0,
            }),
            stop: AtomicBool::new(false),
        })
    }

    /// A recorder without a sampler thread; callers drive it with
    /// [`FlightRecorder::sample_now`].
    pub fn paused(metrics: Arc<Metrics>, cadence: Duration, capacity: usize) -> Self {
        Self::paused_with_sources(metrics, cadence, capacity, Vec::new())
    }

    /// [`FlightRecorder::paused`] plus extra [`CounterSource`] columns
    /// appended after the registry counters.
    pub fn paused_with_sources(
        metrics: Arc<Metrics>,
        cadence: Duration,
        capacity: usize,
        extra: Vec<CounterSource>,
    ) -> Self {
        Self {
            inner: Self::build(metrics, cadence, capacity, extra),
            sampler: None,
        }
    }

    /// Starts the recorder with a background sampler thread capturing one
    /// sample every `cadence` (clamped to ≥ 1 ms; `capacity` to ≥ 1).
    pub fn start(metrics: Arc<Metrics>, cadence: Duration, capacity: usize) -> Self {
        Self::start_with_sources(metrics, cadence, capacity, Vec::new())
    }

    /// [`FlightRecorder::start`] plus extra [`CounterSource`] columns
    /// appended after the registry counters.
    pub fn start_with_sources(
        metrics: Arc<Metrics>,
        cadence: Duration,
        capacity: usize,
        extra: Vec<CounterSource>,
    ) -> Self {
        let inner = Self::build(metrics, cadence, capacity, extra);
        let worker = Arc::clone(&inner);
        let sampler = std::thread::Builder::new()
            .name("acq-flight-recorder".to_string())
            .spawn(move || {
                // Poll the stop flag in short slices so drop/join stays
                // prompt even at multi-second cadences.
                let slice = worker.cadence.min(Duration::from_millis(50));
                let mut next = worker.cadence;
                while !worker.stop.load(Ordering::Acquire) {
                    let now = worker.start.elapsed();
                    if now >= next {
                        worker.sample();
                        // Skip missed ticks rather than bursting to catch up.
                        while next <= now {
                            next += worker.cadence;
                        }
                    }
                    std::thread::sleep(slice.min(next.saturating_sub(worker.start.elapsed())));
                }
            })
            .expect("spawn flight-recorder sampler"); // lint-allow(panic-hygiene): thread spawn fails only on resource exhaustion at startup
        Self {
            inner,
            sampler: Some(sampler),
        }
    }

    /// Sampling cadence in milliseconds.
    pub fn cadence_ms(&self) -> u64 {
        self.inner.cadence.as_millis().min(u128::from(u64::MAX)) as u64
    }

    /// Maximum retained samples.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Retained samples right now.
    pub fn len(&self) -> usize {
        self.inner
            .ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .samples
            .len()
    }

    /// Whether no sample has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Samples evicted because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.inner
            .ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .evicted
    }

    /// Captures one sample immediately (tests, bench harness, and the final
    /// flush before rendering a report).
    pub fn sample_now(&self) {
        self.inner.sample();
    }

    /// Mean per-second rate of `counter` over the trailing `window`.
    ///
    /// Sums the delta-encoded increments of every retained sample whose
    /// timestamp falls inside the window and divides by the window span
    /// actually covered (clamped to one cadence minimum, so a single-sample
    /// ring still yields a finite rate). `None` for unknown counters or an
    /// empty ring.
    pub fn rate(&self, counter: &str, window: Duration) -> Option<f64> {
        let col = self
            .inner
            .counter_names
            .iter()
            .position(|name| name == counter)?;
        let ring = self
            .inner
            .ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let last_at = ring.samples.back()?.at_ms;
        let window_ms = window.as_millis().min(u128::from(u64::MAX)) as u64;
        let cutoff = last_at.saturating_sub(window_ms);
        let mut sum = 0u64;
        let mut earliest = last_at;
        for s in ring.samples.iter().rev() {
            if s.at_ms <= cutoff && s.at_ms != last_at {
                break;
            }
            sum += s.deltas.get(col).copied().unwrap_or(0);
            earliest = s.at_ms;
        }
        // Each sample's deltas cover the cadence interval *ending* at its
        // timestamp, so the covered span reaches one cadence before the
        // earliest included sample.
        let cadence_ms = self.cadence_ms().max(1);
        let span_ms = (last_at - earliest + cadence_ms).min(window_ms.max(cadence_ms));
        Some(sum as f64 / (span_ms as f64 / 1000.0))
    }

    /// Renders the ring as the `/timeseries` JSON document. `rate_window`
    /// sets the trailing window for the included per-counter rates.
    pub fn to_json(&self, rate_window: Duration) -> String {
        let names = &self.inner.counter_names;
        let rates: Vec<Option<f64>> = names
            .iter()
            .map(|name| self.rate(name, rate_window))
            .collect();
        let ring = self
            .inner
            .ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut out = String::with_capacity(1024 + ring.samples.len() * 128);
        out.push_str(&format!(
            "{{\"version\":{TIMESERIES_VERSION},\"cadence_ms\":{},\"capacity\":{},\"evicted\":{},",
            self.cadence_ms(),
            self.inner.capacity,
            ring.evicted
        ));
        out.push_str("\"counters\":[");
        for (i, name) in names.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\""));
        }
        out.push_str("],\"gauges\":[");
        for (i, name) in RECORDER_GAUGES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\""));
        }
        out.push_str(&format!(
            "],\"rate_window_ms\":{},\"rates\":[",
            rate_window.as_millis().min(u128::from(u64::MAX))
        ));
        for (i, r) in rates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match r {
                Some(r) => out.push_str(&crate::snapshot::fmt_f64(*r)),
                None => out.push_str("null"),
            }
        }
        out.push_str("],\"samples\":[");
        for (i, s) in ring.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"at_ms\":{},\"deltas\":[", s.at_ms));
            for (j, d) in s.deltas.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&d.to_string());
            }
            out.push_str("],\"gauges\":[");
            for (j, g) in s.gauges.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                match g {
                    Some(v) => out.push_str(&v.to_string()),
                    None => out.push_str("null"),
                }
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(handle) = self.sampler.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn recorder(capacity: usize) -> (Arc<Metrics>, FlightRecorder) {
        let metrics = Arc::new(Metrics::new());
        let rec =
            FlightRecorder::paused(Arc::clone(&metrics), Duration::from_millis(1000), capacity);
        (metrics, rec)
    }

    #[test]
    fn samples_delta_encode_counters() {
        let (metrics, rec) = recorder(8);
        metrics.cells_executed.add(10);
        rec.sample_now();
        metrics.cells_executed.add(5);
        rec.sample_now();
        rec.sample_now();
        let json = rec.to_json(Duration::from_secs(30));
        let doc = json::parse(&json).expect("valid json");
        let samples = doc.pointer("/samples").unwrap().as_arr().unwrap();
        assert_eq!(samples.len(), 3);
        // cells_executed is the first counter column.
        let col0 = |i: usize| {
            samples[i]
                .pointer("/deltas/0")
                .and_then(|v| v.as_f64())
                .unwrap()
        };
        assert_eq!(col0(0), 10.0);
        assert_eq!(col0(1), 5.0);
        assert_eq!(col0(2), 0.0);
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let (metrics, rec) = recorder(2);
        for i in 0..5 {
            metrics.answers_found.add(i + 1);
            rec.sample_now();
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.evicted(), 3);
        let doc = json::parse(&rec.to_json(Duration::from_secs(30))).unwrap();
        assert_eq!(doc.pointer("/evicted").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(doc.pointer("/samples").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn gauges_render_null_until_set() {
        let (metrics, rec) = recorder(4);
        rec.sample_now();
        metrics.current_layer.set(3);
        rec.sample_now();
        let doc = json::parse(&rec.to_json(Duration::from_secs(30))).unwrap();
        assert_eq!(
            doc.pointer("/samples/0/gauges/0"),
            Some(&json::JsonValue::Null)
        );
        assert_eq!(
            doc.pointer("/samples/1/gauges/0").and_then(|v| v.as_f64()),
            Some(3.0)
        );
    }

    #[test]
    fn rate_over_window() {
        let (metrics, rec) = recorder(16);
        // Cadence 1000 ms; each manual tick lands at ~0 elapsed, so the
        // covered span clamps to one cadence. 30 increments over 3 samples.
        for _ in 0..3 {
            metrics.cells_executed.add(10);
            rec.sample_now();
        }
        let r = rec.rate("cells_executed", Duration::from_secs(30)).unwrap();
        assert!(r > 0.0, "rate must be positive, got {r}");
        assert!(rec
            .rate("no_such_counter", Duration::from_secs(30))
            .is_none());
        // Empty ring: no rate.
        let (_m2, empty) = recorder(4);
        assert!(empty
            .rate("cells_executed", Duration::from_secs(30))
            .is_none());
    }

    #[test]
    fn json_header_lists_counters_and_gauges() {
        let (_metrics, rec) = recorder(4);
        rec.sample_now();
        let doc = json::parse(&rec.to_json(Duration::from_secs(5))).unwrap();
        assert_eq!(
            doc.pointer("/version").and_then(|v| v.as_f64()),
            Some(f64::from(TIMESERIES_VERSION))
        );
        let counters = doc.pointer("/counters").unwrap().as_arr().unwrap();
        assert_eq!(
            counters[0].as_str(),
            Some("cells_executed"),
            "column order must match Metrics::counter_values"
        );
        let gauges = doc.pointer("/gauges").unwrap().as_arr().unwrap();
        assert_eq!(gauges.len(), RECORDER_GAUGES.len());
        assert_eq!(
            doc.pointer("/rate_window_ms").and_then(|v| v.as_f64()),
            Some(5000.0)
        );
    }

    #[test]
    fn wraparound_at_exact_capacity_boundary() {
        // Satellite coverage: filling the ring to *exactly* capacity must
        // not evict; the very next sample evicts exactly one, and the
        // surviving window is the newest `capacity` samples in order.
        let (metrics, rec) = recorder(3);
        for i in 0..3u64 {
            metrics.cells_executed.add(i + 1); // deltas 1, 2, 3
            rec.sample_now();
        }
        assert_eq!(rec.len(), 3, "exactly full, nothing evicted yet");
        assert_eq!(rec.evicted(), 0);
        metrics.cells_executed.add(4);
        rec.sample_now();
        assert_eq!(rec.len(), 3, "capacity holds");
        assert_eq!(rec.evicted(), 1, "exactly the oldest sample evicted");
        let doc = json::parse(&rec.to_json(Duration::from_secs(30))).unwrap();
        let samples = doc.pointer("/samples").unwrap().as_arr().unwrap();
        let col0: Vec<f64> = samples
            .iter()
            .map(|s| s.pointer("/deltas/0").and_then(|v| v.as_f64()).unwrap())
            .collect();
        assert_eq!(col0, vec![2.0, 3.0, 4.0], "oldest delta gone, order kept");
        // Delta continuity across the eviction: the next sample still
        // encodes against the last absolute value, not the evicted one.
        metrics.cells_executed.add(7);
        rec.sample_now();
        let doc = json::parse(&rec.to_json(Duration::from_secs(30))).unwrap();
        assert_eq!(
            doc.pointer("/samples/2/deltas/0").and_then(|v| v.as_f64()),
            Some(7.0)
        );
    }

    #[test]
    fn extra_sources_append_columns_and_rates() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let metrics = Arc::new(Metrics::new());
        let shed = Arc::new(AtomicU64::new(0));
        let reader = Arc::clone(&shed);
        let rec = FlightRecorder::paused_with_sources(
            Arc::clone(&metrics),
            Duration::from_millis(1000),
            8,
            vec![(
                "serve_shed".to_string(),
                Arc::new(move || reader.load(Ordering::Relaxed)),
            )],
        );
        shed.store(4, Ordering::Relaxed);
        rec.sample_now();
        shed.store(9, Ordering::Relaxed);
        rec.sample_now();
        let doc = json::parse(&rec.to_json(Duration::from_secs(30))).unwrap();
        let counters = doc.pointer("/counters").unwrap().as_arr().unwrap();
        assert_eq!(
            counters.last().and_then(|v| v.as_str()),
            Some("serve_shed"),
            "external column appended after the registry counters"
        );
        let last = counters.len() - 1;
        let delta = |i: usize| {
            doc.pointer(&format!("/samples/{i}/deltas/{last}"))
                .and_then(|v| v.as_f64())
                .unwrap()
        };
        assert_eq!(delta(0), 4.0);
        assert_eq!(delta(1), 5.0);
        assert!(rec.rate("serve_shed", Duration::from_secs(30)).unwrap() > 0.0);
    }

    #[test]
    fn background_sampler_captures_and_stops() {
        let metrics = Arc::new(Metrics::new());
        let rec = FlightRecorder::start(Arc::clone(&metrics), Duration::from_millis(10), 64);
        metrics.cells_executed.add(42);
        let deadline = Instant::now() + Duration::from_secs(5);
        while rec.is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!rec.is_empty(), "sampler never captured a sample");
        drop(rec); // joins the sampler thread
    }
}

//! Point-in-time metric snapshots and their two text sinks: a compact JSON
//! document (`--metrics-out`, validated in CI against
//! `schemas/metrics.schema.json`) and a Prometheus text exposition.

use crate::metrics::Metrics;

/// Snapshot format version emitted in the JSON document. Bump when the
/// structure changes and update `schemas/metrics.schema.json` to match.
pub const SNAPSHOT_VERSION: u64 = 1;

/// One histogram captured at snapshot time.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Instrument name.
    pub name: &'static str,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// `(upper_bound, count)` per bucket; `None` is the overflow (`+Inf`)
    /// bucket. Counts are per-bucket, not cumulative.
    pub buckets: Vec<(Option<u64>, u64)>,
}

/// A consistent-enough point-in-time capture of every instrument.
///
/// Individual atomics are read without a global lock, so a snapshot taken
/// *during* a run may be torn across instruments; snapshots taken after the
/// driver returns (the supported use) are exact.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Milliseconds since the handle was created.
    pub uptime_ms: u64,
    /// Counter values in stable order.
    pub counters: Vec<(&'static str, u64)>,
    /// Set gauges in stable order.
    pub gauges: Vec<(&'static str, u64)>,
    /// Histogram captures.
    pub histograms: Vec<HistogramSnapshot>,
    /// `(worker, cells, steals)` for each worker that executed a cell.
    pub workers: Vec<(usize, u64, u64)>,
    /// Engine executor statistics bridged in via
    /// [`crate::Obs::record_exec_stats`].
    pub exec_stats: Vec<(String, u64)>,
    /// Free-form run metadata (evaluation layer kind, thread count, ...).
    pub meta: Vec<(String, String)>,
}

impl MetricsSnapshot {
    /// Captures every instrument of `metrics`.
    pub fn capture(
        metrics: &Metrics,
        uptime_ms: u64,
        exec_stats: Vec<(String, u64)>,
        meta: Vec<(String, String)>,
    ) -> Self {
        let histograms = [
            ("cell_latency_ns", &metrics.cell_latency_ns),
            ("batch_cells", &metrics.batch_cells),
        ]
        .into_iter()
        .map(|(name, h)| {
            let counts = h.bucket_counts();
            let buckets = h
                .bounds()
                .iter()
                .map(|&b| Some(b))
                .chain(std::iter::once(None))
                .zip(counts)
                .collect();
            HistogramSnapshot {
                name,
                count: h.count(),
                sum: h.sum(),
                buckets,
            }
        })
        .collect();
        Self {
            uptime_ms,
            counters: metrics.counter_values(),
            gauges: metrics.gauge_values(),
            histograms,
            workers: metrics.worker_tallies(),
            exec_stats,
            meta,
        }
    }

    /// Convenience lookup of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }

    /// Convenience lookup of a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }

    /// Convenience lookup of a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders the snapshot as a compact single-line JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push('{');
        push_kv_num(&mut s, "version", SNAPSHOT_VERSION);
        s.push(',');
        push_kv_num(&mut s, "uptime_ms", self.uptime_ms);
        s.push_str(",\"counters\":{");
        push_pairs(&mut s, self.counters.iter().map(|&(k, v)| (k, v)));
        s.push_str("},\"gauges\":{");
        push_pairs(&mut s, self.gauges.iter().map(|&(k, v)| (k, v)));
        s.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
                h.name, h.count, h.sum
            ));
            for (j, (bound, count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                match bound {
                    Some(b) => s.push_str(&format!("{{\"le\":{b},\"count\":{count}}}")),
                    None => s.push_str(&format!("{{\"le\":null,\"count\":{count}}}")),
                }
            }
            s.push_str("]}");
        }
        s.push_str("},\"workers\":[");
        for (i, &(w, cells, steals)) in self.workers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"worker\":{w},\"cells\":{cells},\"steals\":{steals}}}"
            ));
        }
        s.push_str("],\"exec_stats\":{");
        push_pairs(
            &mut s,
            self.exec_stats.iter().map(|(k, v)| (k.as_str(), *v)),
        );
        s.push_str("},\"meta\":{");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
        }
        s.push_str("}}");
        s
    }

    /// Renders the snapshot in the Prometheus text exposition format, with
    /// every series prefixed `acq_`.
    pub fn to_prometheus(&self) -> String {
        let mut s = String::with_capacity(2048);
        for &(name, v) in &self.counters {
            s.push_str(&format!(
                "# TYPE acq_{name}_total counter\nacq_{name}_total {v}\n"
            ));
        }
        for &(name, v) in &self.gauges {
            s.push_str(&format!("# TYPE acq_{name} gauge\nacq_{name} {v}\n"));
        }
        for h in &self.histograms {
            s.push_str(&format!("# TYPE acq_{} histogram\n", h.name));
            let mut cumulative = 0u64;
            for (bound, count) in &h.buckets {
                cumulative += count;
                let le = match bound {
                    Some(b) => b.to_string(),
                    None => "+Inf".to_string(),
                };
                s.push_str(&format!(
                    "acq_{}_bucket{{le=\"{le}\"}} {cumulative}\n",
                    h.name
                ));
            }
            s.push_str(&format!("acq_{}_sum {}\n", h.name, h.sum));
            s.push_str(&format!("acq_{}_count {}\n", h.name, h.count));
        }
        for &(w, cells, steals) in &self.workers {
            s.push_str(&format!(
                "acq_worker_cells_total{{worker=\"{w}\"}} {cells}\n"
            ));
            s.push_str(&format!(
                "acq_worker_steals_total{{worker=\"{w}\"}} {steals}\n"
            ));
        }
        for (name, v) in &self.exec_stats {
            s.push_str(&format!(
                "# TYPE acq_exec_{name}_total counter\nacq_exec_{name}_total {v}\n"
            ));
        }
        s
    }
}

fn push_kv_num(s: &mut String, k: &str, v: u64) {
    s.push_str(&format!("\"{k}\":{v}"));
}

fn push_pairs<'a>(s: &mut String, pairs: impl Iterator<Item = (&'a str, u64)>) {
    for (i, (k, v)) in pairs.enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{k}\":{v}"));
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let m = Metrics::new();
        m.cells_executed.add(42);
        m.current_layer.set(3);
        m.cell_latency_ns.observe(500);
        m.record_worker_cell(1, true);
        MetricsSnapshot::capture(
            &m,
            12,
            vec![("cell_queries".to_string(), 42)],
            vec![("layer".to_string(), "grid-index".to_string())],
        )
    }

    #[test]
    fn json_roundtrips_through_own_parser() {
        let snap = sample();
        let json = snap.to_json();
        let v = crate::json::parse(&json).expect("snapshot JSON parses");
        assert_eq!(v.pointer("/version").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(
            v.pointer("/counters/cells_executed")
                .and_then(|v| v.as_u64()),
            Some(42)
        );
        assert_eq!(
            v.pointer("/gauges/current_layer").and_then(|v| v.as_u64()),
            Some(3)
        );
        assert_eq!(
            v.pointer("/histograms/cell_latency_ns/count")
                .and_then(|v| v.as_u64()),
            Some(1)
        );
        assert_eq!(
            v.pointer("/meta/layer").and_then(|v| v.as_str()),
            Some("grid-index")
        );
    }

    #[test]
    fn prometheus_exposition_is_cumulative() {
        let snap = sample();
        let text = snap.to_prometheus();
        assert!(text.contains("acq_cells_executed_total 42"), "{text}");
        assert!(text.contains("acq_current_layer 3"), "{text}");
        assert!(
            text.contains("acq_cell_latency_ns_bucket{le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("acq_worker_cells_total{worker=\"1\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn lookups_find_instruments() {
        let snap = sample();
        assert_eq!(snap.counter("cells_executed"), Some(42));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("current_layer"), Some(3));
        assert_eq!(snap.histogram("cell_latency_ns").unwrap().count, 1);
    }
}

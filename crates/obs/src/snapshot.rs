//! Point-in-time metric snapshots and their two text sinks: a compact JSON
//! document (`--metrics-out`, validated in CI against
//! `schemas/metrics.schema.json`) and a Prometheus text exposition.

use crate::metrics::{Histogram, Metrics};

/// Snapshot format version emitted in the JSON document. Bump when the
/// structure changes and update `schemas/metrics.schema.json` to match.
///
/// v2: histogram objects gained estimated `p50`/`p95`/`p99` quantiles
/// (`null` while the histogram is empty).
///
/// v3: `exec_stats` gained the zone-map pruning counters `zones_pruned`,
/// `zones_full` and `zones_scanned`.
pub const SNAPSHOT_VERSION: u64 = 3;

/// Quantiles estimated for every histogram snapshot, `(label, q)`.
pub const SNAPSHOT_QUANTILES: [(&str, f64); 3] = [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)];

/// Version label of the `acq_build_info` series (the crate package version).
pub const BUILD_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Revision label of the `acq_build_info` series: the `ACQ_BUILD_COMMIT`
/// environment variable captured at compile time, or `"unknown"`.
pub const BUILD_REVISION: &str = match option_env!("ACQ_BUILD_COMMIT") {
    Some(rev) => rev,
    None => "unknown",
};

/// One histogram captured at snapshot time.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Instrument name.
    pub name: &'static str,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// `(upper_bound, count)` per bucket; `None` is the overflow (`+Inf`)
    /// bucket. Counts are per-bucket, not cumulative.
    pub buckets: Vec<(Option<u64>, u64)>,
}

impl HistogramSnapshot {
    /// Captures `h` under `name`.
    pub fn of(name: &'static str, h: &Histogram) -> Self {
        let buckets = h
            .bounds()
            .iter()
            .map(|&b| Some(b))
            .chain(std::iter::once(None))
            .zip(h.bucket_counts())
            .collect();
        Self {
            name,
            count: h.count(),
            sum: h.sum(),
            buckets,
        }
    }

    /// Estimates the `q`-quantile (0 ≤ q ≤ 1) by linear interpolation
    /// within the bucket that crosses the target rank, the standard
    /// fixed-bucket estimator. Observations in the overflow bucket are
    /// clamped to the last finite bound (there is no upper edge to
    /// interpolate towards), so tail quantiles are *under*-estimates when
    /// the overflow bucket is populated. Returns `None` while empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0u64;
        let mut lower = 0u64; // previous bucket's upper bound
        for &(bound, count) in &self.buckets {
            let before = cumulative;
            cumulative += count;
            if count > 0 && cumulative as f64 >= target {
                return Some(match bound {
                    Some(b) => {
                        let frac = ((target - before as f64) / count as f64).clamp(0.0, 1.0);
                        lower as f64 + frac * (b - lower) as f64
                    }
                    None => lower as f64,
                });
            }
            if let Some(b) = bound {
                lower = b;
            }
        }
        Some(lower as f64)
    }

    /// The [`SNAPSHOT_QUANTILES`] estimates, in order.
    pub fn quantiles(&self) -> [(&'static str, Option<f64>); 3] {
        SNAPSHOT_QUANTILES.map(|(label, q)| (label, self.quantile(q)))
    }
}

/// A consistent-enough point-in-time capture of every instrument.
///
/// Individual atomics are read without a global lock, so a snapshot taken
/// *during* a run may be torn across instruments; snapshots taken after the
/// driver returns (the supported use) are exact.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Milliseconds since the handle was created.
    pub uptime_ms: u64,
    /// Counter values in stable order.
    pub counters: Vec<(&'static str, u64)>,
    /// Set gauges in stable order.
    pub gauges: Vec<(&'static str, u64)>,
    /// Histogram captures.
    pub histograms: Vec<HistogramSnapshot>,
    /// `(worker, cells, steals)` for each worker that executed a cell.
    pub workers: Vec<(usize, u64, u64)>,
    /// Engine executor statistics bridged in via
    /// [`crate::Obs::record_exec_stats`].
    pub exec_stats: Vec<(String, u64)>,
    /// Free-form run metadata (evaluation layer kind, thread count, ...).
    pub meta: Vec<(String, String)>,
}

impl MetricsSnapshot {
    /// Captures every instrument of `metrics`.
    pub fn capture(
        metrics: &Metrics,
        uptime_ms: u64,
        exec_stats: Vec<(String, u64)>,
        meta: Vec<(String, String)>,
    ) -> Self {
        let histograms = [
            ("cell_latency_ns", &metrics.cell_latency_ns),
            ("batch_cells", &metrics.batch_cells),
        ]
        .into_iter()
        .map(|(name, h)| HistogramSnapshot::of(name, h))
        .collect();
        Self {
            uptime_ms,
            counters: metrics.counter_values(),
            gauges: metrics.gauge_values(),
            histograms,
            workers: metrics.worker_tallies(),
            exec_stats,
            meta,
        }
    }

    /// Convenience lookup of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }

    /// Convenience lookup of a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }

    /// Convenience lookup of a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders the snapshot as a compact single-line JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push('{');
        push_kv_num(&mut s, "version", SNAPSHOT_VERSION);
        s.push(',');
        push_kv_num(&mut s, "uptime_ms", self.uptime_ms);
        s.push_str(",\"counters\":{");
        push_pairs(&mut s, self.counters.iter().map(|&(k, v)| (k, v)));
        s.push_str("},\"gauges\":{");
        push_pairs(&mut s, self.gauges.iter().map(|&(k, v)| (k, v)));
        s.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{}",
                h.name, h.count, h.sum
            ));
            for (label, q) in h.quantiles() {
                match q {
                    Some(v) => s.push_str(&format!(",\"{label}\":{}", fmt_f64(v))),
                    None => s.push_str(&format!(",\"{label}\":null")),
                }
            }
            s.push_str(",\"buckets\":[");
            for (j, (bound, count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                match bound {
                    Some(b) => s.push_str(&format!("{{\"le\":{b},\"count\":{count}}}")),
                    None => s.push_str(&format!("{{\"le\":null,\"count\":{count}}}")),
                }
            }
            s.push_str("]}");
        }
        s.push_str("},\"workers\":[");
        for (i, &(w, cells, steals)) in self.workers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"worker\":{w},\"cells\":{cells},\"steals\":{steals}}}"
            ));
        }
        s.push_str("],\"exec_stats\":{");
        push_pairs(
            &mut s,
            self.exec_stats.iter().map(|(k, v)| (k.as_str(), *v)),
        );
        s.push_str("},\"meta\":{");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
        }
        s.push_str("}}");
        s
    }

    /// Renders the snapshot in the Prometheus text exposition format, with
    /// every series prefixed `acq_`, `# HELP`/`# TYPE` headers, and label
    /// values escaped per the exposition-format rules.
    pub fn to_prometheus(&self) -> String {
        let mut s = String::with_capacity(2048);
        push_header(
            &mut s,
            "acq_build_info",
            "Build information as an info-style series (always 1)",
            "gauge",
        );
        s.push_str(&format!(
            "acq_build_info{{version=\"{}\",revision=\"{}\"}} 1\n",
            prom_escape_label(BUILD_VERSION),
            prom_escape_label(BUILD_REVISION)
        ));
        push_header(
            &mut s,
            "acq_uptime_ms",
            "Milliseconds since the metrics handle was created",
            "gauge",
        );
        s.push_str(&format!("acq_uptime_ms {}\n", self.uptime_ms));
        for &(name, v) in &self.counters {
            push_header(
                &mut s,
                &format!("acq_{name}_total"),
                instrument_help(name),
                "counter",
            );
            s.push_str(&format!("acq_{name}_total {v}\n"));
        }
        for &(name, v) in &self.gauges {
            push_header(
                &mut s,
                &format!("acq_{name}"),
                instrument_help(name),
                "gauge",
            );
            s.push_str(&format!("acq_{name} {v}\n"));
        }
        for h in &self.histograms {
            push_header(
                &mut s,
                &format!("acq_{}", h.name),
                instrument_help(h.name),
                "histogram",
            );
            let mut cumulative = 0u64;
            for (bound, count) in &h.buckets {
                cumulative += count;
                let le = match bound {
                    Some(b) => b.to_string(),
                    None => "+Inf".to_string(),
                };
                s.push_str(&format!(
                    "acq_{}_bucket{{le=\"{le}\"}} {cumulative}\n",
                    h.name
                ));
            }
            s.push_str(&format!("acq_{}_sum {}\n", h.name, h.sum));
            s.push_str(&format!("acq_{}_count {}\n", h.name, h.count));
            let quantiles = h.quantiles();
            if quantiles.iter().any(|(_, v)| v.is_some()) {
                push_header(
                    &mut s,
                    &format!("acq_{}_quantile", h.name),
                    "Estimated quantiles (linear interpolation within buckets)",
                    "gauge",
                );
                for ((_, q), (_, v)) in SNAPSHOT_QUANTILES.iter().zip(quantiles) {
                    if let Some(v) = v {
                        s.push_str(&format!(
                            "acq_{}_quantile{{quantile=\"{q}\"}} {}\n",
                            h.name,
                            fmt_f64(v)
                        ));
                    }
                }
            }
        }
        for &(w, cells, steals) in &self.workers {
            s.push_str(&format!(
                "acq_worker_cells_total{{worker=\"{w}\"}} {cells}\n"
            ));
            s.push_str(&format!(
                "acq_worker_steals_total{{worker=\"{w}\"}} {steals}\n"
            ));
        }
        for (name, v) in &self.exec_stats {
            push_header(
                &mut s,
                &format!("acq_exec_{name}_total"),
                "Engine executor statistic bridged from ExecStats",
                "counter",
            );
            s.push_str(&format!("acq_exec_{name}_total {v}\n"));
        }
        if !self.meta.is_empty() {
            push_header(
                &mut s,
                "acq_meta",
                "Free-form run metadata as an info-style series (always 1)",
                "gauge",
            );
            for (k, v) in &self.meta {
                s.push_str(&format!(
                    "acq_meta{{key=\"{}\",value=\"{}\"}} 1\n",
                    prom_escape_label(k),
                    prom_escape_label(v)
                ));
            }
        }
        s
    }
}

/// Emits `# HELP` and `# TYPE` header lines for a metric family.
fn push_header(s: &mut String, family: &str, help: &str, kind: &str) {
    s.push_str(&format!(
        "# HELP {family} {}\n# TYPE {family} {kind}\n",
        prom_escape_help(help)
    ));
}

/// Escapes a Prometheus label *value*: backslash, double-quote and newline
/// must be escaped inside the `label="…"` syntax.
pub fn prom_escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a `# HELP` string: only backslash and newline are special there
/// (quotes are legal verbatim in help text).
pub fn prom_escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` compactly for both JSON and Prometheus: integral values
/// print without a fraction, everything else with just enough digits.
pub fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One-line help text per instrument, keyed by snapshot name.
fn instrument_help(name: &str) -> &'static str {
    match name {
        "cells_executed" => "Committed cell executions (equals AcqOutcome.explored)",
        "cells_speculative" => "Speculative cell executions on pool workers",
        "answers_found" => "Refined queries that satisfied the constraint",
        "repartitions" => "Repartition rounds performed (Algorithm 4)",
        "interrupts" => "Runs that ended on a budget or cancellation interrupt",
        "faults_injected" => "Injected faults fired under the active FaultPolicy",
        "at_most_once_violations" => {
            "At-most-once violations detected at the result slots (must be 0)"
        }
        "worker_steals" => "Cross-chunk steals in the Explore worker pool",
        "trace_dropped" => "Trace events discarded because the bounded buffer was full",
        "current_layer" => "Expand layer currently being explored",
        "frontier_batch" => "Cells in the most recent Expand batch",
        "store_len" => "Live entries in the aggregate store",
        "store_peak" => "Peak live entries in the aggregate store",
        "store_bytes" => "Approximate bytes held by the aggregate store",
        "budget_headroom" => "Remaining max_explored budget",
        "cell_latency_ns" => "Per-cell execution latency in nanoseconds",
        "batch_cells" => "Expand batch size distribution in cells",
        _ => "ACQ pipeline instrument",
    }
}

fn push_kv_num(s: &mut String, k: &str, v: u64) {
    s.push_str(&format!("\"{k}\":{v}"));
}

fn push_pairs<'a>(s: &mut String, pairs: impl Iterator<Item = (&'a str, u64)>) {
    for (i, (k, v)) in pairs.enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{k}\":{v}"));
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let m = Metrics::new();
        m.cells_executed.add(42);
        m.current_layer.set(3);
        m.cell_latency_ns.observe(500);
        m.record_worker_cell(1, true);
        MetricsSnapshot::capture(
            &m,
            12,
            vec![("cell_queries".to_string(), 42)],
            vec![("layer".to_string(), "grid-index".to_string())],
        )
    }

    #[test]
    fn json_roundtrips_through_own_parser() {
        let snap = sample();
        let json = snap.to_json();
        let v = crate::json::parse(&json).expect("snapshot JSON parses");
        assert_eq!(
            v.pointer("/version").and_then(|v| v.as_u64()),
            Some(SNAPSHOT_VERSION)
        );
        assert_eq!(
            v.pointer("/counters/cells_executed")
                .and_then(|v| v.as_u64()),
            Some(42)
        );
        assert_eq!(
            v.pointer("/gauges/current_layer").and_then(|v| v.as_u64()),
            Some(3)
        );
        assert_eq!(
            v.pointer("/histograms/cell_latency_ns/count")
                .and_then(|v| v.as_u64()),
            Some(1)
        );
        assert_eq!(
            v.pointer("/meta/layer").and_then(|v| v.as_str()),
            Some("grid-index")
        );
    }

    #[test]
    fn prometheus_surfaces_build_info_and_uptime() {
        let text = sample().to_prometheus();
        assert!(
            text.contains(&format!(
                "acq_build_info{{version=\"{BUILD_VERSION}\",revision=\"{BUILD_REVISION}\"}} 1\n"
            )),
            "{text}"
        );
        assert!(text.contains("# TYPE acq_build_info gauge"), "{text}");
        assert!(text.contains("acq_uptime_ms 12\n"), "{text}");
        assert!(text.contains("# TYPE acq_uptime_ms gauge"), "{text}");
    }

    #[test]
    fn prometheus_exposition_is_cumulative() {
        let snap = sample();
        let text = snap.to_prometheus();
        assert!(text.contains("acq_cells_executed_total 42"), "{text}");
        assert!(text.contains("acq_current_layer 3"), "{text}");
        assert!(
            text.contains("acq_cell_latency_ns_bucket{le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("acq_worker_cells_total{worker=\"1\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // 100 observations of 1..=100 over bounds [10, 50, 100]: the
        // estimator should land near the exact order statistics.
        let h = Histogram::new(&[10, 50, 100]);
        for v in 1..=100 {
            h.observe(v);
        }
        let snap = HistogramSnapshot::of("h", &h);
        let p50 = snap.quantile(0.50).unwrap();
        let p95 = snap.quantile(0.95).unwrap();
        let p99 = snap.quantile(0.99).unwrap();
        assert!((p50 - 50.0).abs() <= 1.0, "p50={p50}");
        assert!((p95 - 95.0).abs() <= 1.0, "p95={p95}");
        assert!((p99 - 99.0).abs() <= 1.0, "p99={p99}");
        // Edges.
        assert_eq!(snap.quantile(0.0), Some(0.0));
        assert_eq!(snap.quantile(1.0), Some(100.0));
    }

    #[test]
    fn quantiles_clamp_to_last_finite_bound_on_overflow() {
        let h = Histogram::new(&[10]);
        for _ in 0..10 {
            h.observe(1000); // all overflow
        }
        let snap = HistogramSnapshot::of("h", &h);
        assert_eq!(snap.quantile(0.99), Some(10.0), "no edge to interpolate to");
    }

    #[test]
    fn empty_histogram_has_null_quantiles() {
        let h = Histogram::new(&[10]);
        let snap = HistogramSnapshot::of("h", &h);
        assert_eq!(snap.quantile(0.5), None);
        // JSON renders them as null, not as a bogus number.
        let m = Metrics::new();
        let full = MetricsSnapshot::capture(&m, 0, vec![], vec![]);
        let v = crate::json::parse(&full.to_json()).unwrap();
        assert!(matches!(
            v.pointer("/histograms/cell_latency_ns/p50"),
            Some(crate::json::JsonValue::Null)
        ));
    }

    #[test]
    fn json_and_prometheus_surface_quantiles() {
        let snap = sample();
        let v = crate::json::parse(&snap.to_json()).unwrap();
        // One observation of 500ns: every quantile sits in (250, 1000].
        let p99 = match v.pointer("/histograms/cell_latency_ns/p99") {
            Some(crate::json::JsonValue::Num(n)) => *n,
            other => panic!("p99 missing: {other:?}"),
        };
        assert!(p99 > 250.0 && p99 <= 1000.0, "p99={p99}");
        let text = snap.to_prometheus();
        assert!(
            text.contains("acq_cell_latency_ns_quantile{quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE acq_cell_latency_ns_quantile gauge"),
            "{text}"
        );
    }

    #[test]
    fn prometheus_headers_have_help_lines() {
        let text = sample().to_prometheus();
        assert!(
            text.contains(
                "# HELP acq_cells_executed_total Committed cell executions \
                 (equals AcqOutcome.explored)\n# TYPE acq_cells_executed_total counter"
            ),
            "{text}"
        );
        assert!(text.contains("# HELP acq_current_layer "), "{text}");
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        let m = Metrics::new();
        let snap = MetricsSnapshot::capture(
            &m,
            0,
            vec![],
            vec![("sql".to_string(), "select \"x\\y\"\nfrom t".to_string())],
        );
        let text = snap.to_prometheus();
        assert!(
            text.contains(r#"acq_meta{key="sql",value="select \"x\\y\"\nfrom t"} 1"#),
            "{text}"
        );
        assert!(
            !text.contains("select \"x\\y\"\nfrom"),
            "raw newline must not split the series line: {text}"
        );
    }

    #[test]
    fn escaping_helpers_cover_the_edge_cases() {
        assert_eq!(prom_escape_label(r"a\b"), r"a\\b");
        assert_eq!(prom_escape_label("a\"b"), "a\\\"b");
        assert_eq!(prom_escape_label("a\nb"), "a\\nb");
        // Help strings escape backslash/newline but leave quotes alone.
        assert_eq!(
            prom_escape_help("say \"hi\"\\now\nplease"),
            "say \"hi\"\\\\now\\nplease"
        );
        assert_eq!(prom_escape_help("plain"), "plain");
    }

    #[test]
    fn lookups_find_instruments() {
        let snap = sample();
        assert_eq!(snap.counter("cells_executed"), Some(42));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("current_layer"), Some(3));
        assert_eq!(snap.histogram("cell_latency_ns").unwrap().count, 1);
    }
}

//! Durable query journal: a bounded wait-free ring feeding a dedicated
//! writer thread that appends NDJSON records to a size-rotated on-disk log.
//!
//! The producer side is [`JournalRing::try_append`] — the same `try_lock`
//! slot discipline as [`ProgressSink`]: the §9 serial commit path (and any
//! request handler) offers a record and *never waits*; if the target slot is
//! held the record is dropped and counted. `try_append` is a
//! `commit-reachability` root in `lint.toml`, so acq-lint proves nothing
//! blocking is transitively reachable from it.
//!
//! The consumer side is one dedicated thread (`acq-journal-writer`) that
//! drains the ring every few milliseconds and appends each record plus a
//! trailing newline to the journal file, rotating to a numbered segment
//! (`<path>.1`, `<path>.2`, …) *at record boundaries* whenever the active
//! segment would exceed `max_bytes`. Rotated segments therefore always end
//! with a newline; only the active segment can carry a torn final line
//! (writer killed between `write` and the newline), and both the reader
//! ([`read_journal`]) and the reopening writer ([`Journal::open`]) recover
//! from that honestly: the reader skips the torn tail and counts it, the
//! writer truncates it (counted in [`Journal::torn_repaired`]) so the next
//! append starts on a clean record boundary.
//!
//! [`ProgressSink`]: https://docs.rs/acq-core

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::json::{self, JsonValue};

/// Default slot count for the journal ring.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// Default size threshold at which the active segment rotates.
pub const DEFAULT_JOURNAL_MAX_BYTES: u64 = 8 * 1024 * 1024;

/// Version stamped into every journal record (`"v"` field).
pub const JOURNAL_VERSION: u64 = 1;

/// How often the writer thread drains the ring.
const WRITER_POLL: Duration = Duration::from_millis(10);

/// Bounded wait-free record ring: many producers, one draining writer.
///
/// Producers call [`try_append`]; if the slot for the next sequence number
/// is momentarily held (by the writer draining it) the record is dropped
/// and `dropped` is bumped — producers never wait. Each slot stores
/// `(seq, record)` so the drainer can detect being lapped.
///
/// [`try_append`]: JournalRing::try_append
pub struct JournalRing {
    slots: Vec<Mutex<Option<(u64, String)>>>,
    /// Sequence number of the next record to be offered.
    head: AtomicU64,
    /// Records discarded because the target slot was held.
    dropped: AtomicU64,
    /// Records durably written (line + newline flushed) by the writer.
    written: AtomicU64,
    /// Completed segment rotations.
    rotations: AtomicU64,
    /// Write/rotate failures (the record is lost but counted).
    write_errors: AtomicU64,
    /// Torn final lines truncated away when the journal was (re)opened.
    torn_repaired: AtomicU64,
}

impl JournalRing {
    /// A ring retaining at most `capacity` records (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push(Mutex::new(None));
        }
        JournalRing {
            slots,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            written: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            torn_repaired: AtomicU64::new(0),
        }
    }

    /// Slot count of the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Sequence number of the next record to be offered.
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Records dropped because a producer would have had to wait.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed) // relaxed-ok: monotone counter read
    }

    /// Records durably appended (line and newline written) so far.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Acquire)
    }

    /// Segment rotations completed by the writer.
    pub fn rotations(&self) -> u64 {
        self.rotations.load(Ordering::Relaxed) // relaxed-ok: monotone counter read
    }

    /// Records lost to I/O errors in the writer (counted, never retried).
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed) // relaxed-ok: monotone counter read
    }

    /// Torn final lines truncated when the journal file was opened.
    pub fn torn_repaired(&self) -> u64 {
        self.torn_repaired.load(Ordering::Relaxed) // relaxed-ok: monotone counter read
    }

    /// Offer one NDJSON record (no trailing newline) without ever blocking.
    ///
    /// Returns `false` (and counts the drop) if the target slot is held.
    /// Records containing a newline are rejected outright — a multi-line
    /// record would tear the NDJSON framing for every later reader.
    pub fn try_append(&self, record: String) -> bool {
        if record.contains('\n') {
            self.dropped.fetch_add(1, Ordering::Relaxed); // relaxed-ok: independent monotone counter
            return false;
        }
        let seq = self.head.load(Ordering::Acquire);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        match slot.try_lock() {
            Ok(mut guard) => {
                // A still-unwritten record in this slot is about to be
                // lapped; the drain below reports it as missed.
                *guard = Some((seq, record));
                drop(guard);
                self.head.store(seq + 1, Ordering::Release);
                true
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed); // relaxed-ok: independent monotone counter
                false
            }
        }
    }

    /// Drain every retained record with sequence `>= cursor`, in order.
    ///
    /// Returns `(records, next_cursor, missed)` exactly like
    /// `ProgressSink::drain_from`; `missed` counts records evicted by ring
    /// wraparound or currently held by a producer.
    pub fn drain_from(&self, cursor: u64) -> (Vec<String>, u64, u64) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let oldest = head.saturating_sub(cap);
        let mut missed = oldest.saturating_sub(cursor);
        let start = cursor.max(oldest);
        let mut records = Vec::new();
        for seq in start..head {
            let slot = &self.slots[(seq % cap) as usize];
            match slot.try_lock() {
                Ok(mut guard) => match guard.take() {
                    Some((stored_seq, rec)) if stored_seq == seq => records.push(rec),
                    Some(other) => {
                        // Not ours (lapped): put it back for its own drain.
                        *guard = Some(other);
                        missed += 1;
                    }
                    None => missed += 1,
                },
                Err(_) => missed += 1,
            }
        }
        (records, head, missed)
    }
}

impl std::fmt::Debug for JournalRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalRing")
            .field("capacity", &self.capacity())
            .field("head", &self.head())
            .field("dropped", &self.dropped())
            .field("written", &self.written())
            .finish()
    }
}

/// A durable journal: ring + writer thread + size-rotated NDJSON log.
///
/// Dropping the journal stops and joins the writer after a final drain, so
/// every record accepted by the ring before the drop is durably written
/// (absent I/O errors, which are counted in [`JournalRing::write_errors`]).
pub struct Journal {
    ring: Arc<JournalRing>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    path: PathBuf,
}

impl Journal {
    /// Opens (creating or appending) the journal at `path` and starts the
    /// writer thread. A torn final line left by a killed writer is
    /// truncated away first so appends resume on a record boundary.
    pub fn open(path: &Path, max_bytes: u64, capacity: usize) -> std::io::Result<Journal> {
        let ring = Arc::new(JournalRing::new(capacity));
        let repaired = repair_torn_tail(path)?;
        if repaired {
            ring.torn_repaired.fetch_add(1, Ordering::Relaxed); // relaxed-ok: startup-only counter
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            let path = path.to_path_buf();
            std::thread::Builder::new()
                .name("acq-journal-writer".into())
                .spawn(move || writer_loop(&ring, &stop, &path, file, max_bytes))?
        };
        Ok(Journal {
            ring,
            stop,
            handle: Some(handle),
            path: path.to_path_buf(),
        })
    }

    /// The wait-free producer handle; clone it anywhere records originate.
    pub fn ring(&self) -> Arc<JournalRing> {
        Arc::clone(&self.ring)
    }

    /// The base (active-segment) path this journal writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Torn final lines truncated away when this journal was opened.
    pub fn torn_repaired(&self) -> u64 {
        self.ring.torn_repaired()
    }

    /// Waits until every record offered before the call is durably written
    /// (or `timeout` elapses). Returns `true` when fully drained. Test and
    /// shutdown helper — never called from a commit path.
    pub fn flush(&self, timeout: Duration) -> bool {
        let target = self.ring.head();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let settled = self.ring.written() + self.ring.dropped() + self.ring.write_errors();
            if settled >= target {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("ring", &self.ring)
            .finish()
    }
}

/// The writer thread: drain → rotate-at-boundary → append → flush.
fn writer_loop(ring: &JournalRing, stop: &AtomicBool, path: &Path, mut file: File, max_bytes: u64) {
    let mut len = file.seek(SeekFrom::End(0)).unwrap_or(0);
    let mut cursor = 0u64;
    loop {
        let stopping = stop.load(Ordering::Acquire);
        let (records, next, missed) = ring.drain_from(cursor);
        cursor = next;
        if missed > 0 {
            // Lapped records were never written; account them as drops so
            // `flush` (written + dropped + errors >= head) still settles.
            ring.dropped.fetch_add(missed, Ordering::Relaxed); // relaxed-ok: monotone counter
        }
        let mut wrote = false;
        for record in records {
            let record_len = record.len() as u64 + 1;
            if len > 0 && len + record_len > max_bytes {
                match rotate(path, &mut file) {
                    Ok(fresh) => {
                        file = fresh;
                        len = 0;
                        ring.rotations.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter
                    }
                    Err(_) => {
                        ring.write_errors.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter
                        continue;
                    }
                }
            }
            let mut line = record;
            line.push('\n');
            match file.write_all(line.as_bytes()) {
                Ok(()) => {
                    len += record_len;
                    wrote = true;
                    ring.written.fetch_add(1, Ordering::Release);
                }
                Err(_) => {
                    ring.write_errors.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter
                }
            }
        }
        if wrote {
            let _ = file.flush();
        }
        if stopping && ring.head() == cursor {
            return;
        }
        if !stopping {
            std::thread::sleep(WRITER_POLL);
        }
    }
}

/// Renames the active segment to the next free `<path>.<n>` and reopens a
/// fresh active segment.
fn rotate(path: &Path, file: &mut File) -> std::io::Result<File> {
    file.flush()?;
    let next = segment_paths(path)
        .iter()
        .filter_map(|p| segment_seq(path, p))
        .max()
        .unwrap_or(0)
        + 1;
    let rotated = PathBuf::from(format!("{}.{next}", path.display()));
    fs::rename(path, &rotated)?;
    OpenOptions::new().create(true).append(true).open(path)
}

/// The sequence number of `candidate` relative to base `path`
/// (`journal.ndjson.3` → `Some(3)`), or `None` for the base itself.
fn segment_seq(path: &Path, candidate: &Path) -> Option<u64> {
    let base = path.file_name()?.to_str()?;
    let name = candidate.file_name()?.to_str()?;
    name.strip_prefix(base)?.strip_prefix('.')?.parse().ok()
}

/// Every rotated segment of the journal at `path`, oldest first (ascending
/// sequence number). The active segment (`path` itself) is not included.
pub fn segment_paths(path: &Path) -> Vec<PathBuf> {
    let Some(dir) = path.parent() else {
        return Vec::new();
    };
    let dir = if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    };
    let mut segments: Vec<(u64, PathBuf)> = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let p = entry.path();
            if let Some(seq) = segment_seq(path, &p) {
                segments.push((seq, p));
            }
        }
    }
    segments.sort_unstable_by_key(|(seq, _)| *seq);
    segments.into_iter().map(|(_, p)| p).collect()
}

/// Truncates a torn final line (no trailing newline) from the file at
/// `path`, returning whether a repair happened. Missing files are fine.
fn repair_torn_tail(path: &Path) -> std::io::Result<bool> {
    let Ok(bytes) = fs::read(path) else {
        return Ok(false);
    };
    if bytes.is_empty() || bytes.ends_with(b"\n") {
        return Ok(false);
    }
    let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1) as u64;
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(keep)?;
    Ok(true)
}

/// Wall-clock milliseconds since the Unix epoch — the `at_ms` stamp of
/// every journal record. Lives here (not in serve) because this crate is
/// the sanctioned clock-reading layer under the determinism lint.
pub fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}

/// Everything a read of a journal (all segments) yields.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct JournalRead {
    /// Complete (newline-terminated) records, oldest segment first.
    pub records: Vec<String>,
    /// Torn final lines skipped (at most one per segment file).
    pub torn: u64,
    /// Segment files read, including the active one.
    pub segments: u64,
}

/// Reads every record of the journal at `path`: rotated segments oldest
/// first, then the active segment. A final line without its newline is
/// skipped and counted in `torn`, never half-parsed.
pub fn read_journal(path: &Path) -> std::io::Result<JournalRead> {
    let mut out = JournalRead::default();
    let mut files = segment_paths(path);
    files.push(path.to_path_buf());
    for file in files {
        let Ok(text) = fs::read_to_string(&file) else {
            continue; // active segment may not exist yet
        };
        out.segments += 1;
        let torn_tail = !text.is_empty() && !text.ends_with('\n');
        let mut lines: Vec<&str> = text.split('\n').filter(|l| !l.is_empty()).collect();
        if torn_tail {
            lines.pop();
            out.torn += 1;
        }
        out.records.extend(lines.into_iter().map(String::from));
    }
    Ok(out)
}

/// Aggregate view of a journal for `acq journal summarize`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct JournalSummary {
    /// Complete records parsed.
    pub records: u64,
    /// Records that failed to parse as JSON (counted, never fatal).
    pub malformed: u64,
    /// Torn final lines skipped by the reader.
    pub torn: u64,
    /// `kind == "query"` records.
    pub queries: u64,
    /// `kind == "alert"` records.
    pub alerts: u64,
    /// Query records by termination label.
    pub by_termination: BTreeMap<String, u64>,
    /// Alert records by `rule → transition` label.
    pub by_alert: BTreeMap<String, u64>,
}

/// Summarizes parsed journal records (as returned by [`read_journal`]).
pub fn summarize(read: &JournalRead) -> JournalSummary {
    let mut s = JournalSummary {
        torn: read.torn,
        ..JournalSummary::default()
    };
    for line in &read.records {
        let Ok(v) = json::parse(line) else {
            s.malformed += 1;
            continue;
        };
        s.records += 1;
        match v.pointer("/kind").and_then(JsonValue::as_str) {
            Some("query") => {
                s.queries += 1;
                let term = v
                    .pointer("/termination")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unknown");
                *s.by_termination.entry(term.to_string()).or_insert(0) += 1;
            }
            Some("alert") => {
                s.alerts += 1;
                let rule = v
                    .pointer("/rule")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unknown");
                let transition = v
                    .pointer("/transition")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unknown");
                *s.by_alert
                    .entry(format!("{rule} {transition}"))
                    .or_insert(0) += 1;
            }
            _ => {}
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("acq-journal-{}-{tag}-{n}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join("journal.ndjson")
    }

    fn cleanup(path: &Path) {
        if let Some(dir) = path.parent() {
            let _ = fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn ring_drops_instead_of_blocking_on_held_slot() {
        let ring = JournalRing::new(2);
        assert!(ring.try_append("a".into()));
        assert!(ring.try_append("b".into()));
        // Hold the slot the producer wants next (seq 2 -> slot 0).
        let guard = ring.slots[0].lock().unwrap();
        assert!(!ring.try_append("c".into()));
        assert_eq!(ring.dropped(), 1);
        drop(guard);
        assert!(ring.try_append("d".into()));
        assert_eq!(ring.head(), 3);
    }

    #[test]
    fn ring_rejects_embedded_newlines() {
        let ring = JournalRing::new(4);
        assert!(!ring.try_append("a\nb".into()));
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.head(), 0);
    }

    #[test]
    fn ring_drain_takes_records_in_order() {
        let ring = JournalRing::new(8);
        for i in 0..5 {
            assert!(ring.try_append(format!("r{i}")));
        }
        let (records, next, missed) = ring.drain_from(0);
        assert_eq!(records, vec!["r0", "r1", "r2", "r3", "r4"]);
        assert_eq!((next, missed), (5, 0));
        let (records, _, _) = ring.drain_from(next);
        assert!(records.is_empty());
    }

    #[test]
    fn journal_appends_and_reads_back_across_reopen() {
        let path = temp_path("roundtrip");
        {
            let journal = Journal::open(&path, u64::MAX, 64).unwrap();
            assert!(journal
                .ring()
                .try_append("{\"kind\":\"query\",\"n\":1}".into()));
            assert!(journal
                .ring()
                .try_append("{\"kind\":\"query\",\"n\":2}".into()));
            assert!(journal.flush(Duration::from_secs(5)));
        }
        // Reopen (new process's view) and append more.
        {
            let journal = Journal::open(&path, u64::MAX, 64).unwrap();
            assert_eq!(journal.torn_repaired(), 0);
            assert!(journal
                .ring()
                .try_append("{\"kind\":\"query\",\"n\":3}".into()));
            assert!(journal.flush(Duration::from_secs(5)));
        }
        let read = read_journal(&path).unwrap();
        assert_eq!(read.torn, 0);
        assert_eq!(read.records.len(), 3);
        assert!(read.records[2].contains("\"n\":3"));
        cleanup(&path);
    }

    #[test]
    fn rotation_happens_at_record_boundaries() {
        let path = temp_path("rotate");
        let record = format!("{{\"pad\":\"{}\"}}", "x".repeat(40));
        {
            let journal = Journal::open(&path, 128, 64).unwrap();
            for _ in 0..10 {
                assert!(journal.ring().try_append(record.clone()));
                // Flush between appends so the writer sees each record's
                // size against the live segment length.
                assert!(journal.flush(Duration::from_secs(5)));
            }
            assert!(journal.ring().rotations() >= 2);
        }
        let segments = segment_paths(&path);
        assert!(segments.len() >= 2, "{segments:?}");
        for seg in &segments {
            let text = fs::read_to_string(seg).unwrap();
            assert!(text.ends_with('\n'), "rotated segment torn: {seg:?}");
            assert!(text.len() as u64 <= 128, "segment over max_bytes");
        }
        let read = read_journal(&path).unwrap();
        assert_eq!(read.records.len(), 10, "no record lost to rotation");
        assert_eq!(read.torn, 0);
        assert!(read.records.iter().all(|r| r == &record));
        cleanup(&path);
    }

    #[test]
    fn reader_skips_torn_final_line_and_counts_it() {
        let path = temp_path("torn-read");
        fs::write(&path, "{\"n\":1}\n{\"n\":2}\n{\"n\":3").unwrap();
        let read = read_journal(&path).unwrap();
        assert_eq!(read.records, vec!["{\"n\":1}", "{\"n\":2}"]);
        assert_eq!(read.torn, 1);
        cleanup(&path);
    }

    #[test]
    fn reopening_writer_repairs_torn_tail_before_appending() {
        let path = temp_path("torn-repair");
        fs::write(&path, "{\"n\":1}\n{\"n\":2").unwrap();
        let journal = Journal::open(&path, u64::MAX, 64).unwrap();
        assert_eq!(journal.torn_repaired(), 1);
        assert!(journal.ring().try_append("{\"n\":3}".into()));
        assert!(journal.flush(Duration::from_secs(5)));
        drop(journal);
        let read = read_journal(&path).unwrap();
        assert_eq!(read.records, vec!["{\"n\":1}", "{\"n\":3}"]);
        assert_eq!(read.torn, 0, "the repair removed the torn bytes");
        cleanup(&path);
    }

    #[test]
    fn summarize_counts_kinds_and_malformed() {
        let read = JournalRead {
            records: vec![
                "{\"kind\":\"query\",\"termination\":\"completed\"}".into(),
                "{\"kind\":\"query\",\"termination\":\"completed\"}".into(),
                "{\"kind\":\"query\",\"termination\":\"deadline\"}".into(),
                "{\"kind\":\"alert\",\"rule\":\"shed\",\"transition\":\"firing\"}".into(),
                "not json".into(),
            ],
            torn: 1,
            segments: 1,
        };
        let s = summarize(&read);
        assert_eq!(s.records, 4);
        assert_eq!(s.malformed, 1);
        assert_eq!(s.torn, 1);
        assert_eq!(s.queries, 3);
        assert_eq!(s.alerts, 1);
        assert_eq!(s.by_termination.get("completed"), Some(&2));
        assert_eq!(s.by_alert.get("shed firing"), Some(&1));
    }

    #[test]
    fn drop_flushes_pending_records() {
        let path = temp_path("drop-flush");
        {
            let journal = Journal::open(&path, u64::MAX, 64).unwrap();
            for i in 0..20 {
                assert!(journal.ring().try_append(format!("{{\"n\":{i}}}")));
            }
            // No explicit flush: Drop must drain before joining.
        }
        let read = read_journal(&path).unwrap();
        assert_eq!(read.records.len(), 20);
        cleanup(&path);
    }
}

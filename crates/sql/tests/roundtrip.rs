//! Property test: queries rendered by `AcqQuery::to_sql` re-compile through
//! the frontend into a query with identical semantics (same admitted
//! aggregate on the same data), i.e. the dialect is closed under the
//! library's own rendering.

use proptest::prelude::*;

use acq_engine::{Catalog, DataType, Executor, Field, TableBuilder, Value};
use acq_query::{
    AcqQuery, AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide,
};
use acq_sql::compile;

fn catalog(values: &[(f64, f64)]) -> Catalog {
    let mut b = TableBuilder::new(
        "t",
        vec![
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
        ],
    )
    .unwrap();
    for &(x, y) in values {
        b.push_row(vec![Value::Float(x), Value::Float(y)]);
    }
    let mut cat = Catalog::new();
    cat.register(b.finish().unwrap()).unwrap();
    cat
}

fn aggregate_of(catalog: &Catalog, query: &AcqQuery) -> f64 {
    let mut exec = Executor::new(catalog.clone());
    let mut q = query.clone();
    exec.populate_domains(&mut q).unwrap();
    let rq = exec.resolve(&q).unwrap();
    let zeros = vec![0.0; q.dims()];
    let rel = exec.base_relation(&rq, &zeros).unwrap();
    exec.full_aggregate(&rq, &rel, &zeros)
        .unwrap()
        .value()
        .unwrap_or(f64::NAN)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn rendered_sql_recompiles_with_identical_semantics(
        rows in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 5..60),
        bx in 1.0f64..99.0,
        by in 1.0f64..99.0,
        upper_x in any::<bool>(),
        norefine_y in any::<bool>(),
        use_sum in any::<bool>(),
        target in 1.0f64..500.0,
    ) {
        let cat = catalog(&rows);
        let xd = cat.table("t").unwrap().numeric_domain("x").unwrap();
        let yd = cat.table("t").unwrap().numeric_domain("y").unwrap();
        // Predicate intervals must stay non-empty against the data domain.
        let px = if upper_x {
            Predicate::select(
                ColRef::new("t", "x"),
                Interval::new(xd.lo().min(bx), bx),
                RefineSide::Upper,
            )
        } else {
            Predicate::select(
                ColRef::new("t", "x"),
                Interval::new(bx, xd.hi().max(bx)),
                RefineSide::Lower,
            )
        };
        let mut py = Predicate::select(
            ColRef::new("t", "y"),
            Interval::new(yd.lo().min(by), by),
            RefineSide::Upper,
        );
        if norefine_y {
            py = py.no_refine();
        }
        let spec = if use_sum {
            AggregateSpec::sum(ColRef::new("t", "y"))
        } else {
            AggregateSpec::count()
        };
        let op = if use_sum { CmpOp::Ge } else { CmpOp::Eq };
        let original = AcqQuery::builder()
            .table("t")
            .predicate(px)
            .predicate(py)
            .constraint(AggConstraint::new(spec, op, target))
            .build()
            .unwrap();

        let sql = original.to_sql();
        let recompiled = compile(&sql, &cat)
            .unwrap_or_else(|e| panic!("rendered SQL failed to compile: {e}\n  {sql}"));

        // NOREFINE markers survive the round trip.
        prop_assert_eq!(
            original.dims() > 1,
            recompiled.dims() > 1,
            "flexibility lost in round trip: {}",
            sql
        );
        // Same constraint.
        prop_assert_eq!(&original.constraint.op, &recompiled.constraint.op);
        prop_assert!((original.constraint.target - recompiled.constraint.target).abs() < 1e-6);

        // Identical admitted aggregate (the binder may split ranges into two
        // one-sided predicates, so compare semantics, not structure).
        let a = aggregate_of(&cat, &original);
        let b = aggregate_of(&cat, &recompiled);
        match (a.is_nan(), b.is_nan()) {
            (true, true) => {}
            (false, false) => prop_assert!(
                (a - b).abs() < 1e-9,
                "semantics changed: {a} vs {b}\n  {sql}"
            ),
            _ => prop_assert!(false, "one side undefined: {a} vs {b}\n  {sql}"),
        }
    }
}

//! Parser robustness: no input — valid, mangled, or random — may panic the
//! frontend; it either parses or returns a positioned error.

use proptest::prelude::*;

use acq_sql::{parse, tokenize};

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Arbitrary unicode strings never panic the lexer or parser.
    #[test]
    fn arbitrary_strings_never_panic(s in "\\PC{0,200}") {
        let _ = tokenize(&s);
        let _ = parse(&s);
    }

    /// Strings built from the dialect's own vocabulary (keywords, operators,
    /// numbers, names) — much likelier to get deep into the parser — never
    /// panic either, and errors carry an in-bounds offset.
    #[test]
    fn dialect_soup_never_panics(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "SELECT", "FROM", "WHERE", "CONSTRAINT", "NOREFINE", "AND", "IN",
                "COUNT", "SUM", "AVG", "STDDEV", "(", ")", "{", "}", "*", ",",
                "<=", ">=", "<", ">", "=", ".", "users", "age", "t.x", "'str'",
                "1", "2.5", "1M", "0.1K", ";",
            ]),
            0..30,
        )
    ) {
        let s = parts.join(" ");
        match parse(&s) {
            Ok(ast) => prop_assert!(!ast.tables.is_empty()),
            Err(e) => prop_assert!(e.offset <= s.len(), "offset {} > len {}", e.offset, s.len()),
        }
    }

    /// Mutating one byte of a valid statement never panics (it may still
    /// parse, e.g. a digit change).
    #[test]
    fn single_byte_mutations_never_panic(pos in 0usize..100, byte in 0u8..128) {
        let base = "SELECT * FROM users CONSTRAINT COUNT(*) = 1M \
                    WHERE 25 <= age <= 35 AND city IN ('Boston') NOREFINE";
        let mut bytes = base.as_bytes().to_vec();
        let idx = pos % bytes.len();
        bytes[idx] = byte;
        if let Ok(s) = String::from_utf8(bytes) {
            let _ = parse(&s);
        }
    }
}

//! Binding: AST → executable [`AcqQuery`] against a catalog.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use acq_engine::{Catalog, DataType};
use acq_query::{
    AcqError, AcqQuery, AggConstraint, AggFunc, AggregateSpec, CmpOp, ColRef, Interval, LinearExpr,
    OntologyTree, Predicate, RefineSide,
};

use crate::ast::{AstPred, AstQuery, Operand, QualCol};
use crate::error::SqlError;

/// Binds parsed ACQ statements against a catalog.
///
/// Categorical predicates need an ontology to measure refinement distance
/// (§7.3); register one per column with [`Binder::with_ontology`], or let
/// the binder synthesise a flat one-level taxonomy over the column's
/// distinct values (every roll-up then costs the full tree height).
pub struct Binder<'a> {
    catalog: &'a Catalog,
    ontologies: HashMap<String, Arc<OntologyTree>>,
}

impl<'a> Binder<'a> {
    /// A binder over `catalog` with no registered ontologies.
    #[must_use]
    pub fn new(catalog: &'a Catalog) -> Self {
        Self {
            catalog,
            ontologies: HashMap::new(),
        }
    }

    /// Registers the taxonomy used to score refinements of `column`.
    #[must_use]
    pub fn with_ontology(mut self, column: impl Into<String>, tree: Arc<OntologyTree>) -> Self {
        self.ontologies.insert(column.into(), tree);
        self
    }

    /// Binds a parsed query.
    pub fn bind(&self, ast: &AstQuery) -> Result<AcqQuery, SqlError> {
        for t in &ast.tables {
            self.catalog.table(t)?;
        }

        let mut builder = AcqQuery::builder();
        for t in &ast.tables {
            builder = builder.table(t.clone());
        }

        // Constraint.
        let func = AggFunc::from_name(&ast.constraint.func)
            .map_err(|msg| SqlError::Query(AcqError::UnsupportedAggregate(msg)))?;
        let agg_col = match &ast.constraint.col {
            Some(qc) => Some(self.resolve(qc, &ast.tables)?),
            None => None,
        };
        builder = builder.constraint(AggConstraint::new(
            AggregateSpec { func, col: agg_col },
            ast.constraint.op,
            ast.constraint.target,
        ));

        // Predicates.
        for clause in &ast.clauses {
            match &clause.pred {
                AstPred::Cmp { left, op, right } => match (left, right) {
                    (Operand::Col { scale: ls, col: lc }, Operand::Col { scale: rs, col: rc }) => {
                        if *op != CmpOp::Eq {
                            return Err(SqlError::Bind(format!(
                                "join predicates must be equalities (found {op}); a refined \
                                 equi-join becomes the band |l - r| <= w (\u{a7}2.4)"
                            )));
                        }
                        let lref = self.resolve(lc, &ast.tables)?;
                        let rref = self.resolve(rc, &ast.tables)?;
                        let unscaled =
                            (ls - 1.0).abs() < f64::EPSILON && (rs - 1.0).abs() < f64::EPSILON;
                        if clause.norefine && unscaled {
                            builder = builder.join(lref, rref);
                        } else {
                            let mut p = Predicate::band_join(
                                LinearExpr {
                                    scale: *ls,
                                    col: lref,
                                    offset: 0.0,
                                },
                                LinearExpr {
                                    scale: *rs,
                                    col: rref,
                                    offset: 0.0,
                                },
                                0.0,
                            );
                            if clause.norefine {
                                p = p.no_refine();
                            }
                            builder = builder.predicate(p);
                        }
                    }
                    (Operand::Col { scale, col }, Operand::Num(n))
                    | (Operand::Num(n), Operand::Col { scale, col }) => {
                        let flipped = matches!(left, Operand::Num(_));
                        let p = self.bind_numeric(
                            col,
                            *scale,
                            *op,
                            *n,
                            flipped,
                            clause.norefine,
                            &ast.tables,
                        )?;
                        builder = builder.predicate(p);
                    }
                    (Operand::Num(_), Operand::Num(_)) => {
                        return Err(SqlError::Bind(
                            "predicate compares two literals; nothing to refine".into(),
                        ));
                    }
                },
                AstPred::Range { lo, col, hi } => {
                    // §2.2: ranges are rewritten into two one-sided
                    // predicates so each side refines independently.
                    let cref = self.resolve(col, &ast.tables)?;
                    let domain = self.numeric_domain(&cref)?;
                    let lower = Predicate::select(
                        cref.clone(),
                        Interval::new(*lo, lo.max(domain.hi())),
                        RefineSide::Lower,
                    )
                    .with_domain(domain)
                    .with_label(format!("{cref} >= {lo}"));
                    let upper = Predicate::select(
                        cref.clone(),
                        Interval::new(hi.min(domain.lo()), *hi),
                        RefineSide::Upper,
                    )
                    .with_domain(domain)
                    .with_label(format!("{cref} <= {hi}"));
                    let (lower, upper) = if clause.norefine {
                        (lower.no_refine(), upper.no_refine())
                    } else {
                        (lower, upper)
                    };
                    builder = builder.predicate(lower).predicate(upper);
                }
                AstPred::InList { col, values } => {
                    let p = self.bind_categorical(col, values, clause.norefine, &ast.tables)?;
                    builder = builder.predicate(p);
                }
                AstPred::StrEq { col, value } => {
                    let p = self.bind_categorical(
                        col,
                        std::slice::from_ref(value),
                        clause.norefine,
                        &ast.tables,
                    )?;
                    builder = builder.predicate(p);
                }
            }
        }

        Ok(builder.build()?)
    }

    /// Resolves a possibly-unqualified column against the FROM tables.
    fn resolve(&self, qc: &QualCol, tables: &[String]) -> Result<ColRef, SqlError> {
        if let Some(t) = &qc.table {
            if !tables.iter().any(|x| x == t) {
                return Err(SqlError::Bind(format!(
                    "table {t} is not in the FROM clause"
                )));
            }
            let table = self.catalog.table(t)?;
            if table.schema().index_of(&qc.column).is_none() {
                return Err(SqlError::Bind(format!(
                    "column {}.{} does not exist",
                    t, qc.column
                )));
            }
            return Ok(ColRef::new(t.clone(), qc.column.clone()));
        }
        let mut hits = Vec::new();
        for t in tables {
            let table = self.catalog.table(t)?;
            if table.schema().index_of(&qc.column).is_some() {
                hits.push(t.clone());
            }
        }
        match hits.len() {
            0 => Err(SqlError::Bind(format!(
                "column {} not found in any FROM table",
                qc.column
            ))),
            1 => Ok(ColRef::new(hits.remove(0), qc.column.clone())),
            _ => Err(SqlError::Bind(format!(
                "column {} is ambiguous (in tables {})",
                qc.column,
                hits.join(", ")
            ))),
        }
    }

    fn numeric_domain(&self, cref: &ColRef) -> Result<Interval, SqlError> {
        let table = self
            .catalog
            .table(cref.table.as_deref().unwrap_or_default())?;
        table.numeric_domain(&cref.column).ok_or_else(|| {
            SqlError::Bind(format!(
                "column {cref} is not numeric (or the table is empty)"
            ))
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn bind_numeric(
        &self,
        col: &QualCol,
        scale: f64,
        op: CmpOp,
        n: f64,
        flipped: bool,
        norefine: bool,
        tables: &[String],
    ) -> Result<Predicate, SqlError> {
        if (scale - 1.0).abs() > f64::EPSILON {
            return Err(SqlError::Bind(
                "scaled columns are only supported in join predicates".into(),
            ));
        }
        let cref = self.resolve(col, tables)?;
        let domain = self.numeric_domain(&cref)?;
        // Normalise `n op col` into `col op' n`.
        let op = if flipped {
            match op {
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::Ge => CmpOp::Le,
                CmpOp::Eq => CmpOp::Eq,
            }
        } else {
            op
        };
        // Closed-interval semantics: strict and non-strict bounds coincide
        // over continuous refinement (§2.2 treats B.y < 50 as (0, 50)).
        let mut p = match op {
            CmpOp::Lt | CmpOp::Le => Predicate::select(
                cref.clone(),
                Interval::new(domain.lo().min(n), n),
                RefineSide::Upper,
            )
            .with_label(format!("{cref} <= {n}")),
            CmpOp::Gt | CmpOp::Ge => Predicate::select(
                cref.clone(),
                Interval::new(n, domain.hi().max(n)),
                RefineSide::Lower,
            )
            .with_label(format!("{cref} >= {n}")),
            CmpOp::Eq => Predicate::select(cref.clone(), Interval::point(n), RefineSide::Upper)
                .with_label(format!("{cref} = {n}")),
        }
        .with_domain(domain);
        if norefine {
            p = p.no_refine();
        }
        Ok(p)
    }

    fn bind_categorical(
        &self,
        col: &QualCol,
        values: &[String],
        norefine: bool,
        tables: &[String],
    ) -> Result<Predicate, SqlError> {
        let cref = self.resolve(col, tables)?;
        let table = self
            .catalog
            .table(cref.table.as_deref().unwrap_or_default())?;
        let idx = table
            .schema()
            .index_of(&cref.column)
            .ok_or_else(|| SqlError::Bind(format!("unknown column {cref}")))?;
        if table.schema().fields()[idx].dtype != DataType::Str {
            return Err(SqlError::Bind(format!(
                "column {cref} is not a string column; IN lists are categorical"
            )));
        }
        let ontology = match self.ontologies.get(&cref.column) {
            Some(tree) => {
                for v in values {
                    if tree.node(v).is_none() {
                        return Err(SqlError::Bind(format!(
                            "value {v:?} is not in the ontology registered for {}",
                            cref.column
                        )));
                    }
                }
                Arc::clone(tree)
            }
            None => {
                // Synthesise a flat taxonomy over the column's distinct
                // values: one roll-up relaxes to "anything".
                let mut distinct: BTreeSet<String> = BTreeSet::new();
                let column = table.column(idx);
                for row in 0..table.num_rows() {
                    if let Some(s) = column.get_str(row) {
                        distinct.insert(s.to_string());
                    }
                }
                for v in values {
                    distinct.insert(v.clone());
                }
                let mut tree = OntologyTree::new(format!("any_{}", cref.column));
                let root = tree.root();
                for v in distinct {
                    tree.add_child(root, v)
                        .map_err(|e| SqlError::Bind(e.to_string()))?;
                }
                Arc::new(tree)
            }
        };
        let mut p = Predicate::categorical(cref, ontology, values.to_vec());
        if norefine {
            p = p.no_refine();
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use acq_engine::{Field, TableBuilder, Value};
    use acq_query::PredFunction;

    fn catalog() -> Catalog {
        let mut users = TableBuilder::new(
            "users",
            vec![
                Field::new("age", DataType::Int),
                Field::new("income", DataType::Float),
                Field::new("city", DataType::Str),
            ],
        )
        .unwrap();
        for i in 0..50 {
            users.push_row(vec![
                Value::Int(13 + (i % 60)),
                Value::Float(10_000.0 + i as f64 * 1000.0),
                Value::from(if i % 2 == 0 { "Boston" } else { "Miami" }),
            ]);
        }
        let mut orders = TableBuilder::new(
            "orders",
            vec![
                Field::new("uid", DataType::Int),
                Field::new("total", DataType::Float),
            ],
        )
        .unwrap();
        for i in 0..50 {
            orders.push_row(vec![Value::Int(i), Value::Float(i as f64 * 2.0)]);
        }
        let mut cat = Catalog::new();
        cat.register(users.finish().unwrap()).unwrap();
        cat.register(orders.finish().unwrap()).unwrap();
        cat
    }

    fn bind(sql: &str) -> Result<AcqQuery, SqlError> {
        let cat = catalog();
        let ast = parse(sql)?;
        Binder::new(&cat).bind(&ast)
    }

    #[test]
    fn binds_one_sided_predicates_with_domains() {
        let q = bind("SELECT * FROM users CONSTRAINT COUNT(*) = 30 WHERE income < 20000").unwrap();
        assert_eq!(q.dims(), 1);
        let p = &q.predicates[0];
        assert_eq!(p.refine, RefineSide::Upper);
        assert_eq!(p.interval.hi(), 20_000.0);
        assert_eq!(p.interval.lo(), 10_000.0); // domain minimum
        assert!(p.domain.is_some());
    }

    #[test]
    fn range_splits_into_two_predicates() {
        let q = bind("SELECT * FROM users CONSTRAINT COUNT(*) = 30 WHERE 25 <= age <= 35").unwrap();
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(q.predicates[0].refine, RefineSide::Lower);
        assert_eq!(q.predicates[1].refine, RefineSide::Upper);
        assert_eq!(q.predicates[0].interval.lo(), 25.0);
        assert_eq!(q.predicates[1].interval.hi(), 35.0);
    }

    #[test]
    fn norefine_equijoin_is_structural() {
        let q = bind(
            "SELECT * FROM users, orders CONSTRAINT COUNT(*) = 30 \
             WHERE (age = uid) NOREFINE AND income < 20000",
        )
        .unwrap();
        assert_eq!(q.structural_joins.len(), 1);
        assert_eq!(q.dims(), 1);
    }

    #[test]
    fn refinable_equijoin_is_a_band_predicate() {
        let q = bind(
            "SELECT * FROM users, orders CONSTRAINT COUNT(*) = 30 \
             WHERE age = uid AND income < 20000",
        )
        .unwrap();
        assert!(q.structural_joins.is_empty());
        assert_eq!(q.dims(), 2);
        assert!(matches!(
            q.predicates[0].func,
            PredFunction::JoinDelta { .. }
        ));
    }

    #[test]
    fn in_list_synthesises_flat_ontology() {
        let q = bind(
            "SELECT * FROM users CONSTRAINT COUNT(*) = 30 \
             WHERE city IN ('Boston') AND income < 20000",
        )
        .unwrap();
        let PredFunction::Categorical {
            ontology, accepted, ..
        } = &q.predicates[0].func
        else {
            panic!("expected categorical");
        };
        assert_eq!(accepted, &vec!["Boston".to_string()]);
        assert!(ontology.node("Miami").is_some());
        assert_eq!(ontology.height(), 1);
    }

    #[test]
    fn registered_ontology_is_used_and_validated() {
        let cat = catalog();
        let tree = Arc::new(OntologyTree::sample_cuisine());
        let binder = Binder::new(&cat).with_ontology("city", Arc::clone(&tree));
        let ast =
            parse("SELECT * FROM users CONSTRAINT COUNT(*) = 30 WHERE city IN ('Gyro')").unwrap();
        let q = binder.bind(&ast).unwrap();
        let PredFunction::Categorical { ontology, .. } = &q.predicates[0].func else {
            panic!("expected categorical");
        };
        assert_eq!(ontology.height(), 3);

        let bad =
            parse("SELECT * FROM users CONSTRAINT COUNT(*) = 30 WHERE city IN ('Pizza')").unwrap();
        assert!(matches!(binder.bind(&bad), Err(SqlError::Bind(_))));
    }

    #[test]
    fn stddev_rejected_with_osp_message() {
        let e =
            bind("SELECT * FROM users CONSTRAINT STDDEV(income) = 5 WHERE age < 30").unwrap_err();
        match e {
            SqlError::Query(AcqError::UnsupportedAggregate(msg)) => {
                assert!(msg.contains("optimal substructure"), "{msg}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ambiguous_and_unknown_columns() {
        let e =
            bind("SELECT * FROM users, orders CONSTRAINT COUNT(*) = 5 WHERE nope < 3").unwrap_err();
        assert!(matches!(e, SqlError::Bind(msg) if msg.contains("not found")));
        let e =
            bind("SELECT * FROM users CONSTRAINT COUNT(*) = 5 WHERE orders.total < 3").unwrap_err();
        assert!(matches!(e, SqlError::Bind(msg) if msg.contains("FROM clause")));
    }

    #[test]
    fn string_column_rejected_in_numeric_predicate() {
        let e = bind("SELECT * FROM users CONSTRAINT COUNT(*) = 5 WHERE city < 3").unwrap_err();
        assert!(matches!(e, SqlError::Bind(msg) if msg.contains("not numeric")));
    }

    #[test]
    fn numeric_equality_binds_point_interval() {
        let q =
            bind("SELECT * FROM users CONSTRAINT COUNT(*) = 5 WHERE age = 30 AND income < 20000")
                .unwrap();
        assert_eq!(q.predicates[0].interval, Interval::point(30.0));
        assert_eq!(q.predicates[0].width_basis(), 100.0);
    }

    #[test]
    fn flipped_literal_comparison() {
        let q = bind("SELECT * FROM users CONSTRAINT COUNT(*) = 5 WHERE 20000 > income").unwrap();
        assert_eq!(q.predicates[0].refine, RefineSide::Upper);
        assert_eq!(q.predicates[0].interval.hi(), 20_000.0);
    }
}

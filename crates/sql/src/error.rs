//! Frontend errors.

use std::fmt;

use acq_engine::EngineError;
use acq_query::AcqError;

/// A lexing/parsing error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(offset: usize, message: impl Into<String>) -> Self {
        Self {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Any error surfaced while compiling ACQ SQL text into an executable query.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SqlError {
    /// The text failed to lex/parse.
    Parse(ParseError),
    /// A name failed to resolve or a clause is semantically invalid.
    Bind(String),
    /// Catalog access failed.
    Engine(EngineError),
    /// The bound query failed [`acq_query::AcqQuery::validate`].
    Query(AcqError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse(e) => write!(f, "{e}"),
            Self::Bind(msg) => write!(f, "bind error: {msg}"),
            Self::Engine(e) => write!(f, "catalog error: {e}"),
            Self::Query(e) => write!(f, "invalid query: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<ParseError> for SqlError {
    fn from(e: ParseError) -> Self {
        Self::Parse(e)
    }
}

impl From<EngineError> for SqlError {
    fn from(e: EngineError) -> Self {
        Self::Engine(e)
    }
}

impl From<AcqError> for SqlError {
    fn from(e: AcqError) -> Self {
        Self::Query(e)
    }
}

//! Tokenizer for the ACQ SQL dialect.

use crate::error::ParseError;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword or identifier (keywords are recognised case-insensitively by
    /// the parser; the original spelling is preserved).
    Ident(String),
    /// Numeric literal, with `K`/`M`/`B` suffixes already applied.
    Number(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

/// A token with its source offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the token start.
    pub offset: usize,
}

/// Tokenizes `input`.
pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            '{' => {
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    offset: start,
                });
                i += 1;
            }
            '}' => {
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                // A leading-dot float like `.5` or a qualifier dot.
                if i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
                    let (n, len) = lex_number(&input[i..], start)?;
                    tokens.push(Token {
                        kind: TokenKind::Number(n),
                        offset: start,
                    });
                    i += len;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Dot,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset: start,
                });
                i += 1;
            }
            ';' => {
                i += 1; // trailing statement terminator is ignored
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: start,
                });
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '\'' => {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError::new(start, "unterminated string literal"));
                }
                tokens.push(Token {
                    kind: TokenKind::Str(input[i + 1..j].to_string()),
                    offset: start,
                });
                i = j + 1;
            }
            '0'..='9' => {
                let (n, len) = lex_number(&input[i..], start)?;
                tokens.push(Token {
                    kind: TokenKind::Number(n),
                    offset: start,
                });
                i += len;
            }
            '-' => {
                // Negative numeric literal.
                if i + 1 < bytes.len() && (bytes[i + 1].is_ascii_digit() || bytes[i + 1] == b'.') {
                    let (n, len) = lex_number(&input[i + 1..], start + 1)?;
                    tokens.push(Token {
                        kind: TokenKind::Number(-n),
                        offset: start,
                    });
                    i += 1 + len;
                } else {
                    return Err(ParseError::new(start, "unexpected '-'"));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[i..j].to_string()),
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(ParseError::new(
                    start,
                    format!("unexpected character {other:?}"),
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

/// Lexes a number with optional decimal part, exponent, and `K`/`M`/`B`
/// magnitude suffix (`0.1M` = 100,000 as in the paper's Q2'). Returns the
/// value and consumed byte length.
fn lex_number(s: &str, offset: usize) -> Result<(f64, usize), ParseError> {
    let bytes = s.as_bytes();
    let mut j = 0usize;
    while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'.') {
        j += 1;
    }
    // Exponent.
    if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
        let mut k = j + 1;
        if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
            k += 1;
        }
        if k < bytes.len() && bytes[k].is_ascii_digit() {
            j = k;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
        }
    }
    let base: f64 = s[..j]
        .parse()
        .map_err(|_| ParseError::new(offset, format!("invalid number {:?}", &s[..j])))?;
    // Magnitude suffix.
    let mut len = j;
    let mut value = base;
    if j < bytes.len() {
        let suffix = (bytes[j] as char).to_ascii_uppercase();
        let next_is_word = j + 1 < bytes.len()
            && ((bytes[j + 1] as char).is_ascii_alphanumeric() || bytes[j + 1] == b'_');
        if !next_is_word {
            match suffix {
                'K' => {
                    value = base * 1e3;
                    len = j + 1;
                }
                'M' => {
                    value = base * 1e6;
                    len = j + 1;
                }
                'B' => {
                    value = base * 1e9;
                    len = j + 1;
                }
                _ => {}
            }
        }
    }
    Ok((value, len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        tokenize(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("SELECT * FROM t"),
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Star,
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a <= 1 >= < >"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Le,
                TokenKind::Number(1.0),
                TokenKind::Ge,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn magnitude_suffixes() {
        assert_eq!(kinds("1M"), vec![TokenKind::Number(1e6), TokenKind::Eof]);
        assert_eq!(kinds("0.1M"), vec![TokenKind::Number(1e5), TokenKind::Eof]);
        assert_eq!(
            kinds("25k"),
            vec![TokenKind::Number(25_000.0), TokenKind::Eof]
        );
        assert_eq!(kinds("2B"), vec![TokenKind::Number(2e9), TokenKind::Eof]);
        // A suffix followed by more word characters is part of an identifier
        // boundary problem; `1Max` is not `1M ax`.
        let t = tokenize("1Max").unwrap();
        assert_eq!(t[0].kind, TokenKind::Number(1.0));
        assert_eq!(t[1].kind, TokenKind::Ident("Max".into()));
    }

    #[test]
    fn strings_and_lists() {
        assert_eq!(
            kinds("('Boston', 'New York')"),
            vec![
                TokenKind::LParen,
                TokenKind::Str("Boston".into()),
                TokenKind::Comma,
                TokenKind::Str("New York".into()),
                TokenKind::RParen,
                TokenKind::Eof
            ]
        );
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn qualified_names_and_floats() {
        assert_eq!(
            kinds("a.b 1.5 .5"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Dot,
                TokenKind::Ident("b".into()),
                TokenKind::Number(1.5),
                TokenKind::Number(0.5),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn negative_numbers_and_exponents() {
        assert_eq!(kinds("-2.5"), vec![TokenKind::Number(-2.5), TokenKind::Eof]);
        assert_eq!(
            kinds("1e3"),
            vec![TokenKind::Number(1000.0), TokenKind::Eof]
        );
        assert_eq!(kinds("2E-2"), vec![TokenKind::Number(0.02), TokenKind::Eof]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("a @ b").is_err());
        assert!(tokenize("a - b").is_err());
    }

    #[test]
    fn semicolon_ignored() {
        assert_eq!(
            kinds("a;"),
            vec![TokenKind::Ident("a".into()), TokenKind::Eof]
        );
    }
}

//! # acq-sql — the ACQ SQL extension frontend
//!
//! The paper encodes ACQs with two new keywords (§2.1):
//!
//! ```sql
//! SELECT * FROM Table1, Table2 ...
//! CONSTRAINT AGG(attribute) Op X
//! WHERE Predicate1 AND Predicate2 ...
//!   AND Predicate_i NOREFINE AND ... Predicate_n NOREFINE
//! ```
//!
//! This crate parses that dialect — including the paper's Q1' and Q2'
//! examples verbatim — and binds the result against an engine catalog into
//! an executable [`acq_query::AcqQuery`]:
//!
//! * numeric comparisons (`p_retailprice < 1000`), equalities
//!   (`p_size = 10`), and two-sided ranges (`25 <= age <= 35`, rewritten
//!   into two one-sided predicates per §2.2);
//! * equi-joins (`s_suppkey = ps_suppkey`), NOREFINE (structural) or
//!   refinable (band-refined per §2.4), with linear scaling
//!   (`2*A.x = 3*B.x`);
//! * `IN` lists and string equality over categorical columns, scored via a
//!   registered ontology (§7.3) or a synthesised flat taxonomy;
//! * numeric literals with `K`/`M`/`B` suffixes (`COUNT(*) = 1M`);
//! * aggregate names validated for the optimal substructure property
//!   (`STDDEV` is rejected with the §2.6 explanation).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod ast;
mod binder;
mod error;
mod lexer;
mod parser;

pub use ast::{AstClause, AstConstraint, AstPred, AstQuery, Operand, QualCol};
pub use binder::Binder;
pub use error::{ParseError, SqlError};
pub use lexer::{tokenize, Token, TokenKind};
pub use parser::parse;

use acq_engine::Catalog;
use acq_query::AcqQuery;

/// One-shot convenience: parse `sql` and bind it against `catalog` with
/// default binder settings.
///
/// ```
/// use acq_engine::{Catalog, DataType, Field, TableBuilder, Value};
/// use acq_sql::compile;
///
/// let mut b = TableBuilder::new("users", vec![
///     Field::new("age", DataType::Int),
///     Field::new("income", DataType::Float),
/// ])?;
/// b.push_row(vec![Value::Int(30), Value::Float(50_000.0)]);
/// b.push_row(vec![Value::Int(55), Value::Float(90_000.0)]);
/// let mut catalog = Catalog::new();
/// catalog.register(b.finish()?)?;
///
/// let q = compile(
///     "SELECT * FROM users CONSTRAINT COUNT(*) = 1K \
///      WHERE 25 <= age <= 35 AND income <= 60000",
///     &catalog,
/// )?;
/// assert_eq!(q.constraint.target, 1_000.0);
/// assert_eq!(q.dims(), 3); // the range splits into two one-sided predicates
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile(sql: &str, catalog: &Catalog) -> Result<AcqQuery, SqlError> {
    let ast = parse(sql)?;
    Binder::new(catalog).bind(&ast)
}

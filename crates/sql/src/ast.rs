//! Abstract syntax of the ACQ SQL dialect.

use acq_query::CmpOp;

/// A possibly table-qualified column name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualCol {
    /// Optional table qualifier.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl QualCol {
    /// Unqualified column.
    #[must_use]
    pub fn bare(column: impl Into<String>) -> Self {
        Self {
            table: None,
            column: column.into(),
        }
    }

    /// Qualified column.
    #[must_use]
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        Self {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

/// A comparison operand: a number or a (scaled) column.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// Numeric literal.
    Num(f64),
    /// `scale * column` (scale 1.0 for a bare column).
    Col {
        /// Multiplicative coefficient.
        scale: f64,
        /// The column.
        col: QualCol,
    },
}

/// One WHERE-clause predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum AstPred {
    /// `left op right` where at least one side references a column.
    Cmp {
        /// Left operand.
        left: Operand,
        /// Comparison operator as written.
        op: CmpOp,
        /// Right operand.
        right: Operand,
    },
    /// A two-sided range `lo lop col rop hi` (e.g. `25 <= age <= 35`).
    Range {
        /// Lower literal.
        lo: f64,
        /// The column.
        col: QualCol,
        /// Upper literal.
        hi: f64,
    },
    /// `col IN ('a', 'b', ...)` or `col IN {'a', ...}` over strings.
    InList {
        /// The (categorical) column.
        col: QualCol,
        /// Accepted values.
        values: Vec<String>,
    },
    /// `col = 'str'` string equality (singleton categorical).
    StrEq {
        /// The column.
        col: QualCol,
        /// Accepted value.
        value: String,
    },
}

/// A predicate together with its NOREFINE flag.
#[derive(Debug, Clone, PartialEq)]
pub struct AstClause {
    /// The predicate.
    pub pred: AstPred,
    /// Whether the predicate is marked NOREFINE.
    pub norefine: bool,
}

/// The `CONSTRAINT AGG(attr) Op X` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct AstConstraint {
    /// Aggregate function name as written (validated by the binder).
    pub func: String,
    /// Aggregated column, `None` for `AGG(*)`.
    pub col: Option<QualCol>,
    /// Comparison operator.
    pub op: CmpOp,
    /// Target value `X`.
    pub target: f64,
}

/// A parsed ACQ statement.
#[derive(Debug, Clone, PartialEq)]
pub struct AstQuery {
    /// FROM-clause tables.
    pub tables: Vec<String>,
    /// The aggregate constraint.
    pub constraint: AstConstraint,
    /// WHERE-clause predicates.
    pub clauses: Vec<AstClause>,
}

//! Recursive-descent parser for the ACQ SQL dialect (§2.1).

use acq_query::CmpOp;

use crate::ast::{AstClause, AstConstraint, AstPred, AstQuery, Operand, QualCol};
use crate::error::ParseError;
use crate::lexer::{tokenize, Token, TokenKind};

/// Parses one ACQ statement.
pub fn parse(input: &str) -> Result<AstQuery, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.peek().offset, msg)
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.is_keyword(kw) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        match self.peek().kind {
            TokenKind::Number(n) => {
                self.bump();
                Ok(n)
            }
            ref other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if &self.peek().kind == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {kind:?}, found {:?}", self.peek().kind)))
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input: {:?}", self.peek().kind)))
        }
    }

    // query := SELECT * FROM table (, table)* [CONSTRAINT agg] [WHERE conj]
    //        | SELECT * FROM ... WHERE ... (CONSTRAINT may precede WHERE)
    fn query(&mut self) -> Result<AstQuery, ParseError> {
        self.keyword("SELECT")?;
        self.expect(&TokenKind::Star)?;
        self.keyword("FROM")?;
        let mut tables = vec![self.ident()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            tables.push(self.ident()?);
        }
        let constraint = if self.is_keyword("CONSTRAINT") {
            self.bump();
            self.constraint()?
        } else {
            return Err(self.err("an ACQ requires a CONSTRAINT clause"));
        };
        let mut clauses = Vec::new();
        if self.is_keyword("WHERE") {
            self.bump();
            clauses.push(self.clause()?);
            while self.is_keyword("AND") {
                self.bump();
                clauses.push(self.clause()?);
            }
        }
        Ok(AstQuery {
            tables,
            constraint,
            clauses,
        })
    }

    // constraint := IDENT '(' ('*' | qualcol) ')' cmp number
    fn constraint(&mut self) -> Result<AstConstraint, ParseError> {
        let func = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let col = if self.peek().kind == TokenKind::Star {
            self.bump();
            None
        } else {
            Some(self.qualcol()?)
        };
        self.expect(&TokenKind::RParen)?;
        let op = self.cmp_op()?;
        let target = self.number()?;
        Ok(AstConstraint {
            func,
            col,
            op,
            target,
        })
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let op = match self.peek().kind {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Ge => CmpOp::Ge,
            TokenKind::Gt => CmpOp::Gt,
            ref other => return Err(self.err(format!("expected comparison, found {other:?}"))),
        };
        self.bump();
        Ok(op)
    }

    fn qualcol(&mut self) -> Result<QualCol, ParseError> {
        let first = self.ident()?;
        if self.peek().kind == TokenKind::Dot {
            self.bump();
            let col = self.ident()?;
            Ok(QualCol::qualified(first, col))
        } else {
            Ok(QualCol::bare(first))
        }
    }

    // clause := [ '(' ] pred [ ')' ] [NOREFINE]
    fn clause(&mut self) -> Result<AstClause, ParseError> {
        let parenthesised = self.peek().kind == TokenKind::LParen;
        if parenthesised {
            self.bump();
        }
        let pred = self.pred()?;
        if parenthesised {
            self.expect(&TokenKind::RParen)?;
        }
        let norefine = if self.is_keyword("NOREFINE") {
            self.bump();
            true
        } else {
            false
        };
        Ok(AstClause { pred, norefine })
    }

    // operand := number | [number '*'] qualcol
    fn operand(&mut self) -> Result<Operand, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Number(n) => {
                self.bump();
                if self.peek().kind == TokenKind::Star {
                    self.bump();
                    let col = self.qualcol()?;
                    Ok(Operand::Col { scale: n, col })
                } else {
                    Ok(Operand::Num(n))
                }
            }
            TokenKind::Ident(_) => Ok(Operand::Col {
                scale: 1.0,
                col: self.qualcol()?,
            }),
            other => Err(self.err(format!("expected operand, found {other:?}"))),
        }
    }

    // pred := operand cmp operand [cmp operand]      (range form)
    //       | qualcol IN list
    //       | qualcol '=' string
    fn pred(&mut self) -> Result<AstPred, ParseError> {
        let left = self.operand()?;
        // IN-list?
        if let Operand::Col { scale, col } = &left {
            if self.is_keyword("IN") {
                if (*scale - 1.0).abs() > f64::EPSILON {
                    return Err(self.err("IN lists cannot be scaled"));
                }
                self.bump();
                let values = self.string_list()?;
                return Ok(AstPred::InList {
                    col: col.clone(),
                    values,
                });
            }
        }
        let op = self.cmp_op()?;
        // String equality?
        if let TokenKind::Str(s) = self.peek().kind.clone() {
            let Operand::Col { scale, col } = &left else {
                return Err(self.err("string comparison requires a column on the left"));
            };
            if op != CmpOp::Eq || (*scale - 1.0).abs() > f64::EPSILON {
                return Err(self.err("strings only support unscaled equality"));
            }
            self.bump();
            return Ok(AstPred::StrEq {
                col: col.clone(),
                value: s,
            });
        }
        let right = self.operand()?;
        // Range form: number cmp col cmp number.
        if matches!(
            self.peek().kind,
            TokenKind::Le | TokenKind::Lt | TokenKind::Ge | TokenKind::Gt
        ) {
            let op2 = self.cmp_op()?;
            let third = self.operand()?;
            let (Operand::Num(lo), Operand::Col { scale, col }, Operand::Num(hi)) =
                (&left, &right, &third)
            else {
                return Err(self.err("range predicates must be `number op column op number`"));
            };
            if (*scale - 1.0).abs() > f64::EPSILON {
                return Err(self.err("range predicates cannot scale the column"));
            }
            let ascending = matches!(op, CmpOp::Le | CmpOp::Lt);
            let ascending2 = matches!(op2, CmpOp::Le | CmpOp::Lt);
            if ascending != ascending2 {
                return Err(self.err("range predicate bounds must point the same way"));
            }
            let (lo, hi) = if ascending { (*lo, *hi) } else { (*hi, *lo) };
            if lo > hi {
                return Err(self.err(format!("empty range: {lo} > {hi}")));
            }
            return Ok(AstPred::Range {
                lo,
                col: col.clone(),
                hi,
            });
        }
        Ok(AstPred::Cmp { left, op, right })
    }

    // list := '(' str (, str)* ')' | '{' str (, str)* '}'
    fn string_list(&mut self) -> Result<Vec<String>, ParseError> {
        let close = match self.peek().kind {
            TokenKind::LParen => TokenKind::RParen,
            TokenKind::LBrace => TokenKind::RBrace,
            ref other => return Err(self.err(format!("expected '(' or '{{', found {other:?}"))),
        };
        self.bump();
        let mut values = Vec::new();
        loop {
            match self.peek().kind.clone() {
                TokenKind::Str(s) => {
                    values.push(s);
                    self.bump();
                }
                other => return Err(self.err(format!("expected string, found {other:?}"))),
            }
            if self.peek().kind == TokenKind::Comma {
                self.bump();
                continue;
            }
            break;
        }
        self.expect(&close)?;
        if values.is_empty() {
            return Err(self.err("IN list must not be empty"));
        }
        Ok(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_query() {
        let q = parse("SELECT * FROM t CONSTRAINT COUNT(*) = 100 WHERE x < 10").unwrap();
        assert_eq!(q.tables, vec!["t"]);
        assert_eq!(q.constraint.func, "COUNT");
        assert_eq!(q.constraint.col, None);
        assert_eq!(q.constraint.op, CmpOp::Eq);
        assert_eq!(q.constraint.target, 100.0);
        assert_eq!(q.clauses.len(), 1);
        assert!(!q.clauses[0].norefine);
    }

    #[test]
    fn parses_the_papers_q2_prime() {
        let q = parse(
            "SELECT * FROM supplier, part, partsupp \
             CONSTRAINT SUM(ps_availqty) >= 0.1M \
             WHERE (s_suppkey = ps_suppkey) NOREFINE AND \
             (p_partkey = ps_partkey) NOREFINE AND \
             (p_retailprice < 1000) AND (s_acctbal < 2000) \
             AND (p_size = 10) NOREFINE AND \
             (p_type = 'SMALL BURNISHED STEEL') NOREFINE",
        )
        .unwrap();
        assert_eq!(q.tables, vec!["supplier", "part", "partsupp"]);
        assert_eq!(q.constraint.func, "SUM");
        assert_eq!(q.constraint.target, 100_000.0);
        assert_eq!(q.constraint.op, CmpOp::Ge);
        assert_eq!(q.clauses.len(), 6);
        let norefines: Vec<bool> = q.clauses.iter().map(|c| c.norefine).collect();
        assert_eq!(norefines, vec![true, true, false, false, true, true]);
        assert!(matches!(
            q.clauses[5].pred,
            AstPred::StrEq { ref value, .. } if value == "SMALL BURNISHED STEEL"
        ));
    }

    #[test]
    fn parses_ranges_both_directions() {
        let q =
            parse("SELECT * FROM users CONSTRAINT COUNT(*) = 1M WHERE 25 <= age <= 35").unwrap();
        assert_eq!(
            q.clauses[0].pred,
            AstPred::Range {
                lo: 25.0,
                col: QualCol::bare("age"),
                hi: 35.0
            }
        );
        let q2 =
            parse("SELECT * FROM users CONSTRAINT COUNT(*) = 1M WHERE 35 >= age >= 25").unwrap();
        assert_eq!(q.clauses[0].pred, q2.clauses[0].pred);
    }

    #[test]
    fn parses_in_lists_and_scaled_joins() {
        let q = parse(
            "SELECT * FROM u CONSTRAINT COUNT(*) = 10 WHERE \
             location IN ('Boston', 'Miami') NOREFINE AND 2*a.x = 3*b.x",
        )
        .unwrap();
        assert!(matches!(&q.clauses[0].pred, AstPred::InList { values, .. } if values.len() == 2));
        assert!(q.clauses[0].norefine);
        match &q.clauses[1].pred {
            AstPred::Cmp {
                left: Operand::Col { scale: l, .. },
                op: CmpOp::Eq,
                right: Operand::Col { scale: r, .. },
            } => {
                assert_eq!((*l, *r), (2.0, 3.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn brace_lists_match_the_paper() {
        let q = parse(
            "SELECT * FROM u CONSTRAINT COUNT(*) = 10 WHERE interests IN {'Retail', 'Shopping'} NOREFINE",
        )
        .unwrap();
        assert!(matches!(&q.clauses[0].pred, AstPred::InList { values, .. } if values.len() == 2));
    }

    #[test]
    fn requires_constraint_clause() {
        let e = parse("SELECT * FROM t WHERE x < 1").unwrap_err();
        assert!(e.message.contains("CONSTRAINT"));
    }

    #[test]
    fn rejects_mixed_range_directions() {
        assert!(parse("SELECT * FROM t CONSTRAINT COUNT(*) = 1 WHERE 1 <= x >= 0").is_err());
        assert!(parse("SELECT * FROM t CONSTRAINT COUNT(*) = 1 WHERE 5 <= x <= 2").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("SELECT * FROM t CONSTRAINT COUNT(*) = 1 WHERE x < 1 x").is_err());
    }

    #[test]
    fn tolerates_trailing_semicolon() {
        assert!(parse("SELECT * FROM t CONSTRAINT COUNT(*) = 1 WHERE x < 1;").is_ok());
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot fetch crates, so this implements the API
//! subset the workspace's property tests use: the [`proptest!`] macro,
//! range/tuple/collection/string strategies, `prop_assert*` / `prop_assume!`,
//! [`test_runner::ProptestConfig`], `prop::sample`, and
//! [`string::string_regex`] for the two regex shapes the tests rely on.
//!
//! Differences from upstream: **no shrinking** (a failing case reports its
//! inputs and seed instead of a minimised counterexample), and case
//! generation is deterministic per test name, so failures reproduce without
//! a persistence file (`.proptest-regressions` files are ignored).

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating random values of one type.
    ///
    /// `generate` returns `None` when the underlying recipe rejected the
    /// draw (e.g. a `prop_filter` that never matched); the runner retries
    /// the whole case.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Option<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keeps only values for which `pred` holds (bounded retries).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                pred,
                whence,
            }
        }

        /// Chains a dependent strategy derived from each generated value.
        fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> Option<O> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug)]
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            let _ = self.whence;
            for _ in 0..64 {
                if let Some(v) = self.inner.generate(rng) {
                    if (self.pred)(&v) {
                        return Some(v);
                    }
                }
            }
            None
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
        type Value = O::Value;
        fn generate(&self, rng: &mut StdRng) -> Option<O::Value> {
            let mid = self.inner.generate(rng)?;
            (self.f)(mid).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    impl<T> Strategy for core::ops::Range<T>
    where
        T: rand::SampleUniform + Copy,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> Option<T> {
            Some(rng.gen_range(self.clone()))
        }
    }

    impl<T> Strategy for core::ops::RangeInclusive<T>
    where
        T: rand::SampleUniform + Copy,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> Option<T> {
            Some(rng.gen_range(self.clone()))
        }
    }

    /// String literals are regex strategies (`s in "[a-z]{1,5}"`).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> Option<String> {
            let strat = crate::string::string_regex(self)
                .unwrap_or_else(|e| panic!("invalid inline regex strategy {self:?}: {e:?}"));
            strat.generate(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
                    let ($($s,)+) = self;
                    $(let $v = $s.generate(rng)?;)+
                    Some(($($v,)+))
                }
            }
        };
    }
    tuple_strategy!(A / a);
    tuple_strategy!(A / a, B / b);
    tuple_strategy!(A / a, B / b, C / c);
    tuple_strategy!(A / a, B / b, C / c, D / d);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
}

pub mod arbitrary {
    //! `any::<T>()` — default strategies per type.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical default strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's default distribution.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    /// The default strategy for `T`.
    #[derive(Debug)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// The strategy generating [`Arbitrary`] values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> Option<T> {
            Some(T::arbitrary(rng))
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen()
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    // Mix full-range draws with small values and edges, which
                    // find boundary bugs far more often than uniform draws.
                    match rng.gen_range(0..10u32) {
                        0 => 0,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        3..=5 => rng.gen_range(0..100u32) as $t,
                        _ => rng.gen(),
                    }
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! arb_float {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    // Finite values only, like upstream's default f64 strategy.
                    match rng.gen_range(0..8u32) {
                        0 => 0.0,
                        1 => -1.0,
                        2 => 1.0,
                        3 => rng.gen_range(-1.0..1.0),
                        4 => rng.gen_range(-1.0e12..1.0e12),
                        _ => rng.gen_range(-1.0e6..1.0e6),
                    }
                }
            }
        )*};
    }
    arb_float!(f32, f64);

    impl Arbitrary for char {
        fn arbitrary(rng: &mut StdRng) -> Self {
            crate::string::printable_char(rng)
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            crate::sample::Index::new(rng.gen())
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// An inclusive-exclusive element-count range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// See [`vec`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
            let n = rng.gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helpers (`prop::sample`).

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A length-agnostic index: resolved against a concrete collection
    /// length with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(usize);

    impl Index {
        pub(crate) fn new(raw: usize) -> Self {
            Self(raw)
        }

        /// This index resolved against a collection of `len` elements.
        ///
        /// Panics if `len` is zero, like upstream.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            self.0 % len
        }
    }

    /// See [`select`].
    #[derive(Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniformly selects one of `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> Option<T> {
            Some(self.options[rng.gen_range(0..self.options.len())].clone())
        }
    }
}

pub mod string {
    //! String-from-regex strategies for the pattern subset the tests use:
    //! literal characters, `[...]` classes (with ranges), `\PC` / `\p{..}`
    //! printable-character escapes, and `{m}` / `{m,n}` repetitions.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Regex could not be interpreted by this subset implementation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    #[derive(Debug, Clone)]
    enum Atom {
        /// A fixed character.
        Literal(char),
        /// One of an explicit alternative set (from `[...]`).
        Class(Vec<(char, char)>),
        /// Any printable (non-control) character (`\PC`).
        Printable,
    }

    /// See [`string_regex`].
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        atoms: Vec<(Atom, usize, usize)>,
    }

    /// Builds a strategy generating strings matching `pattern` (subset: no
    /// alternation, groups, or anchors).
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut atoms = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '\\' => match chars.next() {
                    Some('P') | Some('p') => {
                        // \PC / \p{..}: consume an optional one-letter or
                        // braced category; generate printable characters.
                        match chars.peek() {
                            Some('{') => {
                                for c in chars.by_ref() {
                                    if c == '}' {
                                        break;
                                    }
                                }
                            }
                            Some(_) => {
                                chars.next();
                            }
                            None => return Err(Error("dangling \\P".into())),
                        }
                        Atom::Printable
                    }
                    Some('n') => Atom::Literal('\n'),
                    Some('t') => Atom::Literal('\t'),
                    Some('r') => Atom::Literal('\r'),
                    Some(e) => Atom::Literal(e),
                    None => return Err(Error("dangling backslash".into())),
                },
                '[' => {
                    let mut ranges = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let Some(c) = chars.next() else {
                            return Err(Error("unterminated character class".into()));
                        };
                        match c {
                            ']' => break,
                            '\\' => {
                                let Some(e) = chars.next() else {
                                    return Err(Error("dangling backslash in class".into()));
                                };
                                if let Some(p) = prev.take() {
                                    ranges.push((p, p));
                                }
                                prev = Some(e);
                            }
                            '-' if prev.is_some() && chars.peek() != Some(&']') => {
                                let lo = prev.take().expect("checked");
                                let Some(hi) = chars.next() else {
                                    return Err(Error("unterminated range".into()));
                                };
                                if hi < lo {
                                    return Err(Error(format!("inverted range {lo}-{hi}")));
                                }
                                ranges.push((lo, hi));
                            }
                            c => {
                                if let Some(p) = prev.take() {
                                    ranges.push((p, p));
                                }
                                prev = Some(c);
                            }
                        }
                    }
                    if let Some(p) = prev.take() {
                        ranges.push((p, p));
                    }
                    if ranges.is_empty() {
                        return Err(Error("empty character class".into()));
                    }
                    Atom::Class(ranges)
                }
                '.' => Atom::Printable,
                c => Atom::Literal(c),
            };
            // Optional repetition.
            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    let parse = |s: &str| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|e| Error(format!("bad repetition {spec:?}: {e}")))
                    };
                    match spec.split_once(',') {
                        Some((a, b)) => (parse(a)?, parse(b)?),
                        None => {
                            let n = parse(&spec)?;
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, 16)
                }
                Some('+') => {
                    chars.next();
                    (1, 16)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            atoms.push((atom, lo, hi));
        }
        Ok(RegexGeneratorStrategy { atoms })
    }

    /// A printable (non-control) character: mostly ASCII, sometimes wider
    /// unicode, mirroring upstream's `\PC` behaviour closely enough for
    /// robustness tests.
    pub(crate) fn printable_char(rng: &mut StdRng) -> char {
        loop {
            let c = match rng.gen_range(0..10u32) {
                0..=6 => return rng.gen_range(0x20u32..0x7f) as u8 as char,
                7 => rng.gen_range(0xA0u32..0x0530),
                8 => rng.gen_range(0x4E00u32..0x9FFF),
                _ => rng.gen_range(0x1F300u32..0x1F700),
            };
            if let Some(c) = char::from_u32(c) {
                if !c.is_control() {
                    return c;
                }
            }
        }
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> Option<String> {
            let mut out = String::new();
            for (atom, lo, hi) in &self.atoms {
                let n = rng.gen_range(*lo..=*hi);
                for _ in 0..n {
                    match atom {
                        Atom::Literal(c) => out.push(*c),
                        Atom::Class(ranges) => {
                            let (a, b) = ranges[rng.gen_range(0..ranges.len())];
                            let c = rng.gen_range(a as u32..=b as u32);
                            out.push(char::from_u32(c)?);
                        }
                        Atom::Printable => out.push(printable_char(rng)),
                    }
                }
            }
            Some(out)
        }
    }
}

pub mod test_runner {
    //! Case execution: configuration, rejection bookkeeping, seeds.

    /// Runner knobs; only the fields the workspace uses are meaningful.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases each test runs.
        pub cases: u32,
        /// Cap on `prop_assume!`/filter rejections before the test errors.
        pub max_global_rejects: u32,
        /// Kept for signature compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_global_rejects: 4096,
                max_shrink_iters: 0,
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case is outside the property's domain; retried silently.
        Reject(String),
        /// The property is false for this case.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed assertion.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// A rejected assumption.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }

    /// Deterministic per-test seed (FNV-1a over the test's full path).
    #[must_use]
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

// The expansion of `proptest!` needs `rand` paths that resolve from any
// caller crate, including ones without their own `rand` dependency.
#[doc(hidden)]
pub use ::rand as __rand;

/// Generates one `#[test]` per property: runs `cases` accepted cases with
/// deterministic seeds, retrying rejected draws, panicking with the seed and
/// message on the first failing case (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __seed = $crate::test_runner::seed_for(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __accepted: u32 = 0;
            let mut __rejected: u32 = 0;
            while __accepted < __config.cases {
                __seed = __seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut __rng =
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        __seed,
                    );
                let __drawn = (|| Some(( $( ($strat).generate(&mut __rng)?, )+ )))();
                let Some(( $($arg,)+ )) = __drawn else {
                    __rejected += 1;
                    assert!(
                        __rejected <= __config.max_global_rejects,
                        "{}: too many rejected cases ({})",
                        stringify!($name),
                        __rejected
                    );
                    continue;
                };
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                match __outcome {
                    Ok(()) => __accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                        assert!(
                            __rejected <= __config.max_global_rejects,
                            "{}: too many rejected cases ({})",
                            stringify!($name),
                            __rejected
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest case failed: {}\n(test {}, seed {:#x}, case {})",
                            __msg,
                            stringify!($name),
                            __seed,
                            __accepted
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*))
            );
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` == `{:?}`", __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)*);
    }};
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, "assertion failed: `{:?}` != `{:?}`", __a, __b);
    }};
}

/// Discards the current case (does not count towards `cases`) when the
/// assumption is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Module-style access (`prop::collection::vec`, `prop::sample::Index`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::string;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy as _;
    use rand::SeedableRng;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let s = crate::string::string_regex("[a-zA-Z ,\"'_-]{1,20}").unwrap();
        for _ in 0..200 {
            let v = s.generate(&mut rng).unwrap();
            assert!(!v.is_empty() && v.len() <= 20 * 4);
            assert!(v
                .chars()
                .all(|c| c.is_ascii_alphabetic() || " ,\"'_-".contains(c)));
        }
        let p = crate::string::string_regex("\\PC{0,200}").unwrap();
        for _ in 0..50 {
            let v = p.generate(&mut rng).unwrap();
            assert!(v.chars().count() <= 200);
            assert!(v.chars().all(|c| !c.is_control()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_patterns((a, b) in (0i64..10, 0i64..10), flip in any::<bool>()) {
            let (x, y) = if flip { (b, a) } else { (a, b) };
            prop_assert!(x < 10 && y < 10);
            prop_assert_eq!(x + y, a + b);
        }

        #[test]
        fn vectors_respect_sizes(v in prop::collection::vec(0.0f64..1.0, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn index_resolves(idx in any::<prop::sample::Index>(),
                          v in prop::collection::vec(0u8..255, 1..20)) {
            let i = idx.index(v.len());
            prop_assert!(i < v.len());
        }

        #[test]
        fn select_picks_an_option(w in prop::sample::select(vec!["a", "b", "c"])) {
            prop_assert!(["a", "b", "c"].contains(&w));
        }
    }
}

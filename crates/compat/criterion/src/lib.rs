//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot fetch crates, so this implements the
//! benchmark-harness subset the workspace's benches use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs a small fixed number of
//! timed iterations and prints mean wall-clock time — enough to execute the
//! bench targets and compare orders of magnitude, without criterion's
//! statistics, warm-up scheduling, or reports.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so `black_box` keeps working if benches import it.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_bench(&id.to_string(), 10, &mut f);
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; this harness has no target time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        iters: samples as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed / u32::try_from(b.iters.max(1)).unwrap_or(u32::MAX)
    } else {
        Duration::ZERO
    };
    eprintln!("bench {label}: {per_iter:?}/iter over {} iters", b.iters);
}

/// Passed to benchmark closures; times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh input per iteration.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`]; ignored.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name` parameterised by `parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Work-per-iteration declaration; accepted and ignored.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_function("plain", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("input", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_groups() {
        benches();
    }
}

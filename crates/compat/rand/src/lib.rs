//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! real `rand` can never be fetched. This crate implements the exact API
//! subset the workspace uses — [`Rng`], [`RngCore`], [`SeedableRng`],
//! [`rngs::StdRng`], [`rngs::SmallRng`] — on top of xoshiro256++ seeded via
//! SplitMix64. Streams are deterministic for a given seed (the property the
//! data generators rely on) but do **not** reproduce upstream `rand`'s
//! byte-for-byte output.

#![forbid(unsafe_code)]

/// Core low-level generator interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable generators (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// High-level sampling interface (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value from its standard distribution (`[0, 1)` for floats,
    /// the full range for integers, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// Panics if the range is empty, like the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} not in [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a standard (full-range / unit-interval) distribution.
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, i8 => next_u32,
              i16 => next_u32, i32 => next_u32, u64 => next_u64, i64 => next_u64,
              usize => next_u64, isize => next_u64);

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Draws from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let u = <$t as Standard>::sample(rng);
                // Clamp: rounding can land exactly on `hi` for tiny spans.
                let v = lo + (hi - lo) * u;
                if v >= hi { <$t>::max(lo, hi - (hi - lo) * <$t>::EPSILON) } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic default generator.
    ///
    /// Stands in for `rand::rngs::StdRng` (upstream: ChaCha12). Same
    /// determinism guarantee — identical seeds give identical streams — but
    /// not the same stream as upstream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; displace it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            Self { s }
        }
    }

    /// Small fast generator; same engine as [`StdRng`] here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f = rng.gen_range(0.0..100.0);
            assert!((0.0..100.0).contains(&f), "{f}");
            let i = rng.gen_range(0..25);
            assert!((0..25).contains(&i), "{i}");
            let j: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j), "{j}");
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((3_500..6_500).contains(&hits), "{hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut bins = [0u32; 10];
        for _ in 0..100_000 {
            bins[rng.gen_range(0..10usize)] += 1;
        }
        for &b in &bins {
            assert!((8_000..12_000).contains(&b), "{bins:?}");
        }
    }
}

//! End-to-end tests over a real socket: start the server on an ephemeral
//! port, speak HTTP/1.1 to it, and check the three tentpole guarantees —
//! bit-identical outcomes across thread counts with serve instrumentation
//! on, honest registry/trace reporting, and a scrapeable metrics surface.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use acq_engine::{Catalog, DataType, Field, TableBuilder, Value};
use acq_obs::json::{parse, JsonValue};
use acq_serve::{ServeConfig, Server};

fn catalog() -> Catalog {
    let mut b = TableBuilder::new(
        "t",
        vec![
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
        ],
    )
    .unwrap();
    for i in 0..3000 {
        b.push_row(vec![
            Value::Float(f64::from(i) * 0.1),
            Value::Float(f64::from(i % 150)),
        ]);
    }
    let mut cat = Catalog::new();
    cat.register(b.finish().unwrap()).unwrap();
    cat
}

const SQL: &str = "SELECT * FROM t CONSTRAINT COUNT(*) >= 800 WHERE x <= 10 AND y <= 30";

/// One blocking HTTP/1.1 exchange; returns (status, body).
fn http(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    // `Connection: close` because this helper reads to EOF; keep-alive
    // reuse is exercised by the chaos suite.
    let req = format!(
        "{method} {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn start(config: ServeConfig) -> Server {
    Server::start(config, catalog()).unwrap()
}

/// Drops the per-request volatile fields so outcome bodies compare equal
/// across requests and thread counts.
fn strip_volatile(body: &str) -> JsonValue {
    let JsonValue::Obj(mut fields) = parse(body).unwrap() else {
        panic!("outcome is not a JSON object: {body}");
    };
    for key in ["id", "duration_ms", "profile"] {
        fields.remove(key);
    }
    JsonValue::Obj(fields)
}

#[test]
fn outcomes_are_bit_identical_across_thread_counts() {
    let server = start(ServeConfig::default());
    let addr = server.addr();
    let mut baseline: Option<JsonValue> = None;
    for threads in [1usize, 2, 4, 8] {
        let body = format!("{{\"sql\":\"{SQL}\",\"threads\":{threads}}}");
        let (status, resp) = http(addr, "POST", "/query", &body);
        assert_eq!(status, 200, "threads={threads}: {resp}");
        let out = strip_volatile(&resp);
        assert_eq!(
            out.pointer("/satisfied").and_then(JsonValue::as_bool),
            Some(true),
            "threads={threads}: {resp}"
        );
        match &baseline {
            None => baseline = Some(out),
            Some(b) => assert_eq!(b, &out, "threads={threads} diverged"),
        }
    }

    // Registry: every completed record upholds the at-most-once invariant
    // cells_executed == explored (Eq. 17 — only the cell itself runs).
    let (status, body) = http(addr, "GET", "/queries", "");
    assert_eq!(status, 200);
    let v = parse(&body).unwrap();
    let completed = match v.pointer("/completed") {
        Some(JsonValue::Arr(records)) => records.clone(),
        other => panic!("completed is not an array: {other:?} in {body}"),
    };
    assert_eq!(completed.len(), 4, "{body}");
    for rec in &completed {
        assert_eq!(
            rec.pointer("/summary/cells_executed")
                .and_then(JsonValue::as_u64),
            rec.pointer("/summary/explored").and_then(JsonValue::as_u64),
            "{body}"
        );
        assert_eq!(
            rec.pointer("/status").and_then(JsonValue::as_str),
            Some("completed")
        );
    }
}

#[test]
fn explain_profile_reports_eq17_reuse_accounting() {
    let server = start(ServeConfig::default());
    let body = format!("{{\"sql\":\"{SQL}\",\"threads\":2}}");
    let (status, resp) = http(server.addr(), "POST", "/query?explain=1", &body);
    assert_eq!(status, 200, "{resp}");
    let v = parse(&resp).unwrap();
    let profile = v.pointer("/profile").expect("profile present");
    let u = |key: &str| {
        profile
            .get(key)
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("{key} missing in {resp}"))
    };
    let dims = u("dims");
    assert_eq!(dims, 2);
    let explored = u("explored");
    assert!(explored > 0);
    // Eq. 17: each explored grid query decomposes into d+1 sub-queries of
    // which only the cell executes; the other d come from reuse.
    assert_eq!(u("cells_executed"), explored, "{resp}");
    assert_eq!(u("regions_reused"), explored * dims, "{resp}");
    assert_eq!(u("subqueries_total"), explored * (dims + 1), "{resp}");
    assert_eq!(u("at_most_once_violations"), 0, "{resp}");
    assert_eq!(u("workers"), 2);
    assert_eq!(
        profile.get("termination").and_then(JsonValue::as_str),
        Some("satisfied")
    );

    // Without the flag the profile key stays null.
    let (_, resp) = http(server.addr(), "POST", "/query", &body);
    assert_eq!(
        parse(&resp).unwrap().pointer("/profile"),
        Some(&JsonValue::Null)
    );
}

#[test]
fn health_metrics_and_trace_surfaces() {
    let server = start(ServeConfig::default());
    let addr = server.addr();

    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, _) = http(addr, "GET", "/readyz", "");
    assert_eq!(status, 200);

    let body = format!("{{\"sql\":\"{SQL}\"}}");
    let (status, resp) = http(addr, "POST", "/query", &body);
    assert_eq!(status, 200, "{resp}");
    let id = parse(&resp)
        .unwrap()
        .pointer("/id")
        .and_then(JsonValue::as_u64)
        .unwrap();

    // The scrape surface carries the absorbed pipeline counters, the serve
    // telemetry, and the registry gauges.
    let (status, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for series in [
        "# TYPE acq_cells_executed_total counter",
        "acq_serve_requests_total ",
        "acq_serve_queries_ok_total 1",
        "acq_serve_query_latency_ns_count 1",
        "acq_serve_queries_running 0",
        "acq_serve_queries_retained 1",
    ] {
        assert!(
            metrics.contains(series),
            "missing {series:?} in:\n{metrics}"
        );
    }

    // The trace is retained per query and tagged with its id.
    let (status, trace) = http(addr, "GET", &format!("/trace/{id}"), "");
    assert_eq!(status, 200, "{trace}");
    let t = parse(&trace).unwrap();
    assert_eq!(
        t.pointer("/truncated"),
        Some(&JsonValue::Bool(false)),
        "{trace}"
    );
    assert!(trace.contains(&format!("[q{id}] acquire:")), "{trace}");

    let (status, _) = http(addr, "GET", "/trace/999", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "DELETE", "/query", "");
    assert_eq!(status, 405);
}

#[test]
fn tiny_trace_buffers_report_truncation_honestly() {
    let server = start(ServeConfig {
        trace_capacity: 8,
        ..ServeConfig::default()
    });
    let body = format!("{{\"sql\":\"{SQL}\"}}");
    let (status, resp) = http(server.addr(), "POST", "/query", &body);
    assert_eq!(status, 200, "{resp}");
    let id = parse(&resp)
        .unwrap()
        .pointer("/id")
        .and_then(JsonValue::as_u64)
        .unwrap();
    let (status, trace) = http(server.addr(), "GET", &format!("/trace/{id}"), "");
    assert_eq!(status, 200, "{trace}");
    let t = parse(&trace).unwrap();
    assert_eq!(
        t.pointer("/truncated"),
        Some(&JsonValue::Bool(true)),
        "{trace}"
    );
    assert!(
        t.pointer("/dropped").and_then(JsonValue::as_u64).unwrap() > 0,
        "{trace}"
    );
}

#[test]
fn malformed_requests_get_4xx_not_a_hang() {
    let server = start(ServeConfig {
        max_body_bytes: 256,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let (status, _) = http(addr, "POST", "/query", "this is not json");
    assert_eq!(status, 400);
    let (status, _) = http(addr, "POST", "/query", "{\"gamma\": 5}");
    assert_eq!(status, 400, "missing sql must 400");
    let (status, resp) = http(
        addr,
        "POST",
        "/query",
        "{\"sql\":\"SELECT * FROM missing CONSTRAINT COUNT(*) >= 1 WHERE x <= 1\"}",
    );
    assert_eq!(status, 400, "{resp}");
    let big = format!("{{\"sql\":\"{}\"}}", "x".repeat(512));
    let (status, _) = http(addr, "POST", "/query", &big);
    assert_eq!(status, 413);
}

/// One blocking exchange returning the raw response text (status line,
/// headers and body) for header-level assertions.
fn http_raw(addr: SocketAddr, method: &str, target: &str, body: &str) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let req = format!(
        "{method} {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    raw
}

/// Reassembles a `Transfer-Encoding: chunked` body into its payload.
/// Panics unless the stream ends with the zero-length terminal chunk —
/// a missing terminator is the protocol's honest truncation signal.
fn dechunk(raw: &str) -> String {
    let mut out = String::new();
    let mut rest = raw;
    loop {
        let (size_line, tail) = rest.split_once("\r\n").expect("chunk size line");
        let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
        if size == 0 {
            return out;
        }
        out.push_str(&tail[..size]);
        assert_eq!(&tail[size..size + 2], "\r\n", "chunk data terminator");
        rest = &tail[size + 2..];
    }
}

fn progress_schema() -> JsonValue {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../schemas/progress.schema.json");
    parse(&std::fs::read_to_string(&path).unwrap()).unwrap()
}

#[test]
fn progress_stream_replays_monotone_schema_valid_events() {
    let server = start(ServeConfig::default());
    let addr = server.addr();
    let schema = progress_schema();
    for threads in [1usize, 2, 4, 8] {
        let body = format!("{{\"sql\":\"{SQL}\",\"threads\":{threads}}}");
        let (status, resp) = http(addr, "POST", "/query", &body);
        assert_eq!(status, 200, "threads={threads}: {resp}");
        let id = parse(&resp)
            .unwrap()
            .pointer("/id")
            .and_then(JsonValue::as_u64)
            .unwrap();

        // The broker retains finished channels, so the stream replays the
        // full event history after the query has already completed.
        let raw = http_raw(addr, "GET", &format!("/query/{id}/progress"), "");
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
        assert!(
            raw.contains("Transfer-Encoding: chunked\r\n")
                && raw.contains("Content-Type: application/x-ndjson\r\n"),
            "{raw}"
        );
        let body = raw.split_once("\r\n\r\n").unwrap().1;
        let ndjson = dechunk(body);
        let lines: Vec<&str> = ndjson.lines().collect();
        assert!(!lines.is_empty(), "no events for threads={threads}");

        // Every line validates against the published schema; `explored` is
        // strictly monotone; only the last line is terminal.
        let mut last_explored = 0u64;
        for (i, line) in lines.iter().enumerate() {
            let event = parse(line).unwrap_or_else(|e| panic!("bad NDJSON {line}: {e:?}"));
            let errors = acq_obs::schema::validate(&schema, &event);
            assert!(errors.is_empty(), "{line}: {errors:?}");
            let explored = event
                .pointer("/explored")
                .and_then(JsonValue::as_u64)
                .unwrap();
            assert!(
                explored > last_explored || (i == 0 && explored > 0),
                "explored not strictly monotone at line {i}: {ndjson}"
            );
            last_explored = explored;
            assert_eq!(
                event.pointer("/terminal").and_then(JsonValue::as_bool),
                Some(i == lines.len() - 1),
                "terminal must be the last event and only it: {ndjson}"
            );
        }

        // The terminal event embeds the sealed outcome *verbatim* — the
        // stream's answer is byte-identical to the POST /query response.
        let terminal = lines.last().unwrap();
        assert!(
            terminal.ends_with(&format!(",\"outcome\":{resp}}}")),
            "terminal outcome is not the POST body byte-for-byte:\n{terminal}\nvs\n{resp}"
        );
    }
}

#[test]
fn progress_stream_error_statuses() {
    let server = start(ServeConfig::default());
    let addr = server.addr();
    let (status, _) = http(addr, "GET", "/query/not-a-number/progress", "");
    assert_eq!(status, 400);
    let (status, _) = http(addr, "GET", "/query/999/progress", "");
    assert_eq!(status, 404, "unknown id");
    // Non-GET methods fall through to normal dispatch (405/404), never the
    // streaming path.
    let (status, _) = http(addr, "POST", "/query/1/progress", "");
    assert_ne!(status, 200);
}

#[test]
fn timeseries_surface_reports_recorder_state() {
    let server = start(ServeConfig {
        recorder_cadence: Duration::from_millis(20),
        recorder_capacity: 16,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    // Let the sampler take a few samples at its fast test cadence.
    std::thread::sleep(Duration::from_millis(120));
    let (status, body) = http(addr, "GET", "/timeseries", "");
    assert_eq!(status, 200, "{body}");
    let v = parse(&body).unwrap();
    assert_eq!(v.pointer("/version").and_then(JsonValue::as_u64), Some(1));
    assert_eq!(
        v.pointer("/cadence_ms").and_then(JsonValue::as_u64),
        Some(20)
    );
    assert_eq!(v.pointer("/capacity").and_then(JsonValue::as_u64), Some(16));
    let counters = match v.pointer("/counters") {
        Some(JsonValue::Arr(a)) => a.len(),
        other => panic!("counters not an array: {other:?}"),
    };
    assert!(counters > 0, "{body}");
    let samples = match v.pointer("/samples") {
        Some(JsonValue::Arr(a)) => a.len(),
        other => panic!("samples not an array: {other:?}"),
    };
    assert!(samples >= 2, "sampler took no samples: {body}");

    // The rate window is a query parameter; non-positive values are refused.
    let (status, _) = http(addr, "GET", "/timeseries?window=5", "");
    assert_eq!(status, 200);
    let (status, _) = http(addr, "GET", "/timeseries?window=0", "");
    assert_eq!(status, 400);
}

#[test]
fn metrics_content_type_is_versioned_prometheus_text() {
    let server = start(ServeConfig::default());
    let raw = http_raw(server.addr(), "GET", "/metrics", "");
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    assert!(
        raw.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"),
        "scrapers negotiate on the versioned text content type: {raw}"
    );
}

#[test]
fn trace_chrome_format_exports_trace_events() {
    let server = start(ServeConfig::default());
    let addr = server.addr();
    let body = format!("{{\"sql\":\"{SQL}\"}}");
    let (status, resp) = http(addr, "POST", "/query", &body);
    assert_eq!(status, 200, "{resp}");
    let id = parse(&resp)
        .unwrap()
        .pointer("/id")
        .and_then(JsonValue::as_u64)
        .unwrap();

    let (status, chrome) = http(addr, "GET", &format!("/trace/{id}?format=chrome"), "");
    assert_eq!(status, 200, "{chrome}");
    let t = parse(&chrome).unwrap();
    let events = match t.pointer("/traceEvents") {
        Some(JsonValue::Arr(a)) => a.clone(),
        other => panic!("traceEvents not an array: {other:?} in {chrome}"),
    };
    assert!(!events.is_empty(), "{chrome}");
    for e in &events {
        assert!(e.pointer("/name").and_then(JsonValue::as_str).is_some());
        assert!(e.pointer("/ph").and_then(JsonValue::as_str).is_some());
    }
    assert_eq!(
        t.pointer("/otherData/dropped").and_then(JsonValue::as_u64),
        Some(0),
        "{chrome}"
    );

    // Explicit json format matches the default render; unknown formats 400.
    let (_, plain) = http(addr, "GET", &format!("/trace/{id}"), "");
    let (_, json_fmt) = http(addr, "GET", &format!("/trace/{id}?format=json"), "");
    assert_eq!(plain, json_fmt);
    let (status, _) = http(addr, "GET", &format!("/trace/{id}?format=perfetto"), "");
    assert_eq!(status, 400);
}

fn journal_schema() -> JsonValue {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../schemas/journal.schema.json");
    parse(&std::fs::read_to_string(&path).unwrap()).unwrap()
}

/// A collision-free scratch path for journal files.
fn temp_path(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static N: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "acq-serve-e2e-{tag}-{}-{}.journal",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Removes a journal and any rotated segments it left behind.
fn remove_journal(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    for seg in acq_obs::journal::segment_paths(path) {
        let _ = std::fs::remove_file(seg);
    }
}

#[test]
fn journal_records_are_schema_valid_and_share_the_response_outcome_key() {
    let path = temp_path("key");
    let server = start(ServeConfig {
        journal_path: Some(path.clone()),
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // The same query across thread counts: responses must stay
    // bit-identical (volatiles aside) and carry one shared outcome_key.
    let mut keys_by_id = Vec::new();
    let mut baseline: Option<JsonValue> = None;
    for threads in [1usize, 2, 4, 8] {
        let body = format!("{{\"sql\":\"{SQL}\",\"threads\":{threads}}}");
        let (status, resp) = http(addr, "POST", "/query", &body);
        assert_eq!(status, 200, "threads={threads}: {resp}");
        let v = parse(&resp).unwrap();
        let id = v.pointer("/id").and_then(JsonValue::as_u64).unwrap();
        let key = v
            .pointer("/outcome_key")
            .and_then(JsonValue::as_str)
            .unwrap_or_else(|| panic!("no outcome_key in {resp}"))
            .to_string();
        assert_eq!(key.len(), 16, "outcome_key is 16 hex chars: {key}");
        keys_by_id.push((id, key));
        let out = strip_volatile(&resp);
        match &baseline {
            None => baseline = Some(out),
            Some(b) => assert_eq!(b, &out, "threads={threads} diverged"),
        }
    }
    let first_key = keys_by_id[0].1.clone();
    assert!(
        keys_by_id.iter().all(|(_, k)| *k == first_key),
        "outcome_key must be thread-count invariant: {keys_by_id:?}"
    );
    // And a rejected request is journaled too (shutting-down shed comes
    // later; here a compile failure takes the status-400 path).
    let (status, _) = http(
        addr,
        "POST",
        "/query",
        "{\"sql\":\"SELECT * FROM missing CONSTRAINT COUNT(*) >= 1 WHERE x <= 1\"}",
    );
    assert_eq!(status, 400);

    let journal = server.state().journal.as_ref().expect("journal is on");
    assert!(
        journal.flush(Duration::from_secs(10)),
        "journal writer did not settle"
    );
    let read = acq_obs::journal::read_journal(&path).unwrap();
    assert_eq!(read.torn, 0, "clean shutdownless read");
    let schema = journal_schema();
    let mut journal_keys = Vec::new();
    let mut saw_reject = false;
    for line in &read.records {
        let v = parse(line).unwrap_or_else(|e| panic!("bad journal line {line}: {e:?}"));
        let errors = acq_obs::schema::validate(&schema, &v);
        assert!(errors.is_empty(), "{line}: {errors:?}");
        assert_eq!(
            v.pointer("/kind").and_then(JsonValue::as_str),
            Some("query")
        );
        match v.pointer("/id").and_then(JsonValue::as_u64) {
            Some(id) => {
                if let Some(key) = v.pointer("/outcome_key").and_then(JsonValue::as_str) {
                    journal_keys.push((id, key.to_string()));
                    // The Eq. 17 digest rides every completed record.
                    let d = |f: &str| {
                        v.pointer(&format!("/digest/{f}"))
                            .and_then(JsonValue::as_u64)
                            .unwrap_or_else(|| panic!("digest.{f} missing in {line}"))
                    };
                    assert_eq!(d("cells_executed"), d("explored"), "{line}");
                    assert_eq!(d("regions_reused"), d("explored") * d("dims"), "{line}");
                    assert_eq!(d("at_most_once_violations"), 0, "{line}");
                } else {
                    saw_reject = true; // the compile failure carries id+error
                }
            }
            None => saw_reject = true,
        }
    }
    journal_keys.sort_unstable();
    keys_by_id.sort_unstable();
    assert_eq!(
        journal_keys, keys_by_id,
        "journal and responses must agree on every outcome_key"
    );
    assert!(saw_reject, "the 400 rejection must be journaled: {read:?}");
    drop(server);
    remove_journal(&path);
}

#[test]
fn journal_survives_restart_and_replays_the_torn_tail_honestly() {
    let path = temp_path("restart");
    // First process lifetime: two queries, clean shutdown.
    {
        let server = start(ServeConfig {
            journal_path: Some(path.clone()),
            ..ServeConfig::default()
        });
        for _ in 0..2 {
            let body = format!("{{\"sql\":\"{SQL}\"}}");
            let (status, resp) = http(server.addr(), "POST", "/query", &body);
            assert_eq!(status, 200, "{resp}");
        }
        let journal = server.state().journal.as_ref().unwrap();
        assert!(journal.flush(Duration::from_secs(10)));
    } // Drop: the writer thread drains and joins — the "kill".

    // Simulate a crash mid-write: a torn final line with no newline.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"{\"v\":1,\"kind\":\"query\",\"at_ms\":12")
            .unwrap();
    }
    let read = acq_obs::journal::read_journal(&path).unwrap();
    assert_eq!(read.torn, 1, "the torn tail is counted, not parsed");
    assert_eq!(read.records.len(), 2, "{read:?}");
    let summary = acq_obs::journal::summarize(&read);
    assert_eq!(summary.queries, 2);
    assert_eq!(summary.torn, 1);
    assert_eq!(summary.malformed, 0);
    assert_eq!(summary.by_termination.get("satisfied"), Some(&2));

    // Second process lifetime: reopening repairs the tail and appends.
    let server = start(ServeConfig {
        journal_path: Some(path.clone()),
        ..ServeConfig::default()
    });
    let journal = server.state().journal.as_ref().unwrap();
    assert_eq!(
        journal.ring().torn_repaired(),
        1,
        "reopen truncates the torn tail and owns up to it"
    );
    let body = format!("{{\"sql\":\"{SQL}\"}}");
    let (status, resp) = http(server.addr(), "POST", "/query", &body);
    assert_eq!(status, 200, "{resp}");
    assert!(journal.flush(Duration::from_secs(10)));
    let read = acq_obs::journal::read_journal(&path).unwrap();
    assert_eq!(read.torn, 0, "repaired on reopen");
    assert_eq!(
        read.records.len(),
        3,
        "both lifetimes' records replay: {read:?}"
    );
    drop(server);
    remove_journal(&path);
}

#[test]
fn shed_alert_fires_under_flood_resolves_after_and_both_edges_are_journaled() {
    let journal_path = temp_path("alert");
    let alerts_path = temp_path("alert-rules");
    std::fs::write(
        &alerts_path,
        "[[rule]]\n\
         name = \"shed-rate-high\"\n\
         signal = \"serve_shed_per_sec\"\n\
         threshold = 0.2\n\
         window_secs = 2\n",
    )
    .unwrap();
    let mut server = Server::start(
        ServeConfig {
            max_concurrent: 1,
            max_queued: 0,
            queue_wait: Duration::from_millis(50),
            recorder_cadence: Duration::from_millis(25),
            alert_interval: Duration::from_millis(25),
            journal_path: Some(journal_path.clone()),
            alerts_path: Some(alerts_path.clone()),
            ..ServeConfig::default()
        },
        catalog(),
    )
    .unwrap();
    let addr = server.addr();

    // Flood from several clients: with one execution slot and no queue,
    // collisions shed with 503 and the shed rate climbs.
    let mut shed = 0u32;
    let flood_deadline = std::time::Instant::now() + Duration::from_secs(20);
    'flood: while std::time::Instant::now() < flood_deadline {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                std::thread::spawn(move || {
                    let body = format!("{{\"sql\":\"{SQL}\"}}");
                    http(addr, "POST", "/query", &body).0
                })
            })
            .collect();
        for h in handles {
            if h.join().unwrap() == 503 {
                shed += 1;
            }
        }
        if shed >= 3 {
            break 'flood;
        }
    }
    assert!(shed >= 3, "flood produced no sheds");

    // The rule must reach `firing` (and export as a gauge) within the
    // 2-second rate window.
    let fire_deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut fired = false;
    while std::time::Instant::now() < fire_deadline {
        let (status, body) = http(addr, "GET", "/alerts", "");
        assert_eq!(status, 200, "{body}");
        let v = parse(&body).unwrap();
        if v.pointer("/rules/0/state").and_then(JsonValue::as_str) == Some("firing") {
            fired = true;
            let (_, metrics) = http(addr, "GET", "/metrics", "");
            assert!(
                metrics.contains("acq_alert_firing{rule=\"shed-rate-high\"} 1"),
                "{metrics}"
            );
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(fired, "shed-rate rule never fired");

    // Quiet period: the trailing window drains and the rule resolves.
    let resolve_deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut resolved = false;
    while std::time::Instant::now() < resolve_deadline {
        let (_, body) = http(addr, "GET", "/alerts", "");
        let v = parse(&body).unwrap();
        if v.pointer("/rules/0/state").and_then(JsonValue::as_str) == Some("inactive") {
            resolved = true;
            let (_, metrics) = http(addr, "GET", "/metrics", "");
            assert!(
                metrics.contains("acq_alert_firing{rule=\"shed-rate-high\"} 0"),
                "{metrics}"
            );
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(resolved, "shed-rate rule never resolved after the flood");

    // Both edges are durable: the journal carries the firing and resolved
    // transitions, schema-valid like everything else.
    let journal = server.state().journal.as_ref().unwrap();
    assert!(journal.flush(Duration::from_secs(10)));
    let read = acq_obs::journal::read_journal(&journal_path).unwrap();
    let schema = journal_schema();
    let mut transitions = Vec::new();
    for line in &read.records {
        let v = parse(line).unwrap();
        let errors = acq_obs::schema::validate(&schema, &v);
        assert!(errors.is_empty(), "{line}: {errors:?}");
        if v.pointer("/kind").and_then(JsonValue::as_str) == Some("alert") {
            assert_eq!(
                v.pointer("/rule").and_then(JsonValue::as_str),
                Some("shed-rate-high")
            );
            transitions.push(
                v.pointer("/transition")
                    .and_then(JsonValue::as_str)
                    .unwrap()
                    .to_string(),
            );
        }
    }
    assert_eq!(
        transitions,
        vec!["firing".to_string(), "resolved".to_string()],
        "exactly one firing edge then one resolved edge: {read:?}"
    );
    let summary = acq_obs::journal::summarize(&read);
    assert_eq!(summary.by_alert.get("shed-rate-high firing"), Some(&1));
    assert_eq!(summary.by_alert.get("shed-rate-high resolved"), Some(&1));

    server.shutdown();
    remove_journal(&journal_path);
    let _ = std::fs::remove_file(&alerts_path);
}

#[test]
fn dashboard_is_served_self_contained_and_alerts_endpoint_degrades_gracefully() {
    let server = start(ServeConfig::default());
    let addr = server.addr();
    let raw = http_raw(addr, "GET", "/dashboard", "");
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    assert!(
        raw.contains("Content-Type: text/html; charset=utf-8\r\n"),
        "{raw}"
    );
    let body = raw.split_once("\r\n\r\n").unwrap().1;
    for needle in [
        "/timeseries",
        "/alerts",
        "/queries",
        "sparkSeries",
        "</html>",
    ] {
        assert!(body.contains(needle), "dashboard lacks {needle}");
    }
    // Without --alerts the endpoint still answers an empty document.
    let (status, body) = http(addr, "GET", "/alerts", "");
    assert_eq!(status, 200);
    let v = parse(&body).unwrap();
    assert_eq!(v.pointer("/version").and_then(JsonValue::as_u64), Some(1));
    assert_eq!(v.pointer("/rules"), Some(&JsonValue::Arr(Vec::new())));
}

#[test]
fn bad_ops_config_fails_startup_loudly() {
    // An unparseable alerts file must refuse to serve, not silently not page.
    let alerts_path = temp_path("bad-rules");
    std::fs::write(
        &alerts_path,
        "[[rule]]\nname = \"x\"\nsignal = \"s\"\nthreshold = 1\nbogus = 1\n",
    )
    .unwrap();
    let err = match Server::start(
        ServeConfig {
            alerts_path: Some(alerts_path.clone()),
            ..ServeConfig::default()
        },
        catalog(),
    ) {
        Ok(_) => panic!("typo'd alerts.toml must fail startup"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("unknown key"), "{err}");
    let _ = std::fs::remove_file(&alerts_path);

    // A journal path whose directory doesn't exist fails the same way.
    let err = match Server::start(
        ServeConfig {
            journal_path: Some(std::path::PathBuf::from("/nonexistent-acq-dir/q.journal")),
            ..ServeConfig::default()
        },
        catalog(),
    ) {
        Ok(_) => panic!("unopenable journal must fail startup"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("journal"), "{err}");
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let mut server = start(ServeConfig::default());
    let addr = server.addr();
    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 202);
    server.join();
    assert!(server.is_shutdown());
    // The listener is gone: new connections are refused (or reset).
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
}

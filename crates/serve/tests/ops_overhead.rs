//! The hard gate for the operations layer: a request served with the
//! durable journal and the SLO alert engine armed must stay within 2% (plus
//! an absolute floor) of an identical request against a server with neither
//! — the whole point of the wait-free ring / writer-thread split and the
//! off-request alert thread. Same retry discipline as the overhead gates in
//! `crates/core/tests/observability.rs`: min-of-5 per attempt, absolute
//! floor so millisecond-scale requests don't flake, three attempts so only
//! a systematic regression fails. `bench_smoke`'s `ops_overhead` row records
//! the same comparison as a trend line.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use acq_engine::{Catalog, DataType, Field, TableBuilder, Value};
use acq_serve::{ServeConfig, Server};

fn catalog() -> Catalog {
    let mut b = TableBuilder::new(
        "t",
        vec![
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
        ],
    )
    .unwrap();
    for i in 0..3000 {
        b.push_row(vec![
            Value::Float(f64::from(i) * 0.1),
            Value::Float(f64::from(i % 150)),
        ]);
    }
    let mut cat = Catalog::new();
    cat.register(b.finish().unwrap()).unwrap();
    cat
}

const SQL: &str = "SELECT * FROM t CONSTRAINT COUNT(*) >= 800 WHERE x <= 10 AND y <= 30";

/// One blocking POST /query exchange; panics on a non-200.
fn query(addr: SocketAddr) {
    let body = format!("{{\"sql\":\"{SQL}\"}}");
    let req = format!(
        "POST /query HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    s.write_all(req.as_bytes()).unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
}

#[test]
fn journal_and_alert_overhead_is_below_two_percent() {
    let journal_path = std::env::temp_dir().join(format!(
        "acq-serve-ops-overhead-{}.journal",
        std::process::id()
    ));
    let alerts_path = std::env::temp_dir().join(format!(
        "acq-serve-ops-overhead-{}.alerts.toml",
        std::process::id()
    ));
    // Quiet rules: unreachable thresholds, so the gate measures evaluation
    // cost without alert churn. The production 250ms cadence is kept.
    std::fs::write(
        &alerts_path,
        "[[rule]]\nname = \"p99-latency-high\"\nsignal = \"p99_latency_ms\"\n\
         threshold = 1e12\nwindow_secs = 60\n\n\
         [[rule]]\nname = \"error-rate-high\"\nsignal = \"serve_queries_err_per_sec\"\n\
         threshold = 1e12\nwindow_secs = 60\n",
    )
    .unwrap();

    let plain_server = Server::start(ServeConfig::default(), catalog()).unwrap();
    let ops_server = Server::start(
        ServeConfig {
            journal_path: Some(journal_path.clone()),
            alerts_path: Some(alerts_path.clone()),
            ..ServeConfig::default()
        },
        catalog(),
    )
    .unwrap();

    // Warm-up both paths (lazy init, page cache, first journal write).
    query(plain_server.addr());
    query(ops_server.addr());

    let mut requests = 1u64; // the ops warm-up request above
    let mut outcome = Err(String::new());
    for _attempt in 0..3 {
        let mut plain = f64::INFINITY;
        let mut ops = f64::INFINITY;
        for _ in 0..5 {
            let t = Instant::now();
            query(plain_server.addr());
            plain = plain.min(t.elapsed().as_secs_f64() * 1e3);

            let t = Instant::now();
            query(ops_server.addr());
            ops = ops.min(t.elapsed().as_secs_f64() * 1e3);
            requests += 1;
        }
        let allowed = plain * 1.02 + 15.0;
        if ops <= allowed {
            outcome = Ok(());
            break;
        }
        outcome = Err(format!(
            "ops-armed request {ops:.1}ms exceeds {allowed:.1}ms (plain {plain:.1}ms)"
        ));
    }

    // Durability must not have been traded for the speed just measured:
    // every request's record reached disk, none were dropped.
    let journal = ops_server.state().journal.as_ref().unwrap();
    assert!(journal.flush(Duration::from_secs(10)));
    let ring = journal.ring();
    assert_eq!(ring.written(), requests, "a bench record never hit disk");
    assert_eq!(ring.dropped(), 0);
    assert_eq!(ring.write_errors(), 0);

    drop(plain_server);
    drop(ops_server);
    let _ = std::fs::remove_file(&journal_path);
    let _ = std::fs::remove_file(&alerts_path);
    if let Err(e) = outcome {
        panic!("{e}");
    }
}

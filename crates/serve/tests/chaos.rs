//! Chaos harness: hostile clients and overload against a live server.
//!
//! Every test here speaks raw TCP to a real `Server` on an ephemeral port
//! and asserts the overload contract from DESIGN.md: the server never
//! panics or deadlocks, every accepted connection gets an honest status
//! (`{200, 400, 408, 413, 429, 503}` — never a silent drop), shed and
//! degraded work is accounted in the admission counters, and graceful
//! shutdown drains admitted work while rejecting the rest.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use acq_engine::{Catalog, DataType, Field, TableBuilder, Value};
use acq_serve::{ServeConfig, Server};
use acquire_core::EvalLayerKind;

// ---------------------------------------------------------------------------
// Catalogs and helpers
// ---------------------------------------------------------------------------

/// A small catalog whose queries finish in milliseconds.
fn fast_catalog() -> Catalog {
    let mut b = TableBuilder::new("t", vec![Field::new("x", DataType::Float)]).unwrap();
    for i in 0..500 {
        b.push_row(vec![Value::Float(f64::from(i) * 0.1)]);
    }
    let mut cat = Catalog::new();
    cat.register(b.finish().unwrap()).unwrap();
    cat
}

const FAST_SQL: &str = "SELECT * FROM t CONSTRAINT COUNT(*) >= 400 WHERE x <= 1";

/// A catalog sized so that [`SLOW_SQL`] under the [`EvalLayerKind::Scan`]
/// layer reliably runs for several seconds (every refinement step re-scans
/// every row), yet stays interruptible: the driver polls budget and token
/// between cells.
fn slow_catalog() -> Catalog {
    let mut b = TableBuilder::new("big", vec![Field::new("x", DataType::Float)]).unwrap();
    for i in 0..60_000 {
        b.push_row(vec![Value::Float(f64::from(i))]);
    }
    let mut cat = Catalog::new();
    cat.register(b.finish().unwrap()).unwrap();
    cat
}

const SLOW_SQL: &str = "SELECT * FROM big CONSTRAINT COUNT(*) >= 59000 WHERE x <= 1";

/// Body for a slow query: fine-grained gamma multiplies refinement steps.
fn slow_body(timeout_secs: u32) -> String {
    format!("{{\"sql\":\"{SLOW_SQL}\",\"gamma\":1.0,\"timeout_secs\":{timeout_secs}}}")
}

/// One blocking HTTP/1.1 exchange with optional extra header lines;
/// returns (status, body). Reads to EOF (sends `Connection: close`).
fn http_with(
    addr: SocketAddr,
    method: &str,
    target: &str,
    extra_headers: &str,
    body: &str,
) -> (u16, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let req = format!(
        "{method} {target} HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n{extra_headers}\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    parse_response(&raw)
}

fn http(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
    http_with(addr, method, target, "", body)
}

fn parse_response(raw: &str) -> (u16, String) {
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("no status line in {raw:?}"))
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Polls `cond` until true or the deadline passes (then panics with `what`).
fn wait_for(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

// ---------------------------------------------------------------------------
// Connection flood at 4x the admission limit
// ---------------------------------------------------------------------------

#[test]
fn flood_at_4x_admission_limit_returns_only_200_429_503() {
    let config = ServeConfig {
        layer: EvalLayerKind::GridIndex,
        max_concurrent: 2,
        max_queued: 1,
        queue_wait: Duration::from_millis(100),
        // Surface 429s too: all flood clients share the loopback bucket.
        client_rate: 20.0,
        client_burst: 4.0,
        workers: 4,
        accept_queue: 4,
        ..ServeConfig::default()
    };
    let server = Server::start(config, fast_catalog()).unwrap();
    let addr = server.addr();

    // 8 concurrent clients = 4x the admission limit (max_concurrent = 2),
    // each sending several queries back to back.
    let statuses: Vec<u16> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                s.spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..4 {
                        let body = format!("{{\"sql\":\"{FAST_SQL}\"}}");
                        let (status, _) = http(addr, "POST", "/query", &body);
                        got.push(status);
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    // Every connection was answered (32 requests, 32 statuses) and every
    // status is from the honest overload set.
    assert_eq!(statuses.len(), 32);
    for status in &statuses {
        assert!(
            matches!(status, 200 | 429 | 503),
            "unexpected status {status} in {statuses:?}"
        );
    }
    assert!(
        statuses.contains(&200),
        "some work must get through: {statuses:?}"
    );
    assert!(
        statuses.iter().any(|&s| s == 429 || s == 503),
        "a 4x flood with burst 4 must shed or rate-limit: {statuses:?}"
    );

    // The sheds/limits are accounted, and the server is still healthy.
    let stats = &server.state().telemetry.admission;
    let rejected = stats.shed.get() + stats.rate_limited.get() + stats.conn_rejected.get();
    assert!(rejected >= 1, "admission counters missed the flood");
    let (status, _) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "server unhealthy after flood");
}

// ---------------------------------------------------------------------------
// Hostile clients: slowloris, stalled bodies, disconnects, garbage
// ---------------------------------------------------------------------------

/// Trickles `bytes` at one byte per 25ms, ignoring write errors once the
/// server gives up, then returns whatever response the server sent.
fn trickle(addr: SocketAddr, bytes: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    for chunk in bytes.chunks(1) {
        if s.write_all(chunk).is_err() {
            break; // server already closed on us; go read its answer
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let mut raw = String::new();
    let _ = s.read_to_string(&mut raw);
    raw
}

#[test]
fn slowloris_trickle_gets_408_and_the_worker_is_reclaimed() {
    let config = ServeConfig {
        workers: 1,
        read_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let server = Server::start(config, fast_catalog()).unwrap();
    let addr = server.addr();

    // 40 bytes at 25ms each = a full second of trickle against a 300ms
    // total read budget: the deadline must fire mid-headers.
    let raw = trickle(addr, b"POST /query HTTP/1.1\r\nHost: slowloris\r\nCo");
    assert!(
        raw.starts_with("HTTP/1.1 408"),
        "slowloris must get 408, got {raw:?}"
    );
    assert!(raw.contains("read deadline exceeded"), "{raw}");
    assert!(server.state().telemetry.admission.read_timeouts.get() >= 1);

    // The single worker thread was reclaimed: a well-behaved client is
    // served immediately afterwards.
    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(
        (status, body.as_str()),
        (200, "ok\n"),
        "worker not reclaimed"
    );
}

#[test]
fn stalled_body_gets_408_and_the_worker_is_reclaimed() {
    let config = ServeConfig {
        workers: 1,
        read_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let server = Server::start(config, fast_catalog()).unwrap();
    let addr = server.addr();

    // Headers arrive promptly, then the body stalls 90 bytes short.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"POST /query HTTP/1.1\r\nHost: stall\r\nContent-Length: 100\r\n\r\n0123456789")
        .unwrap();
    let mut raw = String::new();
    let _ = s.read_to_string(&mut raw);
    assert!(
        raw.starts_with("HTTP/1.1 408"),
        "stalled body must get 408, got {raw:?}"
    );

    let (status, _) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "worker not reclaimed after stalled body");
}

#[test]
fn mid_body_disconnect_and_garbage_bytes_are_survived() {
    let config = ServeConfig {
        workers: 1,
        read_timeout: Duration::from_millis(500),
        ..ServeConfig::default()
    };
    let server = Server::start(config, fast_catalog()).unwrap();
    let addr = server.addr();

    // Disconnect mid-body: the server sees EOF short of Content-Length.
    // Whatever it tries to write lands on a dead socket; it must just
    // move on to the next connection.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /query HTTP/1.1\r\nContent-Length: 100\r\n\r\npartial")
            .unwrap();
    } // dropped: RST/FIN mid-request

    // Garbage bytes get an honest 400, not a hang or a crash.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"\x01\x02garbage without structure\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    let _ = s.read_to_string(&mut raw);
    assert!(
        raw.starts_with("HTTP/1.1 400"),
        "garbage must get 400, got {raw:?}"
    );
    assert!(raw.contains("malformed request"), "{raw}");

    // And the lone worker still serves real traffic.
    let (status, _) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "worker wedged by hostile clients");
}

// ---------------------------------------------------------------------------
// Keep-alive sessions
// ---------------------------------------------------------------------------

/// Reads exactly one HTTP/1.1 response (headers + Content-Length body)
/// without consuming the next one on the same keep-alive socket.
fn read_framed_response(s: &mut TcpStream) -> (u16, String) {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    while !raw.ends_with(b"\r\n\r\n") {
        match s.read(&mut byte) {
            Ok(1) => raw.push(byte[0]),
            other => panic!("connection died mid-headers: {other:?}"),
        }
    }
    let head = String::from_utf8(raw).unwrap();
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_string)
        })
        .and_then(|v| v.trim().parse().ok())
        .expect("Content-Length header");
    let mut body = vec![0u8; content_length];
    s.read_exact(&mut body).unwrap();
    let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, String::from_utf8(body).unwrap())
}

#[test]
fn keep_alive_sessions_serve_multiple_requests_per_connection() {
    let server = Server::start(ServeConfig::default(), fast_catalog()).unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // Two requests, one socket, no `Connection: close`.
    for i in 0..2 {
        s.write_all(b"GET /healthz HTTP/1.1\r\nHost: ka\r\n\r\n")
            .unwrap();
        let (status, body) = read_framed_response(&mut s);
        assert_eq!((status, body.as_str()), (200, "ok\n"), "request {i}");
    }
    assert!(
        server.state().telemetry.admission.keepalive_reuses.get() >= 1,
        "second request on the socket must count as a keep-alive reuse"
    );

    // An HTTP/1.0-style close is honoured: the server ends the session.
    s.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let (status, _) = read_framed_response(&mut s);
    assert_eq!(status, 200);
    let n = s.read(&mut [0u8; 16]);
    assert!(
        matches!(n, Ok(0) | Err(_)),
        "server must close after Connection: close, got {n:?}"
    );
}

// ---------------------------------------------------------------------------
// Deadline propagation
// ---------------------------------------------------------------------------

#[test]
fn deadline_header_bounds_the_query_and_bad_headers_get_400() {
    let config = ServeConfig {
        layer: EvalLayerKind::Scan,
        ..ServeConfig::default()
    };
    let server = Server::start(config, slow_catalog()).unwrap();
    let addr = server.addr();

    // A 60ms transport deadline against a multi-second query: the budget
    // interrupts the search, and the partial answer says so explicitly.
    let t0 = Instant::now();
    let (status, body) = http_with(
        addr,
        "POST",
        "/query",
        "X-ACQ-Deadline-Ms: 60\r\n",
        &slow_body(30),
    );
    let elapsed = t0.elapsed();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"interrupted\""), "{body}");
    assert!(body.contains("\"reason\":\"deadline\""), "{body}");
    assert!(
        elapsed < Duration::from_secs(5),
        "60ms deadline ignored: query ran {elapsed:?}"
    );

    // The JSON spelling binds too, and the tightest bound wins.
    let body =
        format!("{{\"sql\":\"{SLOW_SQL}\",\"gamma\":1.0,\"deadline_ms\":60,\"timeout_secs\":30}}");
    let (status, resp) = http(addr, "POST", "/query", &body);
    assert_eq!(status, 200, "{resp}");
    assert!(resp.contains("\"reason\":\"deadline\""), "{resp}");

    // Unparseable header: reject before any work happens (the body is
    // valid, so the 400 is attributable to the header alone).
    let (status, resp) = http_with(
        addr,
        "POST",
        "/query",
        "X-ACQ-Deadline-Ms: soon\r\n",
        &slow_body(1),
    );
    assert_eq!(status, 400, "{resp}");
    assert!(resp.contains("X-ACQ-Deadline-Ms"), "{resp}");
}

// ---------------------------------------------------------------------------
// Graceful degradation past the high-water mark
// ---------------------------------------------------------------------------

#[test]
fn degraded_admissions_return_partial_answers_with_explicit_termination() {
    let config = ServeConfig {
        layer: EvalLayerKind::Scan,
        max_concurrent: 4,
        // degrade_at = ceil(4 * 0.25) = 1: the second concurrent query is
        // best-effort with a 1% budget.
        degrade_watermark: 0.25,
        degrade_factor: 0.01,
        ..ServeConfig::default()
    };
    let server = Server::start(config, slow_catalog()).unwrap();
    let addr = server.addr();
    let state = server.state().clone();

    std::thread::scope(|s| {
        // Query A occupies the only pre-watermark slot.
        let a = s.spawn(move || http(addr, "POST", "/query", &slow_body(20)));
        wait_for("query A to start", || state.gate.active() >= 1);

        // Query B lands above the watermark: admitted, but degraded. Its
        // 10s ask shrinks to ~100ms, so it returns a fast partial answer.
        let t0 = Instant::now();
        let (status, body) = http(addr, "POST", "/query", &slow_body(10));
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"degraded\":true"), "{body}");
        assert!(body.contains("\"status\":\"interrupted\""), "{body}");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "degraded budget did not shrink"
        );
        assert!(state.telemetry.admission.degraded.get() >= 1);

        // Reap A: shutdown interrupts it into its anytime answer.
        let (status, _) = http(addr, "POST", "/shutdown", "");
        assert_eq!(status, 202);
        let (status, body) = a.join().unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"status\":\"interrupted\""), "{body}");
    });
}

// ---------------------------------------------------------------------------
// Shutdown under load
// ---------------------------------------------------------------------------

#[test]
fn shutdown_under_load_drains_in_flight_rejects_queued_and_joins() {
    let config = ServeConfig {
        layer: EvalLayerKind::Scan,
        max_concurrent: 1,
        max_queued: 4,
        queue_wait: Duration::from_secs(30),
        workers: 3,
        ..ServeConfig::default()
    };
    let mut server = Server::start(config, slow_catalog()).unwrap();
    let addr = server.addr();
    let state = server.state().clone();

    let (a, b) = std::thread::scope(|s| {
        // A holds the single execution slot...
        let a = s.spawn(move || http(addr, "POST", "/query", &slow_body(20)));
        wait_for("query A to take the slot", || state.gate.active() >= 1);
        // ...and B waits behind it at the admission gate.
        let b = s.spawn(move || http(addr, "POST", "/query", &slow_body(20)));
        wait_for("query B to queue at the gate", || state.gate.queued() >= 1);

        let (status, _) = http(addr, "POST", "/shutdown", "");
        assert_eq!(status, 202);
        (a.join().unwrap(), b.join().unwrap())
    });

    // A was admitted: it drains to its partial anytime answer.
    assert_eq!(a.0, 200, "in-flight query must drain: {}", a.1);
    assert!(a.1.contains("\"status\":\"interrupted\""), "{}", a.1);
    assert!(a.1.contains("\"reason\":\"cancelled\""), "{}", a.1);
    // B was still queued: honestly rejected, never silently dropped.
    assert_eq!(b.0, 503, "queued query must be rejected: {}", b.1);

    // Every serving thread exits; join() returning IS the assertion.
    server.join();
    assert!(server.is_shutdown());
    // The drained work is visible in the registry: A completed (with an
    // interrupted termination), nothing is still marked running.
    let (running, completed, _) = server.state().registry.counts();
    assert_eq!(running, 0, "registry leaked a running record");
    assert!(completed >= 1);
}

// ---------------------------------------------------------------------------
// Spoofed-IP flood against the rate limiter's bucket map
// ---------------------------------------------------------------------------

#[test]
fn spoofed_ip_flood_keeps_bucket_memory_bounded_and_ttl_sweeps_the_corpse_pile() {
    use std::net::{IpAddr, Ipv4Addr};

    use acq_serve::admission::{CLIENT_TTL, MAX_TRACKED_CLIENTS, SWEEP_INTERVAL};
    use acq_serve::RateLimiters;

    // Per-client limiting on, global tier open: every spoofed address gets
    // its own bucket, which is exactly the memory attack being simulated.
    let lim = RateLimiters::new(10.0, 5.0, 0.0, 1.0);
    let t0 = Instant::now();
    let spoof = |i: usize| IpAddr::V4(Ipv4Addr::from(0x0a00_0000u32 + i as u32));

    // Burst phase: 3x the cap in distinct spoofed source addresses, all
    // inside one sweep interval. The map must stop at the cap, with the
    // overflow evicted (and tallied), not accumulated.
    let flood = 3 * MAX_TRACKED_CLIENTS;
    for i in 0..flood {
        let _ = lim.check_at(Some(spoof(i)), t0);
    }
    assert_eq!(lim.tracked_clients(), MAX_TRACKED_CLIENTS);
    assert_eq!(lim.take_evicted(), (flood - MAX_TRACKED_CLIENTS) as u64);

    // Idle phase: the flood stops. One legitimate client arriving after the
    // TTL horizon triggers the amortised sweep, which must reclaim every
    // corpse bucket in one pass — this is the unbounded-growth fix: before
    // the sweep, the dead flood pinned the cap's worth of memory forever.
    let later = t0 + CLIENT_TTL + SWEEP_INTERVAL;
    let legit: IpAddr = "192.168.7.7".parse().unwrap();
    assert!(lim.check_at(Some(legit), later).is_ok());
    assert_eq!(
        lim.tracked_clients(),
        1,
        "only the live client survives the TTL sweep"
    );
    assert_eq!(lim.take_evicted(), MAX_TRACKED_CLIENTS as u64);

    // The sweep is amortised: a second wave arriving right after does not
    // rescan per request, and a still-active client is never swept.
    for i in 0..100 {
        let _ = lim.check_at(Some(spoof(i)), later);
    }
    let keepalive = later + CLIENT_TTL - Duration::from_secs(1);
    assert!(lim.check_at(Some(legit), keepalive).is_ok());
    let after_second_sweep = keepalive + SWEEP_INTERVAL;
    assert!(lim.check_at(Some(legit), after_second_sweep).is_ok());
    assert_eq!(
        lim.tracked_clients(),
        1,
        "the touched client outlives idle spoofed ones"
    );
    assert_eq!(lim.take_evicted(), 100);
}

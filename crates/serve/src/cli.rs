//! Command-line entry point, shared by the `acq-serve` binary and the root
//! CLI's `acq serve` subcommand.

use std::time::Duration;

use acq_datagen::{patients, tpch, users, GenConfig};
use acq_engine::{csv, Catalog};
use acquire_core::EvalLayerKind;

use crate::server::Server;
use crate::state::ServeConfig;

/// Usage text for `acq-serve --help` (and `acq serve --help`).
pub const USAGE: &str = "usage: acq-serve [OPTIONS]

options:
  --addr HOST:PORT     bind address (default 127.0.0.1:7171; port 0 = ephemeral)
  --table NAME=PATH    load a CSV file as table NAME (repeatable)
  --demo NAME          generate a demo table: users | patients | tpch (repeatable)
  --demo-rows N        demo table size (default 50000)
  --layer KIND         evaluation layer: grid | cached | scan (default grid)
  --gamma G            default refinement threshold when a request omits it
  --delta D            default aggregate error threshold when a request omits it
  --max-deadline SECS  hard per-query wall-clock cap (default 30)
  --max-threads N      most search threads one request may ask for (default 8)
  --max-concurrent N   executing queries before new ones queue (default 16)
  --trace-capacity N   per-query trace buffer capacity (default 10000)
  --recorder-cadence SECS  flight-recorder sampling cadence (default 1)
  --recorder-capacity N    flight-recorder ring size in samples (default 600)

overload / admission control:
  --workers N            connection-worker threads (default 8)
  --accept-queue N       accepted connections awaiting a worker before the
                         acceptor sheds with 503 (default 64)
  --read-timeout SECS    total first-byte-to-last budget per request; slower
                         clients get 408 (default 5)
  --keep-alive SECS      idle keep-alive connection lifetime (default 5)
  --max-queued N         queries queued at the gate before shedding (default 32)
  --queue-wait SECS      longest gate wait before a 503 (default 1)
  --client-rate R        per-client queries/sec token bucket; 0 = off (default 0)
  --client-burst N       per-client bucket burst (default 8)
  --global-rate R        global queries/sec token bucket; 0 = off (default 0)
  --global-burst N       global bucket burst (default 32)
  --degrade-watermark F  load fraction of --max-concurrent above which
                         admissions degrade to best-effort (default 0.75)
  --degrade-factor F     budget multiplier for degraded admissions (default 0.25)

operations (journal + alerts):
  --journal PATH         append every request lifecycle and alert transition as
                         NDJSON (schemas/journal.schema.json) to this file,
                         size-rotated; replay offline with `acq journal`
  --journal-max-bytes N  active-segment size before rotation (default 8388608)
  --journal-capacity N   in-memory journal ring capacity (default 4096)
  --alerts PATH          load declarative SLO rules (threshold / burn_rate)
                         from this TOML file; states at GET /alerts and
                         acq_alert_firing{rule=...} on /metrics
  --alert-interval SECS  alert evaluation cadence (default 0.25)
  --help                 this message

endpoints: POST /query[?explain=1]  GET /metrics /healthz /readyz /queries
           GET /query/<id>/progress (chunked NDJSON)  GET /timeseries[?window=SECS]
           GET /alerts  GET /dashboard  GET /trace/<id>[?format=chrome]
           POST /shutdown

The request body for POST /query is JSON:
  {\"sql\": \"SELECT ... CONSTRAINT ...\", \"gamma\"?, \"delta\"?,
   \"norm\"? (\"l1\"|\"l2\"|\"linf\"), \"threads\"?, \"timeout_secs\"?,
   \"deadline_ms\"?, \"max_explored\"?, \"max_store_bytes\"?, \"top\"?}
A client deadline may also ride the X-ACQ-Deadline-Ms request header; the
tightest of all supplied bounds wins. Overloaded servers answer 429/503
with Retry-After, or degrade admitted queries to partial anytime answers
(\"degraded\": true with an explicit \"termination\").";

/// Parsed `acq-serve` options: the server config plus data sources.
#[derive(Debug)]
pub struct ServeOpts {
    /// Server configuration assembled from flags.
    pub config: ServeConfig,
    /// `--table NAME=PATH` pairs.
    pub tables: Vec<(String, String)>,
    /// `--demo NAME` datasets.
    pub demos: Vec<String>,
    /// `--demo-rows`.
    pub demo_rows: usize,
}

fn positive_secs(flag: &str, value: &str) -> Result<Duration, String> {
    let secs: f64 = value.parse().map_err(|e| format!("{flag}: {e}"))?;
    if !secs.is_finite() || secs <= 0.0 {
        return Err(format!("{flag}: expected positive seconds, got {secs}"));
    }
    Ok(Duration::from_secs_f64(secs))
}

fn nonneg(flag: &str, value: &str) -> Result<f64, String> {
    let v: f64 = value.parse().map_err(|e| format!("{flag}: {e}"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("{flag}: expected a non-negative number, got {v}"));
    }
    Ok(v)
}

/// Parses `acq-serve` flags. `Err` carries the message to print (usage on
/// `--help`).
pub fn parse_args<I: Iterator<Item = String>>(args: I) -> Result<ServeOpts, String> {
    let mut args = args.peekable();
    let mut opts = ServeOpts {
        config: ServeConfig {
            addr: "127.0.0.1:7171".to_string(),
            ..ServeConfig::default()
        },
        tables: Vec::new(),
        demos: Vec::new(),
        demo_rows: 50_000,
    };
    while let Some(a) = args.next() {
        let mut need = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--addr" => opts.config.addr = need("--addr")?,
            "--table" => {
                let spec = need("--table")?;
                let (name, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--table expects NAME=PATH, got {spec}"))?;
                opts.tables.push((name.to_string(), path.to_string()));
            }
            "--demo" => opts.demos.push(need("--demo")?),
            "--demo-rows" => {
                opts.demo_rows = need("--demo-rows")?
                    .parse()
                    .map_err(|e| format!("--demo-rows: {e}"))?;
            }
            "--layer" => {
                opts.config.layer = match need("--layer")?.as_str() {
                    "grid" => EvalLayerKind::GridIndex,
                    "cached" => EvalLayerKind::CachedScore,
                    "scan" => EvalLayerKind::Scan,
                    other => return Err(format!("unknown layer {other}")),
                };
            }
            "--gamma" => {
                opts.config.gamma = need("--gamma")?
                    .parse()
                    .map_err(|e| format!("--gamma: {e}"))?;
            }
            "--delta" => {
                opts.config.delta = need("--delta")?
                    .parse()
                    .map_err(|e| format!("--delta: {e}"))?;
            }
            "--max-deadline" => {
                let secs: f64 = need("--max-deadline")?
                    .parse()
                    .map_err(|e| format!("--max-deadline: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!(
                        "--max-deadline: expected positive seconds, got {secs}"
                    ));
                }
                opts.config.max_deadline = Duration::from_secs_f64(secs);
            }
            "--max-threads" => {
                opts.config.max_threads = need("--max-threads")?
                    .parse()
                    .map_err(|e| format!("--max-threads: {e}"))?;
            }
            "--max-concurrent" => {
                opts.config.max_concurrent = need("--max-concurrent")?
                    .parse()
                    .map_err(|e| format!("--max-concurrent: {e}"))?;
            }
            "--trace-capacity" => {
                opts.config.trace_capacity = need("--trace-capacity")?
                    .parse()
                    .map_err(|e| format!("--trace-capacity: {e}"))?;
            }
            "--recorder-cadence" => {
                opts.config.recorder_cadence =
                    positive_secs("--recorder-cadence", &need("--recorder-cadence")?)?;
            }
            "--recorder-capacity" => {
                opts.config.recorder_capacity = need("--recorder-capacity")?
                    .parse()
                    .map_err(|e| format!("--recorder-capacity: {e}"))?;
            }
            "--workers" => {
                opts.config.workers = need("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--accept-queue" => {
                opts.config.accept_queue = need("--accept-queue")?
                    .parse()
                    .map_err(|e| format!("--accept-queue: {e}"))?;
            }
            "--read-timeout" => {
                opts.config.read_timeout =
                    positive_secs("--read-timeout", &need("--read-timeout")?)?;
            }
            "--keep-alive" => {
                opts.config.keep_alive = positive_secs("--keep-alive", &need("--keep-alive")?)?;
            }
            "--max-queued" => {
                opts.config.max_queued = need("--max-queued")?
                    .parse()
                    .map_err(|e| format!("--max-queued: {e}"))?;
            }
            "--queue-wait" => {
                opts.config.queue_wait = positive_secs("--queue-wait", &need("--queue-wait")?)?;
            }
            "--client-rate" => {
                opts.config.client_rate = nonneg("--client-rate", &need("--client-rate")?)?;
            }
            "--client-burst" => {
                opts.config.client_burst = nonneg("--client-burst", &need("--client-burst")?)?;
            }
            "--global-rate" => {
                opts.config.global_rate = nonneg("--global-rate", &need("--global-rate")?)?;
            }
            "--global-burst" => {
                opts.config.global_burst = nonneg("--global-burst", &need("--global-burst")?)?;
            }
            "--degrade-watermark" => {
                let f = nonneg("--degrade-watermark", &need("--degrade-watermark")?)?;
                if f > 1.0 {
                    return Err(format!("--degrade-watermark: expected 0..=1, got {f}"));
                }
                opts.config.degrade_watermark = f;
            }
            "--degrade-factor" => {
                let f = nonneg("--degrade-factor", &need("--degrade-factor")?)?;
                if f > 1.0 {
                    return Err(format!("--degrade-factor: expected 0..=1, got {f}"));
                }
                opts.config.degrade_factor = f;
            }
            "--journal" => {
                opts.config.journal_path = Some(std::path::PathBuf::from(need("--journal")?));
            }
            "--journal-max-bytes" => {
                let n: u64 = need("--journal-max-bytes")?
                    .parse()
                    .map_err(|e| format!("--journal-max-bytes: {e}"))?;
                if n == 0 {
                    return Err("--journal-max-bytes: expected a positive size".to_string());
                }
                opts.config.journal_max_bytes = n;
            }
            "--journal-capacity" => {
                opts.config.journal_capacity = need("--journal-capacity")?
                    .parse()
                    .map_err(|e| format!("--journal-capacity: {e}"))?;
            }
            "--alerts" => {
                opts.config.alerts_path = Some(std::path::PathBuf::from(need("--alerts")?));
            }
            "--alert-interval" => {
                opts.config.alert_interval =
                    positive_secs("--alert-interval", &need("--alert-interval")?)?;
            }
            other => return Err(format!("unexpected argument {other}\n\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// Loads `--table` CSVs and `--demo` datasets into one catalog, mirroring
/// the one-shot CLI.
pub fn build_catalog(opts: &ServeOpts) -> Result<Catalog, String> {
    let mut catalog = Catalog::new();
    for (name, path) in &opts.tables {
        let table = csv::read_csv(name, path).map_err(|e| e.to_string())?;
        eprintln!(
            "loaded {name}: {} rows, schema {}",
            table.num_rows(),
            table.schema()
        );
        catalog.register(table).map_err(|e| e.to_string())?;
    }
    for demo in &opts.demos {
        let cfg = GenConfig::uniform(opts.demo_rows);
        match demo.as_str() {
            "users" => {
                catalog
                    .register(users::users(&cfg).map_err(|e| e.to_string())?)
                    .map_err(|e| e.to_string())?;
            }
            "patients" => {
                catalog
                    .register(patients::patients(&cfg).map_err(|e| e.to_string())?)
                    .map_err(|e| e.to_string())?;
            }
            "tpch" => {
                let tp = tpch::generate(&cfg).map_err(|e| e.to_string())?;
                for name in tp.table_names() {
                    catalog
                        .register((*tp.table(name).map_err(|e| e.to_string())?).clone())
                        .map_err(|e| e.to_string())?;
                }
            }
            other => {
                return Err(format!(
                    "unknown demo dataset {other} (users|patients|tpch)"
                ))
            }
        }
        eprintln!("generated demo dataset: {demo} ({} rows)", opts.demo_rows);
    }
    if catalog.is_empty() {
        return Err("no tables: pass --table NAME=PATH or --demo NAME".to_string());
    }
    Ok(catalog)
}

/// Parses `args`, builds the catalog, and serves until `POST /shutdown`.
pub fn run<I: Iterator<Item = String>>(args: I) -> Result<(), String> {
    let opts = parse_args(args)?;
    let catalog = build_catalog(&opts)?;
    let mut server = Server::start(opts.config, catalog).map_err(|e| e.to_string())?;
    eprintln!("acq-serve listening on http://{}", server.addr());
    server.join();
    eprintln!("acq-serve stopped");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ServeOpts, String> {
        parse_args(args.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn flags_override_defaults() {
        let opts = parse(&[
            "--addr",
            "127.0.0.1:0",
            "--demo",
            "users",
            "--demo-rows",
            "100",
            "--max-threads",
            "4",
        ])
        .unwrap();
        assert_eq!(opts.config.addr, "127.0.0.1:0");
        assert_eq!(opts.demos, vec!["users".to_string()]);
        assert_eq!(opts.demo_rows, 100);
        assert_eq!(opts.config.max_threads, 4);
    }

    #[test]
    fn unknown_flags_and_missing_values_error() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--gamma"]).is_err());
        assert!(parse(&["--help"]).unwrap_err().starts_with("usage:"));
    }

    #[test]
    fn overload_flags_parse_and_validate() {
        let opts = parse(&[
            "--workers",
            "4",
            "--accept-queue",
            "8",
            "--read-timeout",
            "2.5",
            "--keep-alive",
            "1",
            "--max-queued",
            "3",
            "--queue-wait",
            "0.25",
            "--client-rate",
            "10",
            "--client-burst",
            "5",
            "--global-rate",
            "100",
            "--global-burst",
            "50",
            "--degrade-watermark",
            "0.5",
            "--degrade-factor",
            "0.1",
        ])
        .unwrap();
        assert_eq!(opts.config.workers, 4);
        assert_eq!(opts.config.accept_queue, 8);
        assert_eq!(opts.config.read_timeout, Duration::from_millis(2500));
        assert_eq!(opts.config.keep_alive, Duration::from_secs(1));
        assert_eq!(opts.config.max_queued, 3);
        assert_eq!(opts.config.queue_wait, Duration::from_millis(250));
        assert_eq!(opts.config.client_rate, 10.0);
        assert_eq!(opts.config.client_burst, 5.0);
        assert_eq!(opts.config.global_rate, 100.0);
        assert_eq!(opts.config.global_burst, 50.0);
        assert_eq!(opts.config.degrade_watermark, 0.5);
        assert_eq!(opts.config.degrade_factor, 0.1);

        let rec = parse(&["--recorder-cadence", "0.5", "--recorder-capacity", "120"]).unwrap();
        assert_eq!(rec.config.recorder_cadence, Duration::from_millis(500));
        assert_eq!(rec.config.recorder_capacity, 120);
        assert!(parse(&["--recorder-cadence", "0"]).is_err());

        assert!(parse(&["--read-timeout", "0"]).is_err());
        assert!(parse(&["--queue-wait", "-1"]).is_err());
        assert!(parse(&["--client-rate", "-2"]).is_err());
        assert!(parse(&["--degrade-watermark", "1.5"]).is_err());
        assert!(parse(&["--degrade-factor", "nan"]).is_err());
    }

    #[test]
    fn ops_flags_parse_and_validate() {
        let opts = parse(&[
            "--journal",
            "/tmp/acq.journal",
            "--journal-max-bytes",
            "1024",
            "--journal-capacity",
            "16",
            "--alerts",
            "alerts.toml",
            "--alert-interval",
            "0.05",
        ])
        .unwrap();
        assert_eq!(
            opts.config.journal_path.as_deref(),
            Some(std::path::Path::new("/tmp/acq.journal"))
        );
        assert_eq!(opts.config.journal_max_bytes, 1024);
        assert_eq!(opts.config.journal_capacity, 16);
        assert_eq!(
            opts.config.alerts_path.as_deref(),
            Some(std::path::Path::new("alerts.toml"))
        );
        assert_eq!(opts.config.alert_interval, Duration::from_millis(50));
        assert!(parse(&["--journal-max-bytes", "0"]).is_err());
        assert!(parse(&["--alert-interval", "0"]).is_err());
        assert!(parse(&["--journal"]).is_err());
    }

    #[test]
    fn empty_catalog_is_rejected() {
        let opts = parse(&[]).unwrap();
        assert!(build_catalog(&opts).unwrap_err().contains("no tables"));
    }
}

//! Command-line entry point, shared by the `acq-serve` binary and the root
//! CLI's `acq serve` subcommand.

use std::time::Duration;

use acq_datagen::{patients, tpch, users, GenConfig};
use acq_engine::{csv, Catalog};
use acquire_core::EvalLayerKind;

use crate::server::Server;
use crate::state::ServeConfig;

/// Usage text for `acq-serve --help` (and `acq serve --help`).
pub const USAGE: &str = "usage: acq-serve [OPTIONS]

options:
  --addr HOST:PORT     bind address (default 127.0.0.1:7171; port 0 = ephemeral)
  --table NAME=PATH    load a CSV file as table NAME (repeatable)
  --demo NAME          generate a demo table: users | patients | tpch (repeatable)
  --demo-rows N        demo table size (default 50000)
  --layer KIND         evaluation layer: grid | cached | scan (default grid)
  --gamma G            default refinement threshold when a request omits it
  --delta D            default aggregate error threshold when a request omits it
  --max-deadline SECS  hard per-query wall-clock cap (default 30)
  --max-threads N      most worker threads one request may ask for (default 8)
  --max-concurrent N   in-flight requests before shedding with 503 (default 16)
  --trace-capacity N   per-query trace buffer capacity (default 10000)
  --help               this message

endpoints: POST /query[?explain=1]  GET /metrics /healthz /readyz /queries
           GET /trace/<id>  POST /shutdown

The request body for POST /query is JSON:
  {\"sql\": \"SELECT ... CONSTRAINT ...\", \"gamma\"?, \"delta\"?,
   \"norm\"? (\"l1\"|\"l2\"|\"linf\"), \"threads\"?, \"timeout_secs\"?,
   \"max_explored\"?, \"max_store_bytes\"?, \"top\"?}";

/// Parsed `acq-serve` options: the server config plus data sources.
#[derive(Debug)]
pub struct ServeOpts {
    /// Server configuration assembled from flags.
    pub config: ServeConfig,
    /// `--table NAME=PATH` pairs.
    pub tables: Vec<(String, String)>,
    /// `--demo NAME` datasets.
    pub demos: Vec<String>,
    /// `--demo-rows`.
    pub demo_rows: usize,
}

/// Parses `acq-serve` flags. `Err` carries the message to print (usage on
/// `--help`).
pub fn parse_args<I: Iterator<Item = String>>(args: I) -> Result<ServeOpts, String> {
    let mut args = args.peekable();
    let mut opts = ServeOpts {
        config: ServeConfig {
            addr: "127.0.0.1:7171".to_string(),
            ..ServeConfig::default()
        },
        tables: Vec::new(),
        demos: Vec::new(),
        demo_rows: 50_000,
    };
    while let Some(a) = args.next() {
        let mut need = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--addr" => opts.config.addr = need("--addr")?,
            "--table" => {
                let spec = need("--table")?;
                let (name, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--table expects NAME=PATH, got {spec}"))?;
                opts.tables.push((name.to_string(), path.to_string()));
            }
            "--demo" => opts.demos.push(need("--demo")?),
            "--demo-rows" => {
                opts.demo_rows = need("--demo-rows")?
                    .parse()
                    .map_err(|e| format!("--demo-rows: {e}"))?;
            }
            "--layer" => {
                opts.config.layer = match need("--layer")?.as_str() {
                    "grid" => EvalLayerKind::GridIndex,
                    "cached" => EvalLayerKind::CachedScore,
                    "scan" => EvalLayerKind::Scan,
                    other => return Err(format!("unknown layer {other}")),
                };
            }
            "--gamma" => {
                opts.config.gamma = need("--gamma")?
                    .parse()
                    .map_err(|e| format!("--gamma: {e}"))?;
            }
            "--delta" => {
                opts.config.delta = need("--delta")?
                    .parse()
                    .map_err(|e| format!("--delta: {e}"))?;
            }
            "--max-deadline" => {
                let secs: f64 = need("--max-deadline")?
                    .parse()
                    .map_err(|e| format!("--max-deadline: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!(
                        "--max-deadline: expected positive seconds, got {secs}"
                    ));
                }
                opts.config.max_deadline = Duration::from_secs_f64(secs);
            }
            "--max-threads" => {
                opts.config.max_threads = need("--max-threads")?
                    .parse()
                    .map_err(|e| format!("--max-threads: {e}"))?;
            }
            "--max-concurrent" => {
                opts.config.max_concurrent = need("--max-concurrent")?
                    .parse()
                    .map_err(|e| format!("--max-concurrent: {e}"))?;
            }
            "--trace-capacity" => {
                opts.config.trace_capacity = need("--trace-capacity")?
                    .parse()
                    .map_err(|e| format!("--trace-capacity: {e}"))?;
            }
            other => return Err(format!("unexpected argument {other}\n\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// Loads `--table` CSVs and `--demo` datasets into one catalog, mirroring
/// the one-shot CLI.
pub fn build_catalog(opts: &ServeOpts) -> Result<Catalog, String> {
    let mut catalog = Catalog::new();
    for (name, path) in &opts.tables {
        let table = csv::read_csv(name, path).map_err(|e| e.to_string())?;
        eprintln!(
            "loaded {name}: {} rows, schema {}",
            table.num_rows(),
            table.schema()
        );
        catalog.register(table).map_err(|e| e.to_string())?;
    }
    for demo in &opts.demos {
        let cfg = GenConfig::uniform(opts.demo_rows);
        match demo.as_str() {
            "users" => {
                catalog
                    .register(users::users(&cfg).map_err(|e| e.to_string())?)
                    .map_err(|e| e.to_string())?;
            }
            "patients" => {
                catalog
                    .register(patients::patients(&cfg).map_err(|e| e.to_string())?)
                    .map_err(|e| e.to_string())?;
            }
            "tpch" => {
                let tp = tpch::generate(&cfg).map_err(|e| e.to_string())?;
                for name in tp.table_names() {
                    catalog
                        .register((*tp.table(name).map_err(|e| e.to_string())?).clone())
                        .map_err(|e| e.to_string())?;
                }
            }
            other => {
                return Err(format!(
                    "unknown demo dataset {other} (users|patients|tpch)"
                ))
            }
        }
        eprintln!("generated demo dataset: {demo} ({} rows)", opts.demo_rows);
    }
    if catalog.is_empty() {
        return Err("no tables: pass --table NAME=PATH or --demo NAME".to_string());
    }
    Ok(catalog)
}

/// Parses `args`, builds the catalog, and serves until `POST /shutdown`.
pub fn run<I: Iterator<Item = String>>(args: I) -> Result<(), String> {
    let opts = parse_args(args)?;
    let catalog = build_catalog(&opts)?;
    let mut server = Server::start(opts.config, catalog).map_err(|e| e.to_string())?;
    eprintln!("acq-serve listening on http://{}", server.addr());
    server.join();
    eprintln!("acq-serve stopped");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ServeOpts, String> {
        parse_args(args.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn flags_override_defaults() {
        let opts = parse(&[
            "--addr",
            "127.0.0.1:0",
            "--demo",
            "users",
            "--demo-rows",
            "100",
            "--max-threads",
            "4",
        ])
        .unwrap();
        assert_eq!(opts.config.addr, "127.0.0.1:0");
        assert_eq!(opts.demos, vec!["users".to_string()]);
        assert_eq!(opts.demo_rows, 100);
        assert_eq!(opts.config.max_threads, 4);
    }

    #[test]
    fn unknown_flags_and_missing_values_error() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--gamma"]).is_err());
        assert!(parse(&["--help"]).unwrap_err().starts_with("usage:"));
    }

    #[test]
    fn empty_catalog_is_rejected() {
        let opts = parse(&[]).unwrap();
        assert!(build_catalog(&opts).unwrap_err().contains("no tables"));
    }
}

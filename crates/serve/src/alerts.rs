//! SLO alert engine: declarative rules over the flight-recorder windows.
//!
//! Rules live in a hand-rolled TOML subset (`alerts.toml`, parsed by
//! [`parse_alerts`] — `[[rule]]` array-of-tables with string / number /
//! boolean values only, same spirit as acq-lint's `Config::parse`). Two
//! rule kinds:
//!
//! - **threshold** — fires while `signal` compared against `threshold`
//!   (default op `>`) breaches over a single trailing `window_secs`.
//! - **burn_rate** — the multi-window SRE pattern: fires only while *both*
//!   a short and a long trailing window burn above `budget × factor`, so a
//!   brief spike (short window only) and a slow drift still inside recent
//!   budget (long window only) both stay quiet.
//!
//! Signals resolve through a probe closure supplied by the server:
//! `p99_latency_ms` reads the decaying request-latency histogram, and any
//! `<counter>_per_sec` name reads [`FlightRecorder::rate`] over the rule's
//! window — which covers shed/429 rates, fault rates, and the journal drop
//! counter exported as a recorder column.
//!
//! Each rule walks Inactive → Pending (breach observed, `for_secs` not yet
//! served) → Firing → Resolved (clear for `keep_firing_secs`). The engine
//! itself is clock-free: [`AlertEngine::evaluate`] takes elapsed time from
//! the caller, which keeps this file off the determinism lint's clock list
//! and makes the state machine unit-testable at exact tick boundaries.
//! Firing/resolved transitions are returned to the caller (the
//! `acq-serve-alerts` thread), which journals them and re-renders the
//! `acq_alert_firing{rule=…}` gauges.
//!
//! [`FlightRecorder::rate`]: acq_obs::FlightRecorder::rate

use std::collections::BTreeMap;
use std::time::Duration;

/// Schema version of the `GET /alerts` JSON rendering.
pub const ALERTS_VERSION: u32 = 1;

/// Default trailing window for threshold rules.
pub const DEFAULT_RULE_WINDOW: Duration = Duration::from_secs(10);

/// How a rule decides it is breaching.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleKind {
    /// Single-window comparison against a fixed bound.
    Threshold {
        /// Trailing window the signal is evaluated over.
        window: Duration,
        /// Comparison operator (`>`, `>=`, `<`, `<=`).
        op: Op,
        /// The bound.
        threshold: f64,
    },
    /// Multi-window burn rate: short AND long window above `budget * factor`.
    BurnRate {
        /// Sustainable signal level (the SLO budget).
        budget: f64,
        /// Burn multiplier that counts as "too fast".
        factor: f64,
        /// Short (spike-detection) window.
        short_window: Duration,
        /// Long (sustained-burn) window.
        long_window: Duration,
    },
}

/// Threshold comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `signal > threshold`
    Gt,
    /// `signal >= threshold`
    Ge,
    /// `signal < threshold`
    Lt,
    /// `signal <= threshold`
    Le,
}

impl Op {
    fn apply(self, value: f64, bound: f64) -> bool {
        match self {
            Op::Gt => value > bound,
            Op::Ge => value >= bound,
            Op::Lt => value < bound,
            Op::Le => value <= bound,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Lt => "<",
            Op::Le => "<=",
        }
    }
}

/// One declarative SLO rule from `alerts.toml`.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Rule name — the `rule` label on `acq_alert_firing` and in journal
    /// transition records.
    pub name: String,
    /// Signal name resolved by the server's probe (`p99_latency_ms` or any
    /// `<counter>_per_sec` recorder column).
    pub signal: String,
    /// Breach condition.
    pub kind: RuleKind,
    /// How long a breach must persist before the rule fires.
    pub for_duration: Duration,
    /// How long the signal must stay clear before a firing rule resolves.
    pub keep_firing: Duration,
}

impl AlertRule {
    /// The bound the observed value is compared against (for burn-rate
    /// rules, `budget × factor`).
    pub fn bound(&self) -> f64 {
        match &self.kind {
            RuleKind::Threshold { threshold, .. } => *threshold,
            RuleKind::BurnRate { budget, factor, .. } => budget * factor,
        }
    }
}

/// Where a rule is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Inactive,
    /// Breaching, but `for_duration` not yet served.
    Pending {
        since: Duration,
    },
    /// Alerting; `clear_since` tracks a candidate resolution.
    Firing {
        since: Duration,
        clear_since: Option<Duration>,
    },
}

/// A state edge the caller must journal and export.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// Rule name.
    pub rule: String,
    /// `true` = firing edge, `false` = resolved edge.
    pub firing: bool,
    /// Observed signal value at the edge.
    pub value: f64,
    /// The configured bound it was compared against.
    pub threshold: f64,
}

impl AlertTransition {
    /// The `kind:"alert"` journal NDJSON record for this edge
    /// (`schemas/journal.schema.json`).
    #[must_use]
    pub fn to_journal_record(&self, at_ms: u64) -> String {
        let finite = |v: f64| if v.is_finite() { v } else { 0.0 };
        format!(
            "{{\"v\":{},\"kind\":\"alert\",\"at_ms\":{at_ms},\"rule\":{},\
             \"transition\":\"{}\",\"value\":{},\"threshold\":{}}}",
            acq_obs::JOURNAL_VERSION,
            json_str(&self.rule),
            if self.firing { "firing" } else { "resolved" },
            fmt_f64(finite(self.value)),
            fmt_f64(finite(self.threshold)),
        )
    }
}

/// Point-in-time view of one rule, for `GET /alerts` and `/metrics`.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertView {
    /// Rule name.
    pub name: String,
    /// Signal name.
    pub signal: String,
    /// `"inactive"`, `"pending"`, or `"firing"`.
    pub state: &'static str,
    /// Milliseconds the rule has been in this state (0 for inactive).
    pub state_ms: u64,
    /// Last observed signal value (`None` until the signal resolves).
    pub value: Option<f64>,
    /// Configured bound.
    pub threshold: f64,
}

/// The evaluation loop's state: rules plus per-rule phases.
#[derive(Debug)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    phases: Vec<Phase>,
    last_values: Vec<Option<f64>>,
}

impl AlertEngine {
    /// An engine with every rule inactive.
    pub fn new(rules: Vec<AlertRule>) -> Self {
        let n = rules.len();
        Self {
            rules,
            phases: vec![Phase::Inactive; n],
            last_values: vec![None; n],
        }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Evaluates every rule at `now` (elapsed since process start), reading
    /// signals through `probe(signal, window)`. Returns the transitions
    /// taken this tick, in rule order. An unresolvable signal (probe returns
    /// `None`) is treated as not breaching — an absent metric must not page.
    pub fn evaluate(
        &mut self,
        now: Duration,
        probe: &dyn Fn(&str, Duration) -> Option<f64>,
    ) -> Vec<AlertTransition> {
        let mut transitions = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            let (breach, value) = match &rule.kind {
                RuleKind::Threshold {
                    window,
                    op,
                    threshold,
                } => {
                    let value = probe(&rule.signal, *window);
                    (value.is_some_and(|v| op.apply(v, *threshold)), value)
                }
                RuleKind::BurnRate {
                    budget,
                    factor,
                    short_window,
                    long_window,
                } => {
                    let bound = budget * factor;
                    let short = probe(&rule.signal, *short_window);
                    let long = probe(&rule.signal, *long_window);
                    let breach =
                        short.is_some_and(|v| v > bound) && long.is_some_and(|v| v > bound);
                    // Report the short window (the faster-moving signal).
                    (breach, short)
                }
            };
            self.last_values[i] = value;
            let phase = &mut self.phases[i];
            match (*phase, breach) {
                (Phase::Inactive, true) => {
                    if rule.for_duration.is_zero() {
                        *phase = Phase::Firing {
                            since: now,
                            clear_since: None,
                        };
                        transitions.push(AlertTransition {
                            rule: rule.name.clone(),
                            firing: true,
                            value: value.unwrap_or(0.0),
                            threshold: rule.bound(),
                        });
                    } else {
                        *phase = Phase::Pending { since: now };
                    }
                }
                (Phase::Inactive, false) => {}
                (Phase::Pending { since }, true) => {
                    if now.saturating_sub(since) >= rule.for_duration {
                        *phase = Phase::Firing {
                            since: now,
                            clear_since: None,
                        };
                        transitions.push(AlertTransition {
                            rule: rule.name.clone(),
                            firing: true,
                            value: value.unwrap_or(0.0),
                            threshold: rule.bound(),
                        });
                    }
                }
                (Phase::Pending { .. }, false) => *phase = Phase::Inactive,
                (Phase::Firing { since, .. }, true) => {
                    *phase = Phase::Firing {
                        since,
                        clear_since: None,
                    };
                }
                (Phase::Firing { since, clear_since }, false) => {
                    let clear = clear_since.unwrap_or(now);
                    if now.saturating_sub(clear) >= rule.keep_firing {
                        *phase = Phase::Inactive;
                        transitions.push(AlertTransition {
                            rule: rule.name.clone(),
                            firing: false,
                            value: value.unwrap_or(0.0),
                            threshold: rule.bound(),
                        });
                    } else {
                        *phase = Phase::Firing {
                            since,
                            clear_since: Some(clear),
                        };
                    }
                }
            }
        }
        transitions
    }

    /// Per-rule views at `now`, in rule order.
    pub fn views(&self, now: Duration) -> Vec<AlertView> {
        self.rules
            .iter()
            .zip(&self.phases)
            .zip(&self.last_values)
            .map(|((rule, phase), value)| {
                let (state, since) = match phase {
                    Phase::Inactive => ("inactive", None),
                    Phase::Pending { since } => ("pending", Some(*since)),
                    Phase::Firing { since, .. } => ("firing", Some(*since)),
                };
                AlertView {
                    name: rule.name.clone(),
                    signal: rule.signal.clone(),
                    state,
                    state_ms: since
                        .map(|s| now.saturating_sub(s).as_millis().min(u128::from(u64::MAX)) as u64)
                        .unwrap_or(0),
                    value: *value,
                    threshold: rule.bound(),
                }
            })
            .collect()
    }

    /// Names of currently firing rules, in rule order.
    pub fn firing(&self) -> Vec<&str> {
        self.rules
            .iter()
            .zip(&self.phases)
            .filter(|(_, p)| matches!(p, Phase::Firing { .. }))
            .map(|(r, _)| r.name.as_str())
            .collect()
    }

    /// Renders the `GET /alerts` JSON document.
    pub fn to_json(&self, now: Duration) -> String {
        let mut out = format!("{{\"version\":{ALERTS_VERSION},\"rules\":[");
        for (i, v) in self.views(now).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (kind, detail) = match &self.rules[i].kind {
                RuleKind::Threshold { window, op, .. } => (
                    "threshold",
                    format!(
                        "\"op\":\"{}\",\"window_ms\":{}",
                        op.as_str(),
                        window.as_millis()
                    ),
                ),
                RuleKind::BurnRate {
                    budget,
                    factor,
                    short_window,
                    long_window,
                } => (
                    "burn_rate",
                    format!(
                        "\"budget\":{},\"factor\":{},\"short_window_ms\":{},\"long_window_ms\":{}",
                        fmt_f64(*budget),
                        fmt_f64(*factor),
                        short_window.as_millis(),
                        long_window.as_millis()
                    ),
                ),
            };
            out.push_str(&format!(
                "{{\"name\":{},\"signal\":{},\"kind\":\"{kind}\",{detail},\
                 \"state\":\"{}\",\"state_ms\":{},\"value\":{},\"threshold\":{}}}",
                json_str(&v.name),
                json_str(&v.signal),
                v.state,
                v.state_ms,
                v.value.map_or("null".to_string(), fmt_f64),
                fmt_f64(v.threshold),
            ));
        }
        out.push_str("]}");
        out
    }

    /// Renders the `acq_alert_firing{rule=…}` gauge block for `/metrics`.
    pub fn render_prometheus(&self) -> String {
        let mut s = String::from(
            "# HELP acq_alert_firing Whether the named SLO rule is firing\n\
             # TYPE acq_alert_firing gauge\n",
        );
        for (rule, phase) in self.rules.iter().zip(&self.phases) {
            let v = i32::from(matches!(phase, Phase::Firing { .. }));
            s.push_str(&format!(
                "acq_alert_firing{{rule=\"{}\"}} {v}\n",
                rule.name.replace('"', "'")
            ));
        }
        s
    }
}

fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One parsed TOML value (the subset `alerts.toml` needs).
#[derive(Debug, Clone, PartialEq)]
enum TomlVal {
    Str(String),
    Num(f64),
    Bool(bool),
}

impl TomlVal {
    fn as_str(&self) -> Option<&str> {
        match self {
            TomlVal::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            TomlVal::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses `alerts.toml`: `[[rule]]` tables with `key = value` entries where
/// values are strings, numbers, or booleans. Unknown keys, malformed lines,
/// and semantically incomplete rules are hard errors — a typo'd alert file
/// must fail startup, not silently never page.
pub fn parse_alerts(text: &str) -> Result<Vec<AlertRule>, String> {
    let mut tables: Vec<BTreeMap<String, TomlVal>> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        if line == "[[rule]]" {
            tables.push(BTreeMap::new());
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("line {lineno}: only [[rule]] tables are supported"));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `key = value`"));
        };
        let Some(table) = tables.last_mut() else {
            return Err(format!(
                "line {lineno}: `{}` outside any [[rule]]",
                key.trim()
            ));
        };
        let value = parse_value(value.trim())
            .ok_or_else(|| format!("line {lineno}: unparseable value `{}`", value.trim()))?;
        table.insert(key.trim().to_string(), value);
    }
    tables
        .into_iter()
        .enumerate()
        .map(|(i, t)| build_rule(i, t))
        .collect()
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(s: &str) -> Option<TomlVal> {
    if let Some(rest) = s.strip_prefix('"') {
        let inner = rest.strip_suffix('"')?;
        if inner.contains('"') {
            return None;
        }
        return Some(TomlVal::Str(inner.to_string()));
    }
    match s {
        "true" => return Some(TomlVal::Bool(true)),
        "false" => return Some(TomlVal::Bool(false)),
        _ => {}
    }
    s.parse::<f64>()
        .ok()
        .filter(|n| n.is_finite())
        .map(TomlVal::Num)
}

fn build_rule(index: usize, table: BTreeMap<String, TomlVal>) -> Result<AlertRule, String> {
    let ctx = |key: &str| format!("rule #{}: `{key}`", index + 1);
    let get_str = |key: &str| -> Result<String, String> {
        table
            .get(key)
            .and_then(TomlVal::as_str)
            .map(String::from)
            .ok_or_else(|| format!("{} missing or not a string", ctx(key)))
    };
    let get_num = |key: &str| -> Result<f64, String> {
        table
            .get(key)
            .and_then(TomlVal::as_num)
            .ok_or_else(|| format!("{} missing or not a number", ctx(key)))
    };
    let opt_secs = |key: &str, default: Duration| -> Result<Duration, String> {
        match table.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_num()
                .filter(|n| *n >= 0.0)
                .map(Duration::from_secs_f64)
                .ok_or_else(|| format!("{} must be a non-negative number", ctx(key))),
        }
    };

    let name = get_str("name")?;
    let signal = get_str("signal")?;
    let kind_name = table
        .get("kind")
        .and_then(TomlVal::as_str)
        .unwrap_or("threshold");
    let kind = match kind_name {
        "threshold" => {
            let op = match table.get("op").and_then(TomlVal::as_str).unwrap_or(">") {
                ">" => Op::Gt,
                ">=" => Op::Ge,
                "<" => Op::Lt,
                "<=" => Op::Le,
                other => return Err(format!("{} unknown op `{other}`", ctx("op"))),
            };
            RuleKind::Threshold {
                window: opt_secs("window_secs", DEFAULT_RULE_WINDOW)?,
                op,
                threshold: get_num("threshold")?,
            }
        }
        "burn_rate" => {
            let short = opt_secs("short_window_secs", Duration::from_secs(10))?;
            let long = opt_secs("long_window_secs", Duration::from_secs(60))?;
            if short >= long {
                return Err(format!(
                    "rule #{}: short_window_secs must be below long_window_secs",
                    index + 1
                ));
            }
            RuleKind::BurnRate {
                budget: get_num("budget")?,
                factor: match table.get("factor") {
                    None => 1.0,
                    Some(v) => v
                        .as_num()
                        .filter(|n| *n > 0.0)
                        .ok_or_else(|| format!("{} must be a positive number", ctx("factor")))?,
                },
                short_window: short,
                long_window: long,
            }
        }
        other => return Err(format!("{} unknown kind `{other}`", ctx("kind"))),
    };
    let known = [
        "name",
        "signal",
        "kind",
        "op",
        "window_secs",
        "threshold",
        "budget",
        "factor",
        "short_window_secs",
        "long_window_secs",
        "for_secs",
        "keep_firing_secs",
    ];
    if let Some(unknown) = table.keys().find(|k| !known.contains(&k.as_str())) {
        return Err(format!("rule #{}: unknown key `{unknown}`", index + 1));
    }
    Ok(AlertRule {
        name,
        signal,
        kind,
        for_duration: opt_secs("for_secs", Duration::ZERO)?,
        keep_firing: opt_secs("keep_firing_secs", Duration::ZERO)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        # Page when we shed hard for 2s straight.
        [[rule]]
        name = "shed-rate-high"
        signal = "serve_shed_per_sec"   # recorder column
        threshold = 0.5
        window_secs = 5
        for_secs = 2
        keep_firing_secs = 3

        [[rule]]
        name = "latency-burn"
        kind = "burn_rate"
        signal = "p99_latency_ms"
        budget = 50
        factor = 2
        short_window_secs = 10
        long_window_secs = 60
    "#;

    #[test]
    fn parses_both_rule_kinds() {
        let rules = parse_alerts(SAMPLE).unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].name, "shed-rate-high");
        assert_eq!(
            rules[0].kind,
            RuleKind::Threshold {
                window: Duration::from_secs(5),
                op: Op::Gt,
                threshold: 0.5
            }
        );
        assert_eq!(rules[0].for_duration, Duration::from_secs(2));
        assert_eq!(rules[0].keep_firing, Duration::from_secs(3));
        assert_eq!(rules[1].bound(), 100.0, "budget × factor");
        assert!(matches!(rules[1].kind, RuleKind::BurnRate { .. }));
    }

    #[test]
    fn parser_rejects_typos_loudly() {
        for (src, needle) in [
            ("[[rule]]\nname = \"x\"\n", "signal"),
            ("[[rule]]\nname = \"x\"\nsignal = \"s\"\n", "threshold"),
            ("name = \"x\"\n", "outside any"),
            (
                "[[rule]]\nname = \"x\"\nsignal = \"s\"\nthreshold = 1\nbogus = 2\n",
                "unknown key",
            ),
            (
                "[[rule]]\nname = \"x\"\nsignal = \"s\"\nkind = \"mean\"\nthreshold = 1\n",
                "unknown kind",
            ),
            ("[rule]\n", "[[rule]]"),
            (
                "[[rule]]\nname = \"x\"\nsignal = \"s\"\nthreshold = banana\n",
                "unparseable",
            ),
            (
                "[[rule]]\nname = \"x\"\nsignal = \"s\"\nkind = \"burn_rate\"\nbudget = 1\n\
                 short_window_secs = 60\nlong_window_secs = 10\n",
                "below",
            ),
        ] {
            let err = parse_alerts(src).unwrap_err();
            assert!(err.contains(needle), "{src:?} -> {err}");
        }
    }

    fn threshold_rule(for_secs: u64, keep: u64) -> AlertRule {
        AlertRule {
            name: "r".into(),
            signal: "s".into(),
            kind: RuleKind::Threshold {
                window: Duration::from_secs(5),
                op: Op::Gt,
                threshold: 1.0,
            },
            for_duration: Duration::from_secs(for_secs),
            keep_firing: Duration::from_secs(keep),
        }
    }

    fn tick(engine: &mut AlertEngine, at_secs: u64, value: f64) -> Vec<AlertTransition> {
        engine.evaluate(Duration::from_secs(at_secs), &move |_, _| Some(value))
    }

    #[test]
    fn for_duration_gates_firing() {
        let mut e = AlertEngine::new(vec![threshold_rule(2, 0)]);
        assert!(tick(&mut e, 0, 5.0).is_empty(), "breach starts pending");
        assert_eq!(e.views(Duration::ZERO)[0].state, "pending");
        assert!(tick(&mut e, 1, 5.0).is_empty(), "for not yet served");
        let t = tick(&mut e, 2, 5.0);
        assert_eq!(t.len(), 1);
        assert!(t[0].firing);
        assert_eq!(t[0].threshold, 1.0);
        assert_eq!(e.firing(), vec!["r"]);
    }

    #[test]
    fn pending_resets_when_breach_clears() {
        let mut e = AlertEngine::new(vec![threshold_rule(2, 0)]);
        tick(&mut e, 0, 5.0);
        tick(&mut e, 1, 0.0); // clears while pending
        assert!(tick(&mut e, 3, 5.0).is_empty(), "for clock restarted");
        assert_eq!(e.firing().len(), 0);
    }

    #[test]
    fn keep_firing_holds_through_flapping() {
        let mut e = AlertEngine::new(vec![threshold_rule(0, 3)]);
        let t = tick(&mut e, 0, 5.0);
        assert!(t[0].firing);
        assert!(tick(&mut e, 1, 0.0).is_empty(), "clear but inside keep");
        assert!(
            tick(&mut e, 2, 5.0).is_empty(),
            "re-breach resets clear clock"
        );
        assert!(tick(&mut e, 3, 0.0).is_empty());
        assert!(
            tick(&mut e, 5, 0.0).is_empty(),
            "keep_firing not yet served"
        );
        let t = tick(&mut e, 6, 0.0);
        assert_eq!(t.len(), 1);
        assert!(!t[0].firing, "resolved after 3s continuously clear");
        assert!(e.firing().is_empty());
    }

    #[test]
    fn burn_rate_requires_both_windows() {
        let rule = AlertRule {
            name: "burn".into(),
            signal: "s".into(),
            kind: RuleKind::BurnRate {
                budget: 1.0,
                factor: 2.0,
                short_window: Duration::from_secs(10),
                long_window: Duration::from_secs(60),
            },
            for_duration: Duration::ZERO,
            keep_firing: Duration::ZERO,
        };
        let mut e = AlertEngine::new(vec![rule]);
        // Short spike only: long window still in budget → quiet.
        let t = e.evaluate(Duration::from_secs(1), &|_, w| {
            Some(if w <= Duration::from_secs(10) {
                9.0
            } else {
                0.5
            })
        });
        assert!(t.is_empty(), "{t:?}");
        // Both windows above budget × factor → fires.
        let t = e.evaluate(Duration::from_secs(2), &|_, _| Some(9.0));
        assert_eq!(t.len(), 1);
        assert!(t[0].firing);
        assert_eq!(t[0].threshold, 2.0);
    }

    #[test]
    fn missing_signal_never_pages_and_resolves_cleanly() {
        let mut e = AlertEngine::new(vec![threshold_rule(0, 0)]);
        let t = e.evaluate(Duration::from_secs(0), &|_, _| None);
        assert!(t.is_empty());
        tick(&mut e, 1, 5.0);
        assert_eq!(e.firing(), vec!["r"]);
        // Signal disappears while firing: treated as clear → resolves.
        let t = e.evaluate(Duration::from_secs(2), &|_, _| None);
        assert_eq!(t.len(), 1);
        assert!(!t[0].firing);
    }

    #[test]
    fn json_and_prometheus_renderings_track_state() {
        let mut e = AlertEngine::new(vec![threshold_rule(0, 0)]);
        tick(&mut e, 1, 5.0);
        let json = e.to_json(Duration::from_secs(2));
        let doc = acq_obs::json::parse(&json).unwrap();
        assert_eq!(
            doc.pointer("/rules/0/state").and_then(|v| v.as_str()),
            Some("firing")
        );
        assert_eq!(
            doc.pointer("/rules/0/value").and_then(|v| v.as_f64()),
            Some(5.0)
        );
        assert_eq!(
            doc.pointer("/rules/0/threshold").and_then(|v| v.as_f64()),
            Some(1.0)
        );
        assert!(e
            .render_prometheus()
            .contains("acq_alert_firing{rule=\"r\"} 1"));
        tick(&mut e, 3, 0.0);
        assert!(e
            .render_prometheus()
            .contains("acq_alert_firing{rule=\"r\"} 0"));
    }
}

//! The accept loop: bind, serve, drain, stop.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use acq_engine::Catalog;

use crate::handlers::handle;
use crate::http::{read_request, write_response, HttpError};
use crate::state::{ServeConfig, ServerState};

/// How often the accept loop polls the shutdown token while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// How long a connected client may take to send its request.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// A running server: the bound address plus the accept-loop thread.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and starts accepting in a background thread.
    pub fn start(config: ServeConfig, catalog: Catalog) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // Non-blocking accept so the loop can poll the shutdown token; each
        // accepted stream is switched back to blocking before use.
        listener.set_nonblocking(true)?;
        let state = Arc::new(ServerState::new(config, catalog));
        state.set_ready();
        let loop_state = Arc::clone(&state);
        let accept_thread = std::thread::Builder::new()
            .name("acq-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &loop_state))?;
        Ok(Server {
            addr,
            state,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, for embedding hosts and tests.
    #[must_use]
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Whether the server has stopped (shutdown requested and the accept
    /// loop exited or about to).
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.state.shutdown.is_cancelled()
    }

    /// Requests graceful shutdown and joins the accept loop. In-flight
    /// searches observe the cancelled token and return their anytime
    /// results; their responses are still written.
    pub fn shutdown(&mut self) {
        self.state.shutdown.cancel();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Blocks until the accept loop exits (i.e. until something cancels the
    /// shutdown token, e.g. `POST /shutdown`).
    pub fn join(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !state.shutdown.is_cancelled() {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_state = Arc::clone(state);
                let spawned = std::thread::Builder::new()
                    .name("acq-serve-conn".to_string())
                    .spawn(move || serve_connection(stream, &conn_state));
                match spawned {
                    Ok(h) => workers.push(h),
                    Err(_) => continue, // thread exhaustion: drop the connection
                }
                workers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Drain: in-flight requests observe the cancelled token and finish with
    // their anytime outcomes before the listener drops.
    for h in workers {
        let _ = h.join();
    }
}

fn serve_connection(mut stream: TcpStream, state: &Arc<ServerState>) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let req = match read_request(&mut stream, state.config.max_body_bytes, READ_TIMEOUT) {
        Ok(req) => req,
        Err(e) => {
            let (status, msg) = match &e {
                HttpError::TooLarge(cap) => (413, format!("body exceeds {cap} bytes")),
                HttpError::Malformed(what) => (400, what.clone()),
                HttpError::Io(_) => return, // client went away; nothing to say
            };
            let body = format!("{{\"error\":\"{}\"}}", acq_obs::snapshot::json_escape(&msg));
            let _ = write_response(&mut stream, status, "application/json", &body);
            return;
        }
    };
    let (status, content_type, body) = handle(state, &req);
    let _ = write_response(&mut stream, status, content_type, &body);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_on_ephemeral_port_and_shuts_down() {
        let mut server = Server::start(ServeConfig::default(), Catalog::new()).unwrap();
        assert_ne!(server.addr().port(), 0);
        assert!(server.state().is_ready());
        server.shutdown();
        assert!(server.is_shutdown());
    }
}

//! The serving core: a bounded acceptor feeding a fixed worker pool.
//!
//! One acceptor thread owns the listener and pushes accepted streams into
//! a bounded [`ConnQueue`]; a fixed pool of worker threads pops them and
//! runs the keep-alive session loop ([`serve_connection`]). Nothing is
//! spawned per connection, so overload cannot exhaust threads — it fills
//! the queue, and the acceptor then sheds further connections *honestly*:
//! a `503` with `Retry-After` is written on the accepted stream before it
//! closes, and `acq_serve_conn_rejected_total` counts it.
//!
//! Graceful shutdown drains: the acceptor stops first, workers then serve
//! every connection still in the queue (queries answer `503` because
//! readiness is revoked; non-query endpoints still work), in-flight
//! searches observe the cancelled token and return their partial anytime
//! results, and `Server::shutdown` joins every thread.

use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use acq_engine::Catalog;

use crate::handlers::handle;
use crate::http::{write_response, Conn, HttpError, Response};
use crate::progress::{progress_path_id, stream_progress};
use crate::state::{ServeConfig, ServerState};

/// How often the accept loop polls the shutdown token while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// How often queue waiters (workers) poll the shutdown token.
const QUEUE_POLL: Duration = Duration::from_millis(50);

/// How often the alert-evaluation thread polls the shutdown token between
/// evaluation ticks (sleeping whole `alert_interval`s would stall shutdown).
const ALERT_POLL: Duration = Duration::from_millis(25);

/// A bounded MPMC queue of accepted connections.
#[derive(Debug)]
struct ConnQueue {
    inner: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    capacity: usize,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues, or hands the stream back when full (the caller sheds it).
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut q = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if q.len() >= self.capacity {
            return Err(stream);
        }
        q.push_back(stream);
        drop(q);
        self.available.notify_one();
        Ok(())
    }

    /// Pops the next connection. During shutdown the queue still drains:
    /// `None` only once the queue is empty *and* the token is cancelled.
    fn pop(&self, state: &ServerState) -> Option<TcpStream> {
        let mut q = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(stream) = q.pop_front() {
                return Some(stream);
            }
            if state.shutdown.is_cancelled() {
                return None;
            }
            let (guard, _) = self
                .available
                .wait_timeout(q, QUEUE_POLL)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
    }
}

/// A running server: the bound address plus its threads.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: Option<JoinHandle<()>>,
    alert_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr`, spawns the worker pool, the acceptor, and (when
    /// `--alerts` is configured) the SLO alert-evaluation thread. An invalid
    /// ops config (unopenable journal, unparseable `alerts.toml`) fails the
    /// bind with `InvalidInput` rather than starting a server that silently
    /// neither journals nor pages.
    pub fn start(config: ServeConfig, catalog: Catalog) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // Non-blocking accept so the loop can poll the shutdown token; each
        // accepted stream is switched back to blocking before use.
        listener.set_nonblocking(true)?;
        let state = ServerState::try_new(config, catalog)
            .map(Arc::new)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let queue = Arc::new(ConnQueue::new(state.config.accept_queue.max(1)));

        let mut workers = Vec::with_capacity(state.config.workers.max(1));
        for i in 0..state.config.workers.max(1) {
            let worker_state = Arc::clone(&state);
            let worker_queue = Arc::clone(&queue);
            let spawned = std::thread::Builder::new()
                .name(format!("acq-serve-worker-{i}"))
                .spawn(move || worker_loop(&worker_queue, &worker_state));
            match spawned {
                Ok(h) => workers.push(h),
                Err(e) => {
                    // Fail closed at startup: release what was spawned.
                    state.shutdown.cancel();
                    for h in workers {
                        let _ = h.join();
                    }
                    return Err(e);
                }
            }
        }

        let alert_thread = if state.alerts.is_some() {
            let alert_state = Arc::clone(&state);
            let spawned = std::thread::Builder::new()
                .name("acq-serve-alerts".to_string())
                .spawn(move || alert_loop(&alert_state));
            match spawned {
                Ok(h) => Some(h),
                Err(e) => {
                    state.shutdown.cancel();
                    for h in workers {
                        let _ = h.join();
                    }
                    return Err(e);
                }
            }
        } else {
            None
        };

        state.set_ready();
        let loop_state = Arc::clone(&state);
        let accept_thread = std::thread::Builder::new()
            .name("acq-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &queue, &loop_state));
        let accept_thread = match accept_thread {
            Ok(h) => Some(h),
            Err(e) => {
                state.shutdown.cancel();
                for h in workers {
                    let _ = h.join();
                }
                if let Some(h) = alert_thread {
                    let _ = h.join();
                }
                return Err(e);
            }
        };
        Ok(Server {
            addr,
            state,
            accept_thread,
            alert_thread,
            workers,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, for embedding hosts and tests.
    #[must_use]
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Whether the server has stopped (shutdown requested and the accept
    /// loop exited or about to).
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.state.shutdown.is_cancelled()
    }

    /// Requests graceful shutdown and joins every thread: the acceptor
    /// stops taking connections, workers drain the queue (queued queries
    /// answer `503`, in-flight searches return anytime results), then exit.
    pub fn shutdown(&mut self) {
        self.state.shutdown.cancel();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.alert_thread.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }

    /// Blocks until every serving thread exits (i.e. until something
    /// cancels the shutdown token, e.g. `POST /shutdown`).
    pub fn join(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        if let Some(t) = self.alert_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, queue: &Arc<ConnQueue>, state: &Arc<ServerState>) {
    while !state.shutdown.is_cancelled() {
        match listener.accept() {
            Ok((stream, _)) => {
                if let Err(stream) = queue.push(stream) {
                    shed_connection(stream, state);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// The queue is full: answer `503` + `Retry-After` on the doorstep instead
/// of silently dropping the connection, and account for it.
fn shed_connection(stream: TcpStream, state: &Arc<ServerState>) {
    state.telemetry.admission.conn_rejected.inc();
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let resp = Response::json(503, "{\"error\":\"server saturated; connection shed\"}")
        .with_retry_after(1);
    if write_response(&stream, &resp, false).is_err() {
        return;
    }
    // Lingering close: the client's request bytes are still unread, and
    // closing now would RST the 503 out of its receive buffer — an honest
    // shed must actually arrive. Send our FIN, then drain what the client
    // wrote until it closes; the read timeout and iteration cap bound how
    // long a hostile trickler can pin the acceptor here.
    let _ = stream.shutdown(Shutdown::Write);
    let mut sink = [0u8; 1024];
    for _ in 0..32 {
        match (&stream).read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

fn worker_loop(queue: &Arc<ConnQueue>, state: &Arc<ServerState>) {
    while let Some(stream) = queue.pop(state) {
        serve_connection(&stream, state);
    }
}

/// The SLO alert-evaluation loop: every `alert_interval`, lock the engine,
/// probe each rule's signal over its window, and journal the firing /
/// resolved edges ([`crate::alerts::AlertEngine::evaluate`]). The lock is
/// shared only with read-side renderers (`/alerts`, `/metrics`), never a
/// query path. Runs until graceful shutdown, polling the token between
/// ticks so a long interval cannot stall `Server::shutdown`.
fn alert_loop(state: &Arc<ServerState>) {
    let Some(engine) = &state.alerts else {
        return;
    };
    let interval = state.config.alert_interval.max(Duration::from_millis(1));
    let mut next = state.now();
    while !state.shutdown.is_cancelled() {
        let now = state.now();
        if now < next {
            std::thread::sleep(ALERT_POLL.min(next - now));
            continue;
        }
        next = now + interval;
        let transitions = {
            let mut engine = engine.lock().unwrap_or_else(PoisonError::into_inner);
            engine.evaluate(now, &|signal, window| state.alert_signal(signal, window))
        };
        if let Some(ring) = state.journal_ring() {
            let at_ms = acq_obs::journal::unix_ms();
            for t in &transitions {
                ring.try_append(t.to_journal_record(at_ms));
            }
        }
    }
}

/// One connection session: up to `max_requests_per_conn` keep-alive
/// requests, each read under the total deadline, each answered honestly.
fn serve_connection(stream: &TcpStream, state: &Arc<ServerState>) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_write_timeout(Some(state.config.read_timeout));
    let peer = stream.peer_addr().ok().map(|a| a.ip());
    let cfg = &state.config;
    let mut conn = Conn::new(stream);
    let abort = || state.shutdown.is_cancelled();
    for served in 0..cfg.max_requests_per_conn {
        let req =
            match conn.read_request(cfg.max_body_bytes, cfg.read_timeout, cfg.keep_alive, &abort) {
                Ok(req) => req,
                Err(e) => {
                    let resp = match &e {
                        HttpError::Timeout => {
                            state.telemetry.admission.read_timeouts.inc();
                            Response::json(408, "{\"error\":\"request read deadline exceeded\"}")
                        }
                        HttpError::TooLarge(cap) => Response::json(
                            413,
                            format!("{{\"error\":\"request body exceeds {cap} bytes\"}}"),
                        ),
                        HttpError::Malformed(what) => Response::json(
                            400,
                            format!(
                                "{{\"error\":\"{}\"}}",
                                acq_obs::snapshot::json_escape(&format!(
                                    "malformed request: {what}"
                                ))
                            ),
                        ),
                        // Peer gone or keep-alive idled out: nothing to say.
                        HttpError::Closed | HttpError::Io(_) => return,
                    };
                    let _ = write_response(stream, &resp, false);
                    return;
                }
            };
        if served > 0 {
            state.telemetry.admission.keepalive_reuses.inc();
        }
        // Streaming bypass: `GET /query/<id>/progress` writes chunked
        // NDJSON on the socket directly, so it cannot go through the
        // buffered handle → write_response path. Errors (bad id, unknown
        // query) come back as ordinary responses and keep the session.
        if let Some(id) = progress_path_id(&req.method, &req.path) {
            state.telemetry.record_request(state.now());
            match stream_progress(state, stream, id) {
                Some(resp) => {
                    let keep = req.keep_alive()
                        && served + 1 < cfg.max_requests_per_conn
                        && !state.shutdown.is_cancelled();
                    if write_response(stream, &resp, keep).is_err() || !keep {
                        return;
                    }
                    continue;
                }
                // Chunked responses are Connection: close by construction.
                None => return,
            }
        }
        let resp = handle(state, &req, peer);
        let keep = req.keep_alive()
            && served + 1 < cfg.max_requests_per_conn
            && !state.shutdown.is_cancelled();
        if write_response(stream, &resp, keep).is_err() || !keep {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn starts_on_ephemeral_port_and_shuts_down() {
        let mut server = Server::start(ServeConfig::default(), Catalog::new()).unwrap();
        assert_ne!(server.addr().port(), 0);
        assert!(server.state().is_ready());
        server.shutdown();
        assert!(server.is_shutdown());
    }

    #[test]
    fn full_accept_queue_sheds_with_503_not_a_silent_drop() {
        // workers = 0 is clamped to 1, but that one worker never gets this
        // connection: capacity-1 queue is pre-filled by a parked stream.
        let config = ServeConfig {
            accept_queue: 1,
            workers: 1,
            keep_alive: Duration::from_secs(30),
            ..ServeConfig::default()
        };
        let server = Server::start(config, Catalog::new()).unwrap();
        let addr = server.addr();
        // The single worker parks on the first connection's keep-alive
        // wait; the second occupies the queue; the third must be shed.
        let _parked1 = TcpStream::connect(addr).unwrap();
        let _parked2 = TcpStream::connect(addr).unwrap();
        // Give the acceptor time to move parked1 to the worker and leave
        // parked2 in the queue, then flood until a shed is observed.
        let mut shed_body = None;
        for _ in 0..50 {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            s.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap();
            let mut raw = String::new();
            let _ = s.read_to_string(&mut raw);
            if raw.starts_with("HTTP/1.1 503") {
                shed_body = Some(raw);
                break;
            }
        }
        let raw = shed_body.expect("flooding a 1-deep queue must shed");
        assert!(raw.contains("Retry-After: 1\r\n"), "{raw}");
        assert!(raw.contains("connection shed"), "{raw}");
        assert!(server.state().telemetry.admission.conn_rejected.get() >= 1);
    }
}

//! A minimal HTTP/1.1 layer over `std::net::TcpStream`.
//!
//! Hand-rolled on purpose — the workspace's no-external-deps house style —
//! and deliberately small: one request per connection (`Connection: close`),
//! the only headers honoured are `Content-Length` (bounded) and the request
//! line, and everything else is passed through untouched. That covers every
//! client the service targets: `curl`, Prometheus scrapers, and the repo's
//! own tests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Longest accepted header section, request line included.
const MAX_HEADER_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Raw query string after `?`, or empty.
    pub query: String,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Whether the query string contains `key=1` or a bare `key` flag.
    pub fn flag(&self, key: &str) -> bool {
        self.query
            .split('&')
            .any(|kv| kv == key || kv == format!("{key}=1") || kv == format!("{key}=true"))
    }
}

/// Errors surfaced to the client as a 4xx.
#[derive(Debug)]
#[non_exhaustive]
pub enum HttpError {
    /// Malformed request line or headers.
    Malformed(String),
    /// Body longer than the server accepts.
    TooLarge(usize),
    /// Socket-level failure.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Malformed(what) => write!(f, "malformed request: {what}"),
            Self::TooLarge(cap) => write!(f, "request body exceeds {cap} bytes"),
            Self::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Reads and parses one request from `stream`, rejecting bodies longer than
/// `max_body`. The read timeout bounds how long a silent client can pin a
/// connection thread.
pub fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
    read_timeout: Duration,
) -> Result<Request, HttpError> {
    stream.set_read_timeout(Some(read_timeout))?;
    let mut reader = BufReader::new(stream);

    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length = 0usize;
    let mut header_bytes = line.len();
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::Malformed("header section too long".into()));
        }
        let trimmed = header.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad Content-Length".into()))?;
            }
        }
    }
    if content_length > max_body {
        return Err(HttpError::TooLarge(max_body));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// Writes one response and flushes. `Connection: close` always: the
/// accept loop hands out one request per connection.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &str, max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
            s.flush().unwrap();
            s // keep alive until the server has read
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn, max_body, Duration::from_secs(2));
        drop(client.join().unwrap());
        req
    }

    #[test]
    fn parses_request_line_query_and_body() {
        let req = roundtrip(
            "POST /query?explain=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.query, "explain=1");
        assert!(req.flag("explain"));
        assert!(!req.flag("verbose"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_oversized_bodies() {
        let err = roundtrip("POST /query HTTP/1.1\r\nContent-Length: 100\r\n\r\n", 10).unwrap_err();
        assert!(matches!(err, HttpError::TooLarge(10)), "{err}");
    }

    #[test]
    fn get_without_body_parses() {
        let req = roundtrip("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }
}

//! A minimal HTTP/1.1 layer over `std::net::TcpStream`.
//!
//! Hand-rolled on purpose — the workspace's no-external-deps house style —
//! and deliberately small: keep-alive per HTTP/1.1 defaults, the only
//! headers honoured are `Content-Length` (bounded), `Connection` and the
//! deadline header consumed by the handlers, and everything else is passed
//! through untouched. That covers every client the service targets:
//! `curl`, Prometheus scrapers, load generators and the repo's own tests.
//!
//! The read path is overload-hardened: [`Conn::read_request`] enforces one
//! *total* deadline from the first byte of a request to its last, re-arming
//! the socket timeout with the remaining budget before every `recv`. A
//! slowloris client that trickles one header byte per poll therefore still
//! exhausts the budget and gets [`HttpError::Timeout`] (answered `408`),
//! instead of resetting a per-`recv` timer forever. Waiting for the *first*
//! byte is separate (`idle_timeout`): expiring there is a normal keep-alive
//! close ([`HttpError::Closed`]), not a client error.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Longest accepted header section, request line included.
const MAX_HEADER_BYTES: usize = 16 * 1024;

/// How often the first-byte wait wakes to poll the abort hook.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// After abort (shutdown) flips, how long the first-byte wait still accepts
/// bytes already in flight, so drained connections get an honest `503`
/// instead of a silent close.
const SHUTDOWN_GRACE: Duration = Duration::from_millis(200);

/// Read-buffer size; requests larger than this just take several `recv`s.
const READ_BUF: usize = 4096;

/// The Prometheus text exposition content type `/metrics` must serve —
/// scrapers negotiate on the `version` parameter, so a bare `text/plain`
/// is out of spec.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// The NDJSON content type used by the streaming progress endpoint.
pub const NDJSON_CONTENT_TYPE: &str = "application/x-ndjson";

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Raw query string after `?`, or empty.
    pub query: String,
    /// Headers in arrival order, names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether HTTP/1.1 keep-alive semantics apply (version + `Connection`).
    keep_alive: bool,
}

impl Request {
    /// Whether the query string contains `key=1` or a bare `key` flag.
    pub fn flag(&self, key: &str) -> bool {
        self.query
            .split('&')
            .any(|kv| kv == key || kv == format!("{key}=1") || kv == format!("{key}=true"))
    }

    /// Value of query parameter `key` (`?key=value`), if present. A bare
    /// `key` with no `=` yields an empty string.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|kv| {
            let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
            (k == key).then_some(v)
        })
    }

    /// First value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection may serve another request after this one:
    /// HTTP/1.1 unless `Connection: close`, HTTP/1.0 only with an explicit
    /// `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        self.keep_alive
    }
}

/// Errors from the read path; each maps to one connection outcome.
#[derive(Debug)]
#[non_exhaustive]
pub enum HttpError {
    /// Malformed request line or headers — answered `400`.
    Malformed(String),
    /// Body longer than the server accepts — answered `413`.
    TooLarge(usize),
    /// A request started arriving but missed the total read deadline
    /// (slowloris headers, stalled body) — answered `408`.
    Timeout,
    /// The peer went away (or keep-alive idled out) before sending a
    /// request — close silently, there is nobody to answer.
    Closed,
    /// Socket-level failure mid-request.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Malformed(what) => write!(f, "malformed request: {what}"),
            Self::TooLarge(cap) => write!(f, "request body exceeds {cap} bytes"),
            Self::Timeout => write!(f, "request read deadline exceeded"),
            Self::Closed => write!(f, "peer closed the connection"),
            Self::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// A buffered connection reader that carries leftover bytes across
/// requests, so pipelined keep-alive clients are read correctly.
pub struct Conn<'a> {
    stream: &'a TcpStream,
    buf: [u8; READ_BUF],
    pos: usize,
    len: usize,
}

impl<'a> Conn<'a> {
    /// Wraps a blocking stream. The stream's read timeout is managed by
    /// this reader from here on.
    pub fn new(stream: &'a TcpStream) -> Self {
        Self {
            stream,
            buf: [0; READ_BUF],
            pos: 0,
            len: 0,
        }
    }

    fn buffered(&self) -> bool {
        self.pos < self.len
    }

    /// One `recv` bounded by `deadline`; returns the byte count (0 = EOF).
    /// Precondition: the buffer is drained.
    fn fill(&mut self, deadline: Instant) -> Result<usize, HttpError> {
        let now = Instant::now();
        if now >= deadline {
            return Err(HttpError::Timeout);
        }
        // Re-arm with the *remaining* budget: this is what defeats
        // slowloris — each byte received does not reset the clock.
        self.stream
            .set_read_timeout(Some((deadline - now).max(Duration::from_millis(1))))?;
        loop {
            match (&mut &*self.stream).read(&mut self.buf) {
                Ok(n) => {
                    self.pos = 0;
                    self.len = n;
                    return Ok(n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
                Err(e) => return Err(HttpError::Io(e)),
            }
        }
    }

    fn next_byte(&mut self, deadline: Instant) -> Result<Option<u8>, HttpError> {
        if !self.buffered() && self.fill(deadline)? == 0 {
            return Ok(None);
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(Some(b))
    }

    /// One `\n`-terminated line with the terminator (and a preceding `\r`)
    /// stripped. EOF mid-line is malformed: the request already started.
    fn read_line(
        &mut self,
        deadline: Instant,
        header_bytes: &mut usize,
    ) -> Result<String, HttpError> {
        let mut line = Vec::new();
        loop {
            match self.next_byte(deadline)? {
                None => return Err(HttpError::Malformed("unexpected end of request".into())),
                Some(b'\n') => break,
                Some(b) => line.push(b),
            }
            *header_bytes += 1;
            if *header_bytes > MAX_HEADER_BYTES {
                return Err(HttpError::Malformed("header section too long".into()));
            }
        }
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        String::from_utf8(line).map_err(|_| HttpError::Malformed("header is not UTF-8".into()))
    }

    fn read_exact(&mut self, out: &mut [u8], deadline: Instant) -> Result<(), HttpError> {
        let mut filled = 0;
        while filled < out.len() {
            if !self.buffered() && self.fill(deadline)? == 0 {
                return Err(HttpError::Malformed(
                    "body shorter than Content-Length".into(),
                ));
            }
            let n = (self.len - self.pos).min(out.len() - filled);
            out[filled..filled + n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
            self.pos += n;
            filled += n;
        }
        Ok(())
    }

    /// Blocks until the first byte of the next request is available, up to
    /// `idle_timeout`, polling `abort` every [`IDLE_POLL`]. Once `abort`
    /// flips, bytes already in flight are still accepted for a short grace
    /// window so the request can be answered honestly.
    fn await_request(
        &mut self,
        idle_timeout: Duration,
        abort: &dyn Fn() -> bool,
    ) -> Result<(), HttpError> {
        if self.buffered() {
            return Ok(()); // pipelined bytes from the previous recv
        }
        let idle_deadline = Instant::now() + idle_timeout;
        let mut grace: Option<Instant> = None;
        loop {
            let now = Instant::now();
            if grace.is_none() && abort() {
                grace = Some(now + SHUTDOWN_GRACE);
            }
            let deadline = grace.map_or(idle_deadline, |g| g.min(idle_deadline));
            if now >= deadline {
                return Err(HttpError::Closed);
            }
            let slice = now + (deadline - now).min(IDLE_POLL);
            match self.fill(slice) {
                Ok(0) => return Err(HttpError::Closed),
                Ok(_) => return Ok(()),
                Err(HttpError::Timeout) => continue,
                // Reset while idle: nothing to answer.
                Err(HttpError::Io(_)) => return Err(HttpError::Closed),
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads and parses one request. `read_timeout` is the total budget
    /// from first byte to end of body; `idle_timeout` bounds the wait for
    /// the first byte (keep-alive); `abort` ends the idle wait early
    /// (graceful shutdown). Bodies longer than `max_body` are rejected.
    pub fn read_request(
        &mut self,
        max_body: usize,
        read_timeout: Duration,
        idle_timeout: Duration,
        abort: &dyn Fn() -> bool,
    ) -> Result<Request, HttpError> {
        self.await_request(idle_timeout, abort)?;
        let deadline = Instant::now() + read_timeout;
        let mut header_bytes = 0usize;

        let line = self.read_line(deadline, &mut header_bytes)?;
        let mut parts = line.split_whitespace();
        let method = parts
            .next()
            .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_alphabetic()))
            .ok_or_else(|| HttpError::Malformed("bad request line".into()))?
            .to_ascii_uppercase();
        let target = parts
            .next()
            .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
        let version = parts.next().unwrap_or("HTTP/1.0");
        if !version.starts_with("HTTP/") {
            return Err(HttpError::Malformed(format!("bad version {version}")));
        }
        let http11 = version != "HTTP/1.0";
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (target.to_string(), String::new()),
        };

        let mut headers: Vec<(String, String)> = Vec::new();
        let mut content_length = 0usize;
        loop {
            let header = self.read_line(deadline, &mut header_bytes)?;
            if header.is_empty() {
                break;
            }
            let Some((name, value)) = header.split_once(':') else {
                return Err(HttpError::Malformed("header without a colon".into()));
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad Content-Length".into()))?;
            }
            headers.push((name, value));
        }
        if content_length > max_body {
            return Err(HttpError::TooLarge(max_body));
        }
        let mut body = vec![0u8; content_length];
        self.read_exact(&mut body, deadline)?;

        let connection = headers
            .iter()
            .find(|(n, _)| n == "connection")
            .map(|(_, v)| v.to_ascii_lowercase());
        let keep_alive = match connection.as_deref() {
            Some("close") => false,
            Some("keep-alive") => true,
            _ => http11,
        };
        Ok(Request {
            method,
            path,
            query,
            headers,
            body,
            keep_alive,
        })
    }
}

/// One response, ready to serialize. Built by the handlers; the connection
/// loop decides the `Connection` header.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// Optional `Retry-After` (seconds) — set on 429/503 load sheds so
    /// honest clients know when to come back.
    pub retry_after: Option<u32>,
}

impl Response {
    /// A response with no `Retry-After`.
    pub fn new(status: u16, content_type: &'static str, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type,
            body: body.into(),
            retry_after: None,
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self::new(status, "application/json", body)
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self::new(status, "text/plain", body)
    }

    /// Attaches a `Retry-After: secs` header.
    #[must_use]
    pub fn with_retry_after(mut self, secs: u32) -> Self {
        self.retry_after = Some(secs);
        self
    }
}

/// Reason phrase for every status this server can send.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        410 => "Gone",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one response and flushes. `keep_alive` picks the `Connection`
/// header; the caller closes the stream when it is `false`.
pub fn write_response(
    mut stream: &TcpStream,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let retry = resp
        .retry_after
        .map(|s| format!("Retry-After: {s}\r\n"))
        .unwrap_or_default();
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{retry}Connection: {}\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

/// An in-flight HTTP/1.1 chunked-transfer response.
///
/// Buffered responses carry `Content-Length`; streaming endpoints (NDJSON
/// progress) cannot know their length up front, so they use chunked
/// transfer encoding instead: each [`chunk`] writes a `{len:x}\r\n…\r\n`
/// frame and [`finish`] writes the `0\r\n\r\n` terminator. The head pins
/// `Connection: close` — a stream's natural end is the terminator, and
/// closing keeps the connection loop out of the streaming path entirely.
///
/// Dropping without [`finish`] leaves the stream unterminated, which a
/// well-behaved client detects as a truncated body — the honest signal for
/// an aborted stream.
///
/// [`chunk`]: ChunkedResponse::chunk
/// [`finish`]: ChunkedResponse::finish
pub struct ChunkedResponse<'a> {
    stream: &'a TcpStream,
}

impl<'a> ChunkedResponse<'a> {
    /// Writes the response head and arms chunked encoding.
    pub fn begin(
        mut stream: &'a TcpStream,
        status: u16,
        content_type: &str,
    ) -> std::io::Result<Self> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {content_type}\r\n\
             Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status,
            reason(status),
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(Self { stream })
    }

    /// Writes one chunk and flushes so the client sees it immediately.
    /// Empty payloads are skipped — a zero-length chunk is the terminator.
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        let mut stream = self.stream;
        stream.write_all(format!("{:x}\r\n", data.len()).as_bytes())?;
        stream.write_all(data)?;
        stream.write_all(b"\r\n")?;
        stream.flush()
    }

    /// Writes the terminating zero-length chunk.
    pub fn finish(self) -> std::io::Result<()> {
        let mut stream = self.stream;
        stream.write_all(b"0\r\n\r\n")?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::sync::mpsc;

    const NO_ABORT: fn() -> bool = || false;

    /// Sends `raw`, reads one request server-side, keeps the client socket
    /// alive until the server is done.
    fn roundtrip(raw: &str, max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
            s.flush().unwrap();
            let _ = done_rx.recv(); // hold the socket open until read returns
        });
        let (stream, _) = listener.accept().unwrap();
        let mut conn = Conn::new(&stream);
        let req = conn.read_request(
            max_body,
            Duration::from_secs(2),
            Duration::from_secs(2),
            &NO_ABORT,
        );
        let _ = done_tx.send(());
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_request_line_query_headers_and_body() {
        let req = roundtrip(
            "POST /query?explain=1 HTTP/1.1\r\nHost: x\r\nX-ACQ-Deadline-Ms: 250\r\n\
             Content-Length: 5\r\n\r\nhello",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.query, "explain=1");
        assert!(req.flag("explain"));
        assert!(!req.flag("verbose"));
        assert_eq!(req.header("x-acq-deadline-ms"), Some("250"));
        assert_eq!(req.header("X-ACQ-Deadline-Ms"), Some("250"));
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_header_and_version_drive_keep_alive() {
        let close = roundtrip("GET / HTTP/1.1\r\nConnection: close\r\n\r\n", 64).unwrap();
        assert!(!close.keep_alive());
        let old = roundtrip("GET / HTTP/1.0\r\nHost: x\r\n\r\n", 64).unwrap();
        assert!(!old.keep_alive(), "HTTP/1.0 defaults to close");
        let old_ka = roundtrip("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", 64).unwrap();
        assert!(old_ka.keep_alive());
    }

    #[test]
    fn rejects_oversized_bodies_and_garbage() {
        let err = roundtrip("POST /query HTTP/1.1\r\nContent-Length: 100\r\n\r\n", 10).unwrap_err();
        assert!(matches!(err, HttpError::TooLarge(10)), "{err}");
        let err = roundtrip("\x16\x03\x01\x02garbage\r\n\r\n", 10).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err}");
        let err = roundtrip("GET / FTP/9.9\r\n\r\n", 10).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err}");
    }

    #[test]
    fn stalled_request_times_out_and_pure_idle_closes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Half a request line, then silence: the total deadline fires.
            s.write_all(b"POST /qu").unwrap();
            s.flush().unwrap();
            let _ = done_rx.recv();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut conn = Conn::new(&stream);
        let err = conn
            .read_request(
                64,
                Duration::from_millis(150),
                Duration::from_secs(2),
                &NO_ABORT,
            )
            .unwrap_err();
        assert!(matches!(err, HttpError::Timeout), "{err}");
        // A second read on the now-quiet connection idles out silently.
        let err = conn
            .read_request(
                64,
                Duration::from_millis(150),
                Duration::from_millis(150),
                &NO_ABORT,
            )
            .unwrap_err();
        assert!(matches!(err, HttpError::Closed), "{err}");
        let _ = done_tx.send(());
        client.join().unwrap();
    }

    #[test]
    fn abort_hook_ends_the_idle_wait() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let mut conn = Conn::new(&stream);
        let t0 = Instant::now();
        let err = conn
            .read_request(64, Duration::from_secs(5), Duration::from_secs(30), &|| {
                true
            })
            .unwrap_err();
        assert!(matches!(err, HttpError::Closed), "{err}");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "abort must beat the idle timeout, took {:?}",
            t0.elapsed()
        );
        drop(client);
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(
                b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
                  GET /b HTTP/1.1\r\nHost: x\r\n\r\n",
            )
            .unwrap();
            s.flush().unwrap();
            let _ = done_rx.recv();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut conn = Conn::new(&stream);
        let first = conn
            .read_request(
                64,
                Duration::from_secs(2),
                Duration::from_secs(2),
                &NO_ABORT,
            )
            .unwrap();
        assert_eq!(
            (first.path.as_str(), first.body.as_slice()),
            ("/a", &b"hi"[..])
        );
        let second = conn
            .read_request(
                64,
                Duration::from_secs(2),
                Duration::from_secs(2),
                &NO_ABORT,
            )
            .unwrap();
        assert_eq!(second.path, "/b");
        assert!(second.body.is_empty());
        let _ = done_tx.send(());
        client.join().unwrap();
    }

    #[test]
    fn query_params_parse_values_and_bare_keys() {
        let req = roundtrip(
            "GET /timeseries?window=15&format=chrome&bare HTTP/1.1\r\nHost: x\r\n\r\n",
            64,
        )
        .unwrap();
        assert_eq!(req.param("window"), Some("15"));
        assert_eq!(req.param("format"), Some("chrome"));
        assert_eq!(req.param("bare"), Some(""));
        assert_eq!(req.param("missing"), None);
    }

    #[test]
    fn chunked_responses_frame_and_terminate() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut raw = String::new();
            s.read_to_string(&mut raw).unwrap();
            raw
        });
        let (stream, _) = listener.accept().unwrap();
        let mut resp = ChunkedResponse::begin(&stream, 200, NDJSON_CONTENT_TYPE).unwrap();
        resp.chunk(b"{\"layer\":1}\n").unwrap();
        resp.chunk(b"").unwrap(); // empty payloads must not terminate the stream
        resp.chunk(b"{\"layer\":2}\n").unwrap();
        resp.finish().unwrap();
        drop(stream);
        let raw = reader.join().unwrap();
        assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"), "{raw}");
        assert!(
            raw.contains("Transfer-Encoding: chunked\r\n") && !raw.contains("Content-Length"),
            "{raw}"
        );
        assert!(raw.contains("Connection: close\r\n"), "{raw}");
        // 12 bytes per line -> hex "c" framing, then the terminator.
        assert!(raw.contains("c\r\n{\"layer\":1}\n\r\n"), "{raw}");
        assert!(raw.contains("c\r\n{\"layer\":2}\n\r\n"), "{raw}");
        assert!(raw.ends_with("0\r\n\r\n"), "{raw}");
    }

    #[test]
    fn reason_phrases_cover_every_emitted_status() {
        for (status, phrase) in [
            (200, "OK"),
            (202, "Accepted"),
            (400, "Bad Request"),
            (404, "Not Found"),
            (405, "Method Not Allowed"),
            (408, "Request Timeout"),
            (413, "Payload Too Large"),
            (429, "Too Many Requests"),
            (500, "Internal Server Error"),
            (503, "Service Unavailable"),
        ] {
            assert_eq!(reason(status), phrase);
        }
        assert_eq!(reason(418), "Unknown");
    }

    #[test]
    fn responses_serialize_with_retry_after_and_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut raw = String::new();
            s.read_to_string(&mut raw).unwrap();
            raw
        });
        let (stream, _) = listener.accept().unwrap();
        let resp = Response::json(429, "{\"error\":\"rate limited\"}").with_retry_after(2);
        write_response(&stream, &resp, false).unwrap();
        drop(stream);
        let raw = reader.join().unwrap();
        assert!(
            raw.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{raw}"
        );
        assert!(raw.contains("Retry-After: 2\r\n"), "{raw}");
        assert!(raw.contains("Connection: close\r\n"), "{raw}");
        assert!(raw.ends_with("{\"error\":\"rate limited\"}"), "{raw}");
    }
}

//! The self-contained live dashboard served at `GET /dashboard`.
//!
//! One hand-written HTML page — inline CSS and JS, zero external requests
//! (no CDN, no fonts, no framework) — that polls the server's own JSON
//! endpoints (`/timeseries`, `/alerts`, `/queries`) every two seconds and
//! renders:
//!
//! - **alert badges** — one per `alerts.toml` rule, state shown as icon +
//!   label (never color alone) in the reserved status palette;
//! - **stat tiles** — trailing-window rates (requests, errors, shed, 429s,
//!   journal drops) straight from the `/timeseries` `rates` header, plus
//!   in-flight and firing counts;
//! - **sparklines** — one single-series SVG line per recorder column of
//!   interest, delta-encoded samples drawn as-is, with a shared
//!   crosshair + tooltip hover layer and a direct label on the last value;
//! - **a recent-queries table** — the accessible table view of the same
//!   activity the charts summarize.
//!
//! Colors follow the role system: one categorical series hue for every
//! sparkline (single-series charts need no legend — the title names the
//! series), status colors reserved for alert state, text always in ink
//! tokens. Light and dark are both first-class; dark swaps tokens via
//! `prefers-color-scheme`.

/// The complete `GET /dashboard` document.
pub const DASHBOARD_HTML: &str = r##"<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>acq-serve dashboard</title>
<style>
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7; --ring: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --status-good: #0ca30c; --status-warn: #fab219; --status-crit: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835; --ring: rgba(255,255,255,0.10);
    --series-1: #3987e5;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 16px 20px 40px; background: var(--page); color: var(--ink-1);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
header { display: flex; align-items: baseline; gap: 12px; margin-bottom: 12px; }
h1 { font-size: 18px; margin: 0; }
h2 { font-size: 13px; font-weight: 600; color: var(--ink-2); margin: 18px 0 8px;
     text-transform: uppercase; letter-spacing: .04em; }
#status { color: var(--muted); font-size: 12px; }
#status.err { color: var(--status-crit); }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--ring); border-radius: 8px;
  padding: 10px 14px; min-width: 128px;
}
.tile .v { font-size: 22px; font-weight: 600; }
.tile .k { font-size: 12px; color: var(--ink-2); }
.badge { display: flex; align-items: center; gap: 8px; }
.badge .dot { font-size: 15px; }
.badge.firing .dot { color: var(--status-crit); }
.badge.pending .dot { color: var(--status-warn); }
.badge.inactive .dot { color: var(--status-good); }
.badge .meta { color: var(--muted); font-size: 12px; }
.sparks { display: flex; flex-wrap: wrap; gap: 10px; }
.spark {
  background: var(--surface-1); border: 1px solid var(--ring); border-radius: 8px;
  padding: 8px 12px 6px; position: relative;
}
.spark .t { font-size: 12px; color: var(--ink-2); margin-bottom: 2px; }
.spark .last { font-size: 12px; color: var(--ink-2); float: right; }
.spark svg { display: block; }
table { border-collapse: collapse; width: 100%; background: var(--surface-1);
        border: 1px solid var(--ring); border-radius: 8px; }
th, td { text-align: left; padding: 5px 10px; border-top: 1px solid var(--grid);
         font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-size: 12px; font-weight: 600; border-top: none; }
td.sql { color: var(--ink-2); max-width: 420px; overflow: hidden;
         text-overflow: ellipsis; white-space: nowrap; }
#tooltip {
  position: fixed; display: none; pointer-events: none; z-index: 10;
  background: var(--surface-1); border: 1px solid var(--ring); border-radius: 6px;
  padding: 4px 8px; font-size: 12px; color: var(--ink-1);
  box-shadow: 0 2px 8px rgba(0,0,0,.15);
}
.empty { color: var(--muted); font-size: 12px; }
</style>
</head>
<body>
<header><h1>acq-serve</h1><div id="status">connecting…</div></header>

<h2>Alerts</h2>
<div id="alerts" class="tiles"><span class="empty">no alert rules loaded</span></div>

<h2>Now</h2>
<div id="stats" class="tiles"></div>

<h2>Recent activity <span style="font-weight:400;color:var(--muted)">(per sample interval)</span></h2>
<div id="sparks" class="sparks"></div>

<h2>Recent queries</h2>
<table id="queries">
  <thead><tr><th>id</th><th>status</th><th>ms</th><th>termination</th>
  <th>satisfied</th><th>sql</th></tr></thead>
  <tbody><tr><td colspan="6" class="empty">none yet</td></tr></tbody>
</table>

<div id="tooltip"></div>
<script>
"use strict";
const POLL_MS = 2000, W = 260, H = 56, PAD = 4;
const SPARK_COLS = [
  ["serve_requests", "requests"],
  ["serve_queries_err", "query errors"],
  ["serve_shed", "shed (503)"],
  ["serve_rate_limited", "rate limited (429)"],
  ["journal_dropped", "journal drops"],
  ["cells_executed", "cells executed"],
];
const $ = (id) => document.getElementById(id);
const el = (tag, cls, text) => {
  const e = document.createElement(tag);
  if (cls) e.className = cls;
  if (text !== undefined) e.textContent = text;
  return e;
};
const fmt = (v) => {
  if (v === null || v === undefined || Number.isNaN(v)) return "–";
  if (Math.abs(v) >= 1000) return Math.round(v).toLocaleString();
  return (Math.round(v * 100) / 100).toString();
};

function renderAlerts(doc) {
  const box = $("alerts");
  box.textContent = "";
  const rules = (doc && doc.rules) || [];
  if (!rules.length) {
    box.appendChild(el("span", "empty", "no alert rules loaded"));
    return 0;
  }
  let firing = 0;
  for (const r of rules) {
    if (r.state === "firing") firing++;
    const icon = r.state === "firing" ? "▲" : r.state === "pending" ? "◆" : "✓";
    const tile = el("div", "tile badge " + r.state);
    tile.appendChild(el("span", "dot", icon));
    const body = el("div");
    body.appendChild(el("div", "", r.name + " — " + r.state));
    body.appendChild(el("div", "meta",
      r.signal + " " + fmt(r.value) + " / " + fmt(r.threshold) +
      (r.state_ms ? " · " + Math.round(r.state_ms / 1000) + "s" : "")));
    tile.appendChild(body);
    box.appendChild(tile);
  }
  return firing;
}

function rateOf(ts, name) {
  if (!ts) return null;
  const i = ts.counters.indexOf(name);
  return i < 0 ? null : ts.rates[i];
}

function renderStats(ts, queries, firing) {
  const box = $("stats");
  box.textContent = "";
  const running = queries && queries.running ? queries.running.length : 0;
  const tiles = [
    ["requests /s", rateOf(ts, "serve_requests")],
    ["errors /s", rateOf(ts, "serve_queries_err")],
    ["shed /s", rateOf(ts, "serve_shed")],
    ["429 /s", rateOf(ts, "serve_rate_limited")],
    ["journal drops /s", rateOf(ts, "journal_dropped")],
    ["in flight", running],
    ["alerts firing", firing],
  ];
  for (const [k, v] of tiles) {
    const t = el("div", "tile");
    t.appendChild(el("div", "v", fmt(v)));
    t.appendChild(el("div", "k", k));
    box.appendChild(t);
  }
}

function sparkSeries(ts, col) {
  const i = ts.counters.indexOf(col);
  if (i < 0) return null;
  return ts.samples.map((s) => ({ at: s.at_ms, v: s.deltas[i] }));
}

function drawSpark(host, title, pts) {
  const card = el("div", "spark");
  const head = el("div", "t", title);
  const last = pts.length ? pts[pts.length - 1].v : null;
  head.appendChild(el("span", "last", fmt(last)));
  card.appendChild(head);
  const ns = "http://www.w3.org/2000/svg";
  const svg = document.createElementNS(ns, "svg");
  svg.setAttribute("width", W); svg.setAttribute("height", H);
  const max = Math.max(1, ...pts.map((p) => p.v));
  const x = (i) => pts.length < 2 ? W / 2 : PAD + (i * (W - 2 * PAD)) / (pts.length - 1);
  const y = (v) => H - PAD - (v / max) * (H - 2 * PAD);
  const base = document.createElementNS(ns, "line");
  base.setAttribute("x1", PAD); base.setAttribute("x2", W - PAD);
  base.setAttribute("y1", H - PAD); base.setAttribute("y2", H - PAD);
  base.setAttribute("stroke", "var(--baseline)");
  svg.appendChild(base);
  if (pts.length) {
    const path = document.createElementNS(ns, "path");
    path.setAttribute("d", pts.map((p, i) =>
      (i ? "L" : "M") + x(i).toFixed(1) + " " + y(p.v).toFixed(1)).join(" "));
    path.setAttribute("fill", "none");
    path.setAttribute("stroke", "var(--series-1)");
    path.setAttribute("stroke-width", "2");
    path.setAttribute("stroke-linejoin", "round");
    svg.appendChild(path);
    const end = document.createElementNS(ns, "circle");
    end.setAttribute("cx", x(pts.length - 1)); end.setAttribute("cy", y(last));
    end.setAttribute("r", "4"); end.setAttribute("fill", "var(--series-1)");
    end.setAttribute("stroke", "var(--surface-1)"); end.setAttribute("stroke-width", "2");
    svg.appendChild(end);
  }
  const cross = document.createElementNS(ns, "line");
  cross.setAttribute("y1", PAD); cross.setAttribute("y2", H - PAD);
  cross.setAttribute("stroke", "var(--grid)"); cross.setAttribute("visibility", "hidden");
  svg.appendChild(cross);
  svg.addEventListener("mousemove", (ev) => {
    if (!pts.length) return;
    const r = svg.getBoundingClientRect();
    const i = Math.max(0, Math.min(pts.length - 1,
      Math.round(((ev.clientX - r.left - PAD) / (W - 2 * PAD)) * (pts.length - 1))));
    cross.setAttribute("x1", x(i)); cross.setAttribute("x2", x(i));
    cross.setAttribute("visibility", "visible");
    const tip = $("tooltip");
    tip.textContent = "t+" + (pts[i].at / 1000).toFixed(0) + "s · " + fmt(pts[i].v);
    tip.style.display = "block";
    tip.style.left = (ev.clientX + 12) + "px";
    tip.style.top = (ev.clientY - 10) + "px";
  });
  svg.addEventListener("mouseleave", () => {
    cross.setAttribute("visibility", "hidden");
    $("tooltip").style.display = "none";
  });
  card.appendChild(svg);
  host.appendChild(card);
}

function renderSparks(ts) {
  const box = $("sparks");
  box.textContent = "";
  if (!ts || !ts.samples.length) {
    box.appendChild(el("span", "empty", "no samples yet"));
    return;
  }
  for (const [col, title] of SPARK_COLS) {
    const pts = sparkSeries(ts, col);
    if (pts) drawSpark(box, title, pts);
  }
}

function renderQueries(doc) {
  const tbody = $("queries").querySelector("tbody");
  tbody.textContent = "";
  const rows = doc ? [...(doc.running || []), ...(doc.completed || [])] : [];
  rows.sort((a, b) => b.id - a.id);
  if (!rows.length) {
    const tr = el("tr");
    const td = el("td", "empty", "none yet");
    td.colSpan = 6;
    tr.appendChild(td);
    tbody.appendChild(tr);
    return;
  }
  for (const q of rows.slice(0, 12)) {
    const tr = el("tr");
    tr.appendChild(el("td", "", String(q.id)));
    tr.appendChild(el("td", "", q.status));
    tr.appendChild(el("td", "", q.duration_ms === null ? "…" : String(q.duration_ms)));
    tr.appendChild(el("td", "", q.termination || ""));
    tr.appendChild(el("td", "", q.satisfied === undefined ? "" : String(q.satisfied)));
    tr.appendChild(el("td", "sql", q.sql));
    tbody.appendChild(tr);
  }
}

async function grab(url) {
  try {
    const r = await fetch(url, { cache: "no-store" });
    return r.ok ? await r.json() : null;
  } catch (_) {
    return null;
  }
}

async function poll() {
  const [ts, alerts, queries] = await Promise.all(
    ["/timeseries", "/alerts", "/queries"].map(grab));
  const ok = ts !== null;
  const st = $("status");
  st.textContent = ok ? "live · polling every " + POLL_MS / 1000 + "s" : "unreachable — retrying";
  st.className = ok ? "" : "err";
  const firing = renderAlerts(alerts);
  renderStats(ts, queries, firing);
  renderSparks(ts);
  renderQueries(queries);
  setTimeout(poll, POLL_MS);
}
poll();
</script>
</body>
</html>
"##;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dashboard_polls_the_three_endpoints() {
        for endpoint in ["/timeseries", "/alerts", "/queries"] {
            assert!(DASHBOARD_HTML.contains(endpoint), "missing {endpoint}");
        }
    }

    #[test]
    fn dashboard_is_self_contained() {
        // No external requests of any kind: the page must render on an
        // air-gapped operator box.
        for needle in ["http://", "https://", "src=", "@import", "url("] {
            let hits = DASHBOARD_HTML
                .match_indices(needle)
                .filter(|(i, _)| {
                    // The SVG namespace URI is an identifier, not a fetch.
                    !DASHBOARD_HTML[*i..].starts_with("http://www.w3.org/2000/svg")
                })
                .count();
            assert_eq!(hits, 0, "external reference via {needle}");
        }
        assert!(DASHBOARD_HTML.contains("<style>"), "inline styles only");
        assert!(DASHBOARD_HTML.contains("<script>"), "inline script only");
    }

    #[test]
    fn alert_states_pair_icon_with_label() {
        // Status is never color alone: each state renders an icon glyph and
        // the state word.
        for glyph in ["▲", "◆", "✓"] {
            assert!(DASHBOARD_HTML.contains(glyph), "missing state icon {glyph}");
        }
        assert!(DASHBOARD_HTML.contains("r.name + \" — \" + r.state"));
    }
}

//! `acq-serve`: a long-running ACQ service.
//!
//! The paper's algorithm (EDBT 2016, "Refinement Driven Processing of
//! Aggregation Constrained Queries") is a batch search; this crate hosts it
//! as a process: a hand-rolled HTTP/1.1 server (no external dependencies,
//! per the workspace house style) that accepts ACQ requests and exposes the
//! pipeline's observability as a live scrape/health surface.
//!
//! * `POST /query` — run an ACQ request (`?explain=1` adds an
//!   EXPLAIN-style profile with the Eq. 17 reuse accounting);
//! * `GET /query/<id>/progress` — live refinement progress as NDJSON over
//!   chunked transfer encoding: one event per layer boundary, a terminal
//!   line carrying the exact `POST /query` response body;
//! * `GET /metrics` — Prometheus text: the absorbed per-query pipeline
//!   instruments plus serve-level rates and decaying latency quantiles;
//! * `GET /timeseries` — the metrics flight recorder: a bounded
//!   delta-encoded ring of counter samples with per-counter rates;
//! * `GET /queries` — the in-flight + recently-completed query registry;
//! * `GET /alerts` — the SLO alert engine's rule states (declarative
//!   threshold / multi-window burn-rate rules from `alerts.toml`, evaluated
//!   over flight-recorder windows; firing rules also export as
//!   `acq_alert_firing{rule=…}` on `/metrics`);
//! * `GET /dashboard` — a self-contained live HTML dashboard (inline JS,
//!   no CDN) polling `/timeseries`, `/alerts` and `/queries`;
//! * `GET /trace/<id>` — a completed query's span tree, with honest
//!   truncation reporting (`?format=chrome` re-renders it as Chrome
//!   trace-event JSON for Perfetto);
//! * `GET /healthz`, `GET /readyz` — liveness and readiness;
//! * `POST /shutdown` — graceful stop via the workspace's
//!   [`acquire_core::CancellationToken`]; in-flight searches return their
//!   anytime results.
//!
//! The serving core is overload-resilient: a bounded acceptor feeds a
//! fixed worker pool over HTTP/1.1 keep-alive sessions, admission control
//! (per-client + global token buckets, then a bounded query gate) answers
//! honest `429`/`503` with `Retry-After`, client deadlines propagate via
//! `X-ACQ-Deadline-Ms`/`deadline_ms` into the execution budget, and past a
//! load high-water mark queries degrade to best-effort — shrunken budgets
//! returning partial anytime answers with an explicit `termination` —
//! instead of being shed. See [`admission`] and `DESIGN.md`.
//!
//! Every request runs against its own [`acq_obs::Obs`] handle, so the
//! driver's serial-emission-order guarantees hold per query: outcomes stay
//! bit-identical across thread counts with serve instrumentation enabled,
//! and each registry record satisfies `cells_executed == explored`.
//!
//! With `--journal <path>` every request's lifecycle (admission decision,
//! exploration digest, termination, `outcome_key`) and every alert
//! transition is appended as schema-validated NDJSON
//! (`schemas/journal.schema.json`) to a size-rotated on-disk log, fed by a
//! bounded wait-free ring so the serial commit path never blocks on disk;
//! `acq journal` greps/replays/summarizes it offline. See
//! [`acq_obs::journal`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod admission;
pub mod alerts;
pub mod cli;
pub mod dashboard;
pub mod handlers;
pub mod http;
pub mod progress;
pub mod server;
pub mod state;
pub mod telemetry;

pub use admission::{Admission, QueryGate, RateLimiters, TokenBucket};
pub use alerts::{AlertEngine, AlertRule, AlertTransition, ALERTS_VERSION};
pub use progress::{ProgressBroker, ProgressChannel};
pub use server::Server;
pub use state::{ServeConfig, ServerState};
pub use telemetry::Telemetry;

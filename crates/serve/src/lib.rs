//! `acq-serve`: a long-running ACQ service.
//!
//! The paper's algorithm (EDBT 2016, "Refinement Driven Processing of
//! Aggregation Constrained Queries") is a batch search; this crate hosts it
//! as a process: a hand-rolled HTTP/1.1 server (no external dependencies,
//! per the workspace house style) that accepts ACQ requests and exposes the
//! pipeline's observability as a live scrape/health surface.
//!
//! * `POST /query` — run an ACQ request (`?explain=1` adds an
//!   EXPLAIN-style profile with the Eq. 17 reuse accounting);
//! * `GET /query/<id>/progress` — live refinement progress as NDJSON over
//!   chunked transfer encoding: one event per layer boundary, a terminal
//!   line carrying the exact `POST /query` response body;
//! * `GET /metrics` — Prometheus text: the absorbed per-query pipeline
//!   instruments plus serve-level rates and decaying latency quantiles;
//! * `GET /timeseries` — the metrics flight recorder: a bounded
//!   delta-encoded ring of counter samples with per-counter rates;
//! * `GET /queries` — the in-flight + recently-completed query registry;
//! * `GET /trace/<id>` — a completed query's span tree, with honest
//!   truncation reporting (`?format=chrome` re-renders it as Chrome
//!   trace-event JSON for Perfetto);
//! * `GET /healthz`, `GET /readyz` — liveness and readiness;
//! * `POST /shutdown` — graceful stop via the workspace's
//!   [`acquire_core::CancellationToken`]; in-flight searches return their
//!   anytime results.
//!
//! The serving core is overload-resilient: a bounded acceptor feeds a
//! fixed worker pool over HTTP/1.1 keep-alive sessions, admission control
//! (per-client + global token buckets, then a bounded query gate) answers
//! honest `429`/`503` with `Retry-After`, client deadlines propagate via
//! `X-ACQ-Deadline-Ms`/`deadline_ms` into the execution budget, and past a
//! load high-water mark queries degrade to best-effort — shrunken budgets
//! returning partial anytime answers with an explicit `termination` —
//! instead of being shed. See [`admission`] and `DESIGN.md`.
//!
//! Every request runs against its own [`acq_obs::Obs`] handle, so the
//! driver's serial-emission-order guarantees hold per query: outcomes stay
//! bit-identical across thread counts with serve instrumentation enabled,
//! and each registry record satisfies `cells_executed == explored`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod admission;
pub mod cli;
pub mod handlers;
pub mod http;
pub mod progress;
pub mod server;
pub mod state;
pub mod telemetry;

pub use admission::{Admission, QueryGate, RateLimiters, TokenBucket};
pub use progress::{ProgressBroker, ProgressChannel};
pub use server::Server;
pub use state::{ServeConfig, ServerState};
pub use telemetry::Telemetry;

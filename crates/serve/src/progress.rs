//! Live progress channels: the bridge between the driver's wait-free
//! [`ProgressSink`] and streaming HTTP clients.
//!
//! `POST /query` registers a [`ProgressChannel`] keyed by the request ID
//! before the search starts and passes its sink into the driver; when the
//! response body is built, the channel is *sealed* with that exact body.
//! `GET /query/<id>/progress` then streams the sink's events as NDJSON over
//! chunked transfer encoding — while the query runs *or* after it finished
//! (the broker retains channels until capacity evicts them, so the replay a
//! smoke test reads after the POST returns is the same stream a live
//! watcher saw).
//!
//! The final NDJSON line is the terminal event, extended with the sink's
//! drop accounting and an `outcome` field carrying the sealed body
//! verbatim — byte-identical to what `POST /query` answered, which is what
//! the CI progress smoke asserts.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use acq_obs::json::{parse, JsonValue};
use acq_obs::snapshot::json_escape;
use acquire_core::{ProgressEvent, ProgressSink, DEFAULT_PROGRESS_CAPACITY};

use crate::http::{ChunkedResponse, Response, NDJSON_CONTENT_TYPE};
use crate::state::ServerState;

/// Channels the broker retains before evicting the oldest finished one.
pub const DEFAULT_BROKER_CAPACITY: usize = 64;

/// How often the streamer polls the sink while the query runs.
const STREAM_POLL: Duration = Duration::from_millis(25);

/// Longest the streamer waits for the sealed body after the terminal event
/// arrives (the gap between the driver's last push and `seal` is the
/// response-rendering time, normally microseconds).
const SEAL_WAIT: Duration = Duration::from_secs(5);

/// One query's progress feed: the driver-side sink plus the sealed outcome.
#[derive(Debug)]
pub struct ProgressChannel {
    id: u64,
    /// The wait-free ring the driver pushes boundary events into.
    pub sink: Arc<ProgressSink>,
    /// The exact `POST /query` response body, set at completion.
    sealed: Mutex<Option<String>>,
    /// Latched once the query finished (successfully or not).
    done: AtomicBool,
}

impl ProgressChannel {
    fn new(id: u64) -> Self {
        Self {
            id,
            sink: Arc::new(ProgressSink::new(DEFAULT_PROGRESS_CAPACITY)),
            sealed: Mutex::new(None),
            done: AtomicBool::new(false),
        }
    }

    /// The registry request ID this channel belongs to.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Marks the query complete, retaining `body` (the exact response body)
    /// for replay in the stream's terminal line.
    pub fn seal(&self, body: String) {
        *self.sealed.lock().unwrap_or_else(PoisonError::into_inner) = Some(body);
        self.done.store(true, Ordering::Release);
    }

    /// Marks the query finished without an outcome (compile/run error).
    pub fn fail(&self) {
        self.done.store(true, Ordering::Release);
    }

    /// Whether the query finished (sealed or failed).
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// The sealed response body, if the query completed successfully.
    pub fn sealed_body(&self) -> Option<String> {
        self.sealed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// A bounded index of progress channels keyed by request ID.
///
/// Registration past capacity evicts — preferring the oldest *finished*
/// channel so a slow watcher of a running query is not cut off by churn —
/// and counts the eviction, the same honesty discipline as every other
/// bounded buffer in this codebase.
#[derive(Debug)]
pub struct ProgressBroker {
    channels: Mutex<VecDeque<Arc<ProgressChannel>>>,
    capacity: usize,
    evicted: AtomicU64,
}

impl Default for ProgressBroker {
    fn default() -> Self {
        Self::new(DEFAULT_BROKER_CAPACITY)
    }
}

impl ProgressBroker {
    /// Creates a broker retaining at most `capacity` channels.
    pub fn new(capacity: usize) -> Self {
        Self {
            channels: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            evicted: AtomicU64::new(0),
        }
    }

    /// Registers a fresh channel for query `id` and returns it.
    pub fn register(&self, id: u64) -> Arc<ProgressChannel> {
        let channel = Arc::new(ProgressChannel::new(id));
        let mut q = self.channels.lock().unwrap_or_else(PoisonError::into_inner);
        if q.len() >= self.capacity {
            match q.iter().position(|c| c.is_done()) {
                Some(i) => {
                    q.remove(i);
                }
                None => {
                    q.pop_front();
                }
            }
            self.evicted.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter
        }
        q.push_back(Arc::clone(&channel));
        channel
    }

    /// Looks up the channel for query `id`, newest registration first.
    pub fn get(&self, id: u64) -> Option<Arc<ProgressChannel>> {
        self.channels
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .rev()
            .find(|c| c.id == id)
            .cloned()
    }

    /// Channels currently retained.
    pub fn len(&self) -> usize {
        self.channels
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether no channels are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Channels evicted to make room (the honesty counter).
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed) // relaxed-ok: monotone counter read
    }
}

fn json_err(status: u16, msg: &str) -> Response {
    Response::json(status, format!("{{\"error\":\"{}\"}}", json_escape(msg)))
}

/// Matches `GET /query/<id>/progress`, returning the raw `<id>` segment.
/// The session loop dispatches these before the buffered handler because a
/// chunked stream writes the socket directly.
pub fn progress_path_id<'a>(method: &str, path: &'a str) -> Option<&'a str> {
    if method != "GET" {
        return None;
    }
    path.strip_prefix("/query/")?.strip_suffix("/progress")
}

/// Handles `GET /query/<id>/progress`.
///
/// Returns `Some(response)` when the request is answerable buffered (bad
/// ID, unknown query, evicted channel) so the caller can keep the
/// connection alive; returns `None` once the chunked NDJSON stream has been
/// written, after which the connection must close (chunked responses are
/// `Connection: close`).
pub fn stream_progress(
    state: &Arc<ServerState>,
    stream: &TcpStream,
    id_str: &str,
) -> Option<Response> {
    let Ok(id) = id_str.parse::<u64>() else {
        return Some(json_err(400, "query id must be a number"));
    };
    let Some(channel) = state.progress.get(id) else {
        return Some(match state.registry.get(id) {
            Some(_) => json_err(
                410,
                &format!("progress for query {id} no longer retained (channel evicted)"),
            ),
            None => json_err(
                404,
                &format!("no such query id {id} (evicted or never ran)"),
            ),
        });
    };

    let Ok(mut out) = ChunkedResponse::begin(stream, 200, NDJSON_CONTENT_TYPE) else {
        return None;
    };
    // The stream outlives the query by at most the seal wait; past the
    // server's own per-query cap (+ slack) something is wrong and the
    // truncated stream (no terminal chunk) tells the client honestly.
    let give_up = Instant::now() + state.config.max_deadline + SEAL_WAIT;
    let mut cursor = 0u64;
    let mut missed = 0u64;
    let mut terminal: Option<ProgressEvent> = None;
    loop {
        let (events, next, gap) = channel.sink.drain_from(cursor);
        cursor = next;
        missed += gap;
        for e in events {
            if e.terminal {
                terminal = Some(e);
                break;
            }
            if out.chunk(format!("{}\n", e.to_json()).as_bytes()).is_err() {
                return None; // client went away mid-stream
            }
        }
        if terminal.is_some() || channel.is_done() {
            break;
        }
        if state.shutdown.is_cancelled() || Instant::now() >= give_up {
            // No terminal chunk and no 0-length trailer: the truncation is
            // visible to the client instead of masquerading as completion.
            return None;
        }
        std::thread::sleep(STREAM_POLL);
    }

    // The driver's terminal push happens just before the response body is
    // rendered and sealed; wait out that window.
    let seal_deadline = Instant::now() + SEAL_WAIT;
    while !channel.is_done() && Instant::now() < seal_deadline {
        std::thread::sleep(STREAM_POLL);
    }
    let body = channel.sealed_body();
    if terminal.is_none() && body.is_none() {
        // Failed query: nothing more to say; end the stream without a
        // terminal line (the registry record carries the error).
        let _ = out.finish();
        return None;
    }
    // Contraction-only queries never drive the sink; synthesize their
    // terminal event from the sealed outcome so every successful stream
    // ends the same way.
    let event = terminal.unwrap_or_else(|| synthesize_terminal(id, body.as_deref()));
    let mut line = String::with_capacity(event.json_fields().len() + 64);
    line.push('{');
    line.push_str(&event.json_fields());
    line.push_str(&format!(
        ",\"dropped\":{},\"missed\":{missed}",
        channel.sink.dropped()
    ));
    if let Some(body) = &body {
        line.push_str(&format!(",\"outcome\":{body}"));
    }
    line.push_str("}\n");
    if out.chunk(line.as_bytes()).is_err() {
        return None;
    }
    let _ = out.finish();
    None
}

/// Builds a terminal event from the sealed response body for queries whose
/// search path never drove the sink (the contraction search).
fn synthesize_terminal(id: u64, body: Option<&str>) -> ProgressEvent {
    let parsed = body.and_then(|b| parse(b).ok());
    let field = |ptr: &str| {
        parsed
            .as_ref()
            .and_then(|v| v.pointer(ptr))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
    };
    ProgressEvent {
        query_id: id,
        layer: field("/layers"),
        explored: field("/explored"),
        frontier: 0,
        store_bytes: 0,
        zones_pruned: field("/stats/zones_pruned"),
        elapsed_ms: field("/duration_ms"),
        terminal: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_paths_match_exactly() {
        assert_eq!(progress_path_id("GET", "/query/42/progress"), Some("42"));
        assert_eq!(progress_path_id("GET", "/query/x/progress"), Some("x"));
        assert_eq!(progress_path_id("POST", "/query/42/progress"), None);
        assert_eq!(progress_path_id("GET", "/query/42"), None);
        assert_eq!(progress_path_id("GET", "/query"), None);
        assert_eq!(progress_path_id("GET", "/trace/42"), None);
    }

    #[test]
    fn broker_registers_looks_up_and_seals() {
        let broker = ProgressBroker::new(8);
        let ch = broker.register(7);
        assert_eq!(ch.id(), 7);
        assert!(!ch.is_done());
        assert!(broker.get(7).is_some());
        assert!(broker.get(8).is_none());

        ch.seal("{\"id\":7}".to_string());
        assert!(ch.is_done());
        assert_eq!(
            broker.get(7).unwrap().sealed_body().as_deref(),
            Some("{\"id\":7}")
        );
    }

    #[test]
    fn broker_eviction_prefers_finished_channels() {
        let broker = ProgressBroker::new(2);
        let running = broker.register(1);
        let finished = broker.register(2);
        finished.seal("{}".to_string());
        // At capacity: the finished channel goes first, not the oldest.
        broker.register(3);
        assert_eq!(broker.evicted(), 1);
        assert!(broker.get(1).is_some(), "running channel survives");
        assert!(broker.get(2).is_none(), "finished channel evicted");
        // All running: eviction falls back to the oldest.
        broker.register(4);
        assert_eq!(broker.evicted(), 2);
        assert!(broker.get(1).is_none());
        drop(running);
    }

    #[test]
    fn failed_channels_are_done_without_a_body() {
        let broker = ProgressBroker::default();
        let ch = broker.register(1);
        ch.fail();
        assert!(ch.is_done());
        assert_eq!(ch.sealed_body(), None);
    }

    #[test]
    fn synthesized_terminal_reads_the_outcome_body() {
        let body = "{\"id\":9,\"explored\":41,\"layers\":3,\"duration_ms\":12,\
                    \"stats\":{\"zones_pruned\":5}}";
        let e = synthesize_terminal(9, Some(body));
        assert!(e.terminal);
        assert_eq!(e.query_id, 9);
        assert_eq!(e.explored, 41);
        assert_eq!(e.layer, 3);
        assert_eq!(e.zones_pruned, 5);
        assert_eq!(e.elapsed_ms, 12);

        let empty = synthesize_terminal(3, None);
        assert!(empty.terminal);
        assert_eq!(empty.explored, 0);
    }
}

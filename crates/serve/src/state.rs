//! Shared server state and configuration.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use acq_engine::Catalog;
use acq_obs::{Metrics, QueryRegistry};
use acquire_core::{CancellationToken, EvalLayerKind};

use crate::telemetry::Telemetry;

/// Server configuration; [`ServeConfig::default`] is what the tests and the
/// smoke job use (loopback, ephemeral port).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7171`. Port 0 picks an ephemeral port.
    pub addr: String,
    /// Evaluation layer requests run on.
    pub layer: EvalLayerKind,
    /// Default refinement threshold γ when a request omits it.
    pub gamma: f64,
    /// Default aggregate error threshold δ when a request omits it.
    pub delta: f64,
    /// Trace-buffer capacity of each per-query handle.
    pub trace_capacity: usize,
    /// Completed-query records retained by the registry.
    pub completed_capacity: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Hard cap a request's wall-clock deadline is clamped to; also applied
    /// to requests that ask for no deadline at all, so a pathological query
    /// cannot pin a connection thread forever.
    pub max_deadline: Duration,
    /// Most worker threads one request may ask for.
    pub max_threads: usize,
    /// Concurrent in-flight requests before the server answers 503.
    pub max_concurrent: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            layer: EvalLayerKind::GridIndex,
            gamma: 10.0,
            delta: 0.05,
            trace_capacity: acq_obs::DEFAULT_TRACE_CAPACITY,
            completed_capacity: acq_obs::registry::DEFAULT_COMPLETED_CAPACITY,
            max_body_bytes: 64 * 1024,
            max_deadline: Duration::from_secs(30),
            max_threads: 8,
            max_concurrent: 16,
        }
    }
}

/// Everything a connection thread needs, shared behind one `Arc`.
#[derive(Debug)]
pub struct ServerState {
    /// Immutable configuration.
    pub config: ServeConfig,
    /// The loaded tables. `Catalog` is `Clone` with `Arc`'d tables, so each
    /// request builds its own cheap `Executor` without cross-request locks.
    pub catalog: Catalog,
    /// Process-scoped pipeline instruments; per-query snapshots are folded
    /// in as requests complete ([`Metrics::absorb_snapshot`]).
    pub metrics: Metrics,
    /// Serve-level request telemetry (rates, decaying latency).
    pub telemetry: Telemetry,
    /// In-flight + recently completed queries.
    pub registry: QueryRegistry,
    /// Cancelling this token starts graceful shutdown: the accept loop
    /// stops taking connections and every in-flight search is interrupted
    /// (the driver polls the token cooperatively).
    pub shutdown: CancellationToken,
    /// Set once the listener is bound; `GET /readyz` gates on it.
    ready: AtomicBool,
    /// In-flight request count, for the concurrency cap and `/readyz`.
    in_flight: AtomicUsize,
    /// Process epoch; telemetry timestamps are elapsed-since-here.
    start: Instant,
}

impl ServerState {
    /// Fresh state around a loaded catalog.
    pub fn new(config: ServeConfig, catalog: Catalog) -> Self {
        let completed_capacity = config.completed_capacity;
        Self {
            config,
            catalog,
            metrics: Metrics::new(),
            telemetry: Telemetry::new(),
            registry: QueryRegistry::new(completed_capacity),
            shutdown: CancellationToken::new(),
            ready: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            start: Instant::now(),
        }
    }

    /// Elapsed time since process start (the telemetry clock).
    pub fn now(&self) -> Duration {
        self.start.elapsed()
    }

    /// Marks the listener bound and accepting.
    pub fn set_ready(&self) {
        self.ready.store(true, Ordering::Release);
    }

    /// Whether the server is accepting work: bound and not shutting down.
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire) && !self.shutdown.is_cancelled()
    }

    /// Tries to claim an in-flight slot; `false` means the concurrency cap
    /// is hit and the caller should answer 503.
    pub fn try_begin_request(&self) -> bool {
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if prev >= self.config.max_concurrent {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            return false;
        }
        true
    }

    /// Releases a slot claimed by [`ServerState::try_begin_request`].
    pub fn end_request(&self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    /// Current in-flight request count.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(max_concurrent: usize) -> ServerState {
        ServerState::new(
            ServeConfig {
                max_concurrent,
                ..ServeConfig::default()
            },
            Catalog::new(),
        )
    }

    #[test]
    fn readiness_requires_bind_and_no_shutdown() {
        let s = state(4);
        assert!(!s.is_ready(), "not ready before bind");
        s.set_ready();
        assert!(s.is_ready());
        s.shutdown.cancel();
        assert!(!s.is_ready(), "shutdown revokes readiness");
    }

    #[test]
    fn concurrency_cap_sheds_load() {
        let s = state(2);
        assert!(s.try_begin_request());
        assert!(s.try_begin_request());
        assert!(!s.try_begin_request(), "third concurrent request rejected");
        assert_eq!(s.in_flight(), 2);
        s.end_request();
        assert!(s.try_begin_request(), "slot reusable after release");
    }
}

//! Shared server state and configuration.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use acq_engine::Catalog;
use acq_obs::journal::JournalRing;
use acq_obs::{CounterSource, FlightRecorder, Journal, Metrics, QueryRegistry};
use acquire_core::{CancellationToken, EvalLayerKind};

use crate::admission::{QueryGate, RateLimiters};
use crate::alerts::{AlertEngine, AlertRule};
use crate::progress::ProgressBroker;
use crate::telemetry::Telemetry;

/// Server configuration; [`ServeConfig::default`] is what the tests and the
/// smoke job use (loopback, ephemeral port).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7171`. Port 0 picks an ephemeral port.
    pub addr: String,
    /// Evaluation layer requests run on.
    pub layer: EvalLayerKind,
    /// Default refinement threshold γ when a request omits it.
    pub gamma: f64,
    /// Default aggregate error threshold δ when a request omits it.
    pub delta: f64,
    /// Trace-buffer capacity of each per-query handle.
    pub trace_capacity: usize,
    /// Completed-query records retained by the registry.
    pub completed_capacity: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Hard cap a request's wall-clock deadline is clamped to; also applied
    /// to requests that ask for no deadline at all, so a pathological query
    /// cannot pin a worker thread forever.
    pub max_deadline: Duration,
    /// Most search threads one request may ask for.
    pub max_threads: usize,
    /// Concurrent executing queries before new ones queue (then shed).
    pub max_concurrent: usize,
    /// Total budget from a request's first byte to its last — a client that
    /// trickles slower than this gets `408` and the thread back.
    pub read_timeout: Duration,
    /// How long an idle keep-alive connection is held before closing.
    pub keep_alive: Duration,
    /// Requests served per connection before the server closes it (a
    /// fairness valve against one chatty client monopolising a worker).
    pub max_requests_per_conn: usize,
    /// Fixed connection-worker threads (the session pool).
    pub workers: usize,
    /// Accepted connections waiting for a worker before the acceptor sheds
    /// new ones with `503`.
    pub accept_queue: usize,
    /// Queries waiting at the admission gate before new ones are shed.
    pub max_queued: usize,
    /// Longest a query waits at the gate before it is shed with `503`.
    pub queue_wait: Duration,
    /// Per-client token-bucket rate (queries/second); `0` disables.
    pub client_rate: f64,
    /// Per-client token-bucket burst.
    pub client_burst: f64,
    /// Global token-bucket rate (queries/second); `0` disables.
    pub global_rate: f64,
    /// Global token-bucket burst.
    pub global_burst: f64,
    /// Load fraction of `max_concurrent` above which admissions degrade to
    /// best-effort (shrunken budgets, partial anytime answers). `1.0`
    /// degrades only queued admissions.
    pub degrade_watermark: f64,
    /// Budget multiplier applied to degraded admissions
    /// ([`acquire_core::ExecutionBudget::shrunk`]).
    pub degrade_factor: f64,
    /// Sampling cadence of the metrics flight recorder (`GET /timeseries`).
    pub recorder_cadence: Duration,
    /// Samples the flight recorder retains before evicting the oldest.
    pub recorder_capacity: usize,
    /// Durable query-journal path; `None` disables journaling.
    pub journal_path: Option<PathBuf>,
    /// Size at which the active journal segment rotates.
    pub journal_max_bytes: u64,
    /// Journal ring capacity (records buffered between writer drains).
    pub journal_capacity: usize,
    /// `alerts.toml` path; `None` disables the alert engine.
    pub alerts_path: Option<PathBuf>,
    /// Cadence of the alert evaluation thread.
    pub alert_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            layer: EvalLayerKind::GridIndex,
            gamma: 10.0,
            delta: 0.05,
            trace_capacity: acq_obs::DEFAULT_TRACE_CAPACITY,
            completed_capacity: acq_obs::registry::DEFAULT_COMPLETED_CAPACITY,
            max_body_bytes: 64 * 1024,
            max_deadline: Duration::from_secs(30),
            max_threads: 8,
            max_concurrent: 16,
            read_timeout: Duration::from_secs(5),
            keep_alive: Duration::from_secs(5),
            max_requests_per_conn: 1000,
            workers: 8,
            accept_queue: 64,
            max_queued: 32,
            queue_wait: Duration::from_secs(1),
            client_rate: 0.0,
            client_burst: 8.0,
            global_rate: 0.0,
            global_burst: 32.0,
            degrade_watermark: 0.75,
            degrade_factor: 0.25,
            recorder_cadence: acq_obs::DEFAULT_RECORDER_CADENCE,
            recorder_capacity: acq_obs::DEFAULT_RECORDER_CAPACITY,
            journal_path: None,
            journal_max_bytes: acq_obs::DEFAULT_JOURNAL_MAX_BYTES,
            journal_capacity: acq_obs::DEFAULT_JOURNAL_CAPACITY,
            alerts_path: None,
            alert_interval: Duration::from_millis(250),
        }
    }
}

/// Everything a worker thread needs, shared behind one `Arc`.
#[derive(Debug)]
pub struct ServerState {
    /// Immutable configuration.
    pub config: ServeConfig,
    /// The loaded tables. `Catalog` is `Clone` with `Arc`'d tables, so each
    /// request builds its own cheap `Executor` without cross-request locks.
    pub catalog: Catalog,
    /// Process-scoped pipeline instruments; per-query snapshots are folded
    /// in as requests complete ([`Metrics::absorb_snapshot`]). `Arc`'d so
    /// the flight-recorder sampler thread can hold its own reference.
    pub metrics: Arc<Metrics>,
    /// Background sampler over `metrics`; `GET /timeseries` renders it.
    pub recorder: FlightRecorder,
    /// Live progress channels for streaming `GET /query/<id>/progress`.
    pub progress: ProgressBroker,
    /// Serve-level request telemetry (rates, decaying latency, admission).
    /// `Arc`'d so the flight recorder's counter-source closures can read
    /// the same instruments the `/metrics` scrape reads.
    pub telemetry: Arc<Telemetry>,
    /// In-flight + recently completed queries.
    pub registry: QueryRegistry,
    /// The admission gate: bounded query concurrency + bounded queue.
    pub gate: QueryGate,
    /// Token-bucket front door (per-client + global).
    pub limiters: RateLimiters,
    /// The durable query journal, when `--journal` is set. The writer
    /// thread lives inside; request threads only touch the wait-free ring.
    pub journal: Option<Journal>,
    /// Cached producer handle of `journal` (so the hot path never clones).
    journal_ring: Option<Arc<JournalRing>>,
    /// The SLO alert engine state, when `--alerts` is set. Locked only by
    /// the evaluation thread and read-side renderers — never a commit path.
    pub alerts: Option<Mutex<AlertEngine>>,
    /// Cancelling this token starts graceful shutdown: the accept loop
    /// stops taking connections and every in-flight search is interrupted
    /// (the driver polls the token cooperatively).
    pub shutdown: CancellationToken,
    /// Set once the listener is bound; `GET /readyz` gates on it.
    ready: AtomicBool,
    /// Process epoch; telemetry timestamps are elapsed-since-here.
    start: Instant,
}

impl ServerState {
    /// Fresh state around a loaded catalog.
    ///
    /// Panics if the ops config is invalid (unopenable `journal_path`,
    /// unparseable `alerts_path`); callers that set those use
    /// [`ServerState::try_new`] and surface the error.
    pub fn new(config: ServeConfig, catalog: Catalog) -> Self {
        Self::try_new(config, catalog).expect("ops config invalid") // lint-allow(panic-hygiene): only reachable with journal/alerts config, whose callers use try_new
    }

    /// Fresh state around a loaded catalog, surfacing ops-config errors
    /// (journal file unopenable, `alerts.toml` unparseable) instead of
    /// starting a server that silently neither journals nor pages.
    pub fn try_new(config: ServeConfig, catalog: Catalog) -> Result<Self, String> {
        let gate = QueryGate::new(
            config.max_concurrent,
            config.max_queued,
            config.queue_wait,
            config.degrade_watermark,
        );
        let limiters = RateLimiters::new(
            config.client_rate,
            config.client_burst,
            config.global_rate,
            config.global_burst,
        );
        let completed_capacity = config.completed_capacity;
        let metrics = Arc::new(Metrics::new());
        let telemetry = Arc::new(Telemetry::new());
        let journal = match &config.journal_path {
            Some(path) => Some(
                Journal::open(path, config.journal_max_bytes, config.journal_capacity)
                    .map_err(|e| format!("journal {}: {e}", path.display()))?,
            ),
            None => None,
        };
        let journal_ring = journal.as_ref().map(Journal::ring);
        let alerts = match &config.alerts_path {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("alerts {}: {e}", path.display()))?;
                let rules: Vec<AlertRule> = crate::alerts::parse_alerts(&text)
                    .map_err(|e| format!("alerts {}: {e}", path.display()))?;
                Some(Mutex::new(AlertEngine::new(rules)))
            }
            None => None,
        };
        let recorder = FlightRecorder::start_with_sources(
            Arc::clone(&metrics),
            config.recorder_cadence,
            config.recorder_capacity,
            Self::recorder_sources(&telemetry, journal_ring.as_ref()),
        );
        Ok(Self {
            config,
            catalog,
            metrics,
            recorder,
            progress: ProgressBroker::default(),
            telemetry,
            registry: QueryRegistry::new(completed_capacity),
            gate,
            limiters,
            journal,
            journal_ring,
            alerts,
            shutdown: CancellationToken::new(),
            ready: AtomicBool::new(false),
            start: Instant::now(),
        })
    }

    /// The serve-level counters exported as flight-recorder columns, which
    /// is what gives shed/429/error/journal-drop rates a windowed history
    /// for the dashboard sparklines and the alert engine's rules.
    fn recorder_sources(
        telemetry: &Arc<Telemetry>,
        journal_ring: Option<&Arc<JournalRing>>,
    ) -> Vec<CounterSource> {
        let t = |name: &str, read: Arc<dyn Fn() -> u64 + Send + Sync>| -> CounterSource {
            (name.to_string(), read)
        };
        let c = Arc::clone;
        let mut sources: Vec<CounterSource> = vec![
            t("serve_requests", {
                let t = c(telemetry);
                Arc::new(move || t.requests.total())
            }),
            t("serve_queries_ok", {
                let t = c(telemetry);
                Arc::new(move || t.queries_ok.total())
            }),
            t("serve_queries_err", {
                let t = c(telemetry);
                Arc::new(move || t.queries_err.total())
            }),
            t("serve_shed", {
                let t = c(telemetry);
                Arc::new(move || t.admission.shed.get())
            }),
            t("serve_rate_limited", {
                let t = c(telemetry);
                Arc::new(move || t.admission.rate_limited.get())
            }),
            t("serve_degraded", {
                let t = c(telemetry);
                Arc::new(move || t.admission.degraded.get())
            }),
        ];
        if let Some(ring) = journal_ring {
            let ring = Arc::clone(ring);
            sources.push(t("journal_dropped", Arc::new(move || ring.dropped())));
        }
        sources
    }

    /// The journal's wait-free producer handle, when journaling is on.
    #[inline]
    pub fn journal_ring(&self) -> Option<&Arc<JournalRing>> {
        self.journal_ring.as_ref()
    }

    /// Resolves one alert-rule signal: `p99_latency_ms` reads the decaying
    /// request-latency histogram; any `<counter>_per_sec` name reads the
    /// flight recorder's rate for that column over `window`.
    pub fn alert_signal(&self, signal: &str, window: Duration) -> Option<f64> {
        if signal == "p99_latency_ms" {
            let snap = self.telemetry.latency_snapshot(self.now());
            let (_, p99) = snap.quantiles()[2];
            return p99.map(|ns| ns / 1e6);
        }
        let counter = signal.strip_suffix("_per_sec")?;
        self.recorder.rate(counter, window)
    }

    /// Elapsed time since process start (the telemetry clock).
    pub fn now(&self) -> Duration {
        self.start.elapsed()
    }

    /// Marks the listener bound and accepting.
    pub fn set_ready(&self) {
        self.ready.store(true, Ordering::Release);
    }

    /// Whether the server is accepting work: bound and not shutting down.
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire) && !self.shutdown.is_cancelled()
    }

    /// Currently executing queries (the gate's occupancy).
    pub fn in_flight(&self) -> usize {
        self.gate.active()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::Admission;

    fn state(max_concurrent: usize) -> ServerState {
        ServerState::new(
            ServeConfig {
                max_concurrent,
                max_queued: 0,
                queue_wait: Duration::from_millis(100),
                ..ServeConfig::default()
            },
            Catalog::new(),
        )
    }

    #[test]
    fn readiness_requires_bind_and_no_shutdown() {
        let s = state(4);
        assert!(!s.is_ready(), "not ready before bind");
        s.set_ready();
        assert!(s.is_ready());
        s.shutdown.cancel();
        assert!(!s.is_ready(), "shutdown revokes readiness");
    }

    #[test]
    fn gate_caps_concurrency_and_sheds_load() {
        let s = state(2);
        let (a1, _p1) = s.gate.admit(&s.shutdown);
        let (a2, _p2) = s.gate.admit(&s.shutdown);
        assert!(matches!(a1, Admission::Admitted { .. }));
        assert!(matches!(a2, Admission::Admitted { .. }));
        let (a3, p3) = s.gate.admit(&s.shutdown);
        assert!(
            matches!(a3, Admission::Shed(_)),
            "third concurrent query shed with no queue: {a3:?}"
        );
        assert!(p3.is_none());
        assert_eq!(s.in_flight(), 2);
        drop(_p1);
        let (a4, _p4) = s.gate.admit(&s.shutdown);
        assert!(matches!(a4, Admission::Admitted { .. }), "slot reusable");
    }
}

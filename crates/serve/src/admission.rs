//! Admission control: who gets in, who waits, who is shed, who degrades.
//!
//! Three mechanisms, applied in order on `POST /query`:
//!
//! 1. **Token buckets** ([`RateLimiters`]): a per-client bucket (keyed by
//!    peer IP) and a global bucket. A drained bucket answers `429` with an
//!    honest `Retry-After`. Rates of `0` disable a bucket.
//! 2. **The query gate** ([`QueryGate`]): a bounded concurrency limit plus
//!    a bounded pending queue. A full queue — or a queue wait that outlives
//!    its patience or the server — answers `503` with `Retry-After`.
//! 3. **Graceful degradation**: admissions above the high-water mark
//!    ([`QueryGate::degrade_at`]) are flagged [`Admission::degraded`]; the
//!    handler shrinks their [`acquire_core::ExecutionBudget`] so they
//!    return partial anytime answers quickly instead of being shed.
//!
//! Everything here is `std`-only: a `Mutex`-guarded bucket map and a
//! `Mutex`+`Condvar` gate. None of this is on the instrument-commit path —
//! admission *decides* before the query runs; the wait in
//! [`QueryGate::admit`] is the product, not contention.

use std::collections::BTreeMap;
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use acquire_core::CancellationToken;

/// Queue waiters poll the shutdown token this often.
const GATE_POLL: Duration = Duration::from_millis(50);

/// Retained per-client buckets; oldest-keyed entries are evicted beyond
/// this, bounding memory under an address-diverse flood.
pub const MAX_TRACKED_CLIENTS: usize = 4096;

/// Per-client buckets idle (no `check` touch) for this long are swept.
/// Generous compared to any real refill horizon: a bucket idle this long
/// has long since refilled to `burst`, so recreating it fresh is lossless.
pub const CLIENT_TTL: Duration = Duration::from_secs(300);

/// The TTL sweep runs at most this often, amortising the map scan instead
/// of paying it on every request.
pub const SWEEP_INTERVAL: Duration = Duration::from_secs(60);

/// A standard token bucket: `rate` tokens/second refill up to `burst`.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    refilled: Instant,
}

impl TokenBucket {
    /// A full bucket. `rate <= 0` builds a bucket that never limits.
    #[must_use]
    pub fn new(rate: f64, burst: f64, now: Instant) -> Self {
        Self {
            rate,
            burst: burst.max(1.0),
            tokens: burst.max(1.0),
            refilled: now,
        }
    }

    /// Takes one token at `now`. `Ok(())` admits; `Err(secs)` is the
    /// suggested `Retry-After` (rounded up, at least 1s).
    pub fn try_acquire(&mut self, now: Instant) -> Result<(), u32> {
        if self.rate <= 0.0 {
            return Ok(());
        }
        let dt = now.saturating_duration_since(self.refilled).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        self.refilled = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let wait = (1.0 - self.tokens) / self.rate;
            Err(wait.ceil().max(1.0) as u32)
        }
    }
}

/// The per-client bucket map plus its sweep bookkeeping, guarded together.
#[derive(Debug)]
struct ClientBuckets {
    map: BTreeMap<IpAddr, TokenBucket>,
    last_sweep: Instant,
}

/// The rate-limiting front door: one global bucket plus per-client buckets.
#[derive(Debug)]
pub struct RateLimiters {
    client_rate: f64,
    client_burst: f64,
    global: Mutex<TokenBucket>,
    clients: Mutex<ClientBuckets>,
    // Relaxed is sound: an independent monotonic tally, drained wholesale
    // into the telemetry counter; no cross-variable ordering is implied.
    evicted: AtomicU64,
}

impl RateLimiters {
    /// Builds both tiers; a rate of `0` disables that tier.
    #[must_use]
    pub fn new(client_rate: f64, client_burst: f64, global_rate: f64, global_burst: f64) -> Self {
        let now = Instant::now();
        Self {
            client_rate,
            client_burst,
            global: Mutex::new(TokenBucket::new(global_rate, global_burst, now)),
            clients: Mutex::new(ClientBuckets {
                map: BTreeMap::new(),
                last_sweep: now,
            }),
            evicted: AtomicU64::new(0),
        }
    }

    /// Checks the caller against its per-client bucket, then the global
    /// one. `Err(secs)` is the larger applicable `Retry-After`.
    pub fn check(&self, peer: Option<IpAddr>) -> Result<(), u32> {
        self.check_at(peer, Instant::now())
    }

    /// [`check`](Self::check) with an injected clock, so floods that span
    /// simulated hours (TTL sweeps, refill horizons) are testable in
    /// microseconds.
    pub fn check_at(&self, peer: Option<IpAddr>, now: Instant) -> Result<(), u32> {
        if self.client_rate > 0.0 {
            if let Some(ip) = peer {
                let mut clients = self.clients.lock().unwrap_or_else(PoisonError::into_inner);
                self.sweep(&mut clients, now);
                if clients.map.len() >= MAX_TRACKED_CLIENTS && !clients.map.contains_key(&ip) {
                    // Bounded memory beats per-client fairness under an
                    // address-diverse flood; the global bucket still holds.
                    let evict = clients.map.keys().next().copied();
                    if let Some(k) = evict {
                        clients.map.remove(&k);
                        self.evicted.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotonic tally, no ordering implied
                    }
                }
                let bucket = clients
                    .map
                    .entry(ip)
                    .or_insert_with(|| TokenBucket::new(self.client_rate, self.client_burst, now));
                bucket.try_acquire(now)?;
            }
        }
        self.global
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .try_acquire(now)
    }

    /// Drops buckets idle past [`CLIENT_TTL`], at most once per
    /// [`SWEEP_INTERVAL`]. Without this, one slow address-diverse drip
    /// (one request per spoofed IP) pins `MAX_TRACKED_CLIENTS` dead
    /// buckets forever; with it the map tracks only the working set.
    fn sweep(&self, clients: &mut ClientBuckets, now: Instant) {
        if now.saturating_duration_since(clients.last_sweep) < SWEEP_INTERVAL {
            return;
        }
        clients.last_sweep = now;
        let before = clients.map.len();
        clients
            .map
            .retain(|_, b| now.saturating_duration_since(b.refilled) < CLIENT_TTL);
        let swept = (before - clients.map.len()) as u64;
        if swept > 0 {
            self.evicted.fetch_add(swept, Ordering::Relaxed); // relaxed-ok: monotonic tally, no ordering implied
        }
    }

    /// Per-client buckets currently tracked.
    #[must_use]
    pub fn tracked_clients(&self) -> usize {
        self.clients
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .map
            .len()
    }

    /// Drains the pending eviction tally (TTL sweep + size cap). The
    /// caller folds the delta into the cumulative
    /// `acq_serve_clients_evicted_total` counter, so draining keeps the
    /// exported series monotone while this internal tally stays small.
    pub fn take_evicted(&self) -> u64 {
        self.evicted.swap(0, Ordering::Relaxed) // relaxed-ok: monotonic tally, no ordering implied
    }
}

/// The outcome of one [`QueryGate::admit`] call.
#[derive(Debug, PartialEq, Eq)]
pub enum Admission {
    /// Run it. `queued` records a wait in the pending queue; `degraded`
    /// asks the handler to shrink the execution budget.
    Admitted {
        /// Whether this admission waited in the pending queue first.
        queued: bool,
        /// Whether the load high-water mark was crossed.
        degraded: bool,
    },
    /// Shed with `503`; the payload is the suggested `Retry-After` seconds.
    Shed(u32),
}

#[derive(Debug, Default)]
struct GateState {
    active: usize,
    waiting: usize,
}

/// A bounded concurrency gate with a bounded pending queue.
#[derive(Debug)]
pub struct QueryGate {
    state: Mutex<GateState>,
    freed: Condvar,
    max_active: usize,
    max_queued: usize,
    queue_wait: Duration,
    degrade_at: usize,
}

impl QueryGate {
    /// A gate admitting `max_active` concurrent queries, queueing at most
    /// `max_queued` more for up to `queue_wait`, and flagging admissions
    /// beyond `ceil(max_active * watermark)` as degraded.
    #[must_use]
    pub fn new(max_active: usize, max_queued: usize, queue_wait: Duration, watermark: f64) -> Self {
        let max_active = max_active.max(1);
        let w = if watermark.is_finite() {
            watermark.clamp(0.0, 1.0)
        } else {
            1.0
        };
        Self {
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            max_active,
            max_queued,
            queue_wait,
            degrade_at: (max_active as f64 * w).ceil() as usize,
        }
    }

    /// The high-water mark: admissions that push the active count *above*
    /// this degrade.
    #[must_use]
    pub fn degrade_at(&self) -> usize {
        self.degrade_at
    }

    /// Currently executing queries.
    #[must_use]
    pub fn active(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .active
    }

    /// Currently queued admissions.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .waiting
    }

    /// Tries to admit one query, waiting in the bounded queue if the gate
    /// is full. Returns [`Admission::Shed`] when the queue is full, the
    /// wait expires, or `shutdown` flips — admitted work keeps its slot
    /// until the returned [`Permit`] drops.
    pub fn admit(&self, shutdown: &CancellationToken) -> (Admission, Option<Permit<'_>>) {
        let retry: u32 = self.queue_wait.as_secs().max(1) as u32;
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.active < self.max_active {
            st.active += 1;
            // Degrade once the new occupancy crosses the high-water mark;
            // watermark 1.0 means direct admissions never degrade.
            let degraded = st.active > self.degrade_at;
            return (
                Admission::Admitted {
                    queued: false,
                    degraded,
                },
                Some(Permit { gate: self }),
            );
        }
        if st.waiting >= self.max_queued || shutdown.is_cancelled() {
            return (Admission::Shed(retry), None);
        }
        st.waiting += 1;
        let deadline = Instant::now() + self.queue_wait;
        loop {
            let now = Instant::now();
            // Shutdown (and deadline) outrank a freed slot: a graceful stop
            // drains *admitted* work and honestly rejects everything still
            // queued, even when the draining work frees slots.
            if shutdown.is_cancelled() || now >= deadline {
                st.waiting -= 1;
                return (Admission::Shed(retry), None);
            }
            if st.active < self.max_active {
                st.waiting -= 1;
                st.active += 1;
                // Having queued at all is the degradation signal: the gate
                // was saturated when this query arrived.
                return (
                    Admission::Admitted {
                        queued: true,
                        degraded: true,
                    },
                    Some(Permit { gate: self }),
                );
            }
            let slice = (deadline - now).min(GATE_POLL);
            let (guard, _) = self
                .freed
                .wait_timeout(st, slice)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    fn release(&self) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.active = st.active.saturating_sub(1);
        drop(st);
        self.freed.notify_one();
    }
}

/// RAII slot in the gate: dropping it frees the slot and wakes one waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a QueryGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_drains_refills_and_suggests_retry() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(2.0, 2.0, t0);
        assert_eq!(b.try_acquire(t0), Ok(()));
        assert_eq!(b.try_acquire(t0), Ok(()));
        let retry = b.try_acquire(t0).unwrap_err();
        assert!(retry >= 1, "retry-after must be at least a second");
        // Half a second refills one token at 2/s.
        assert_eq!(b.try_acquire(t0 + Duration::from_millis(500)), Ok(()));
        // Rate 0 disables the bucket entirely.
        let mut open = TokenBucket::new(0.0, 1.0, t0);
        for _ in 0..100 {
            assert_eq!(open.try_acquire(t0), Ok(()));
        }
    }

    #[test]
    fn limiters_apply_per_client_then_global() {
        let lim = RateLimiters::new(1000.0, 2.0, 1000.0, 3.0);
        let a: IpAddr = "10.0.0.1".parse().unwrap();
        let b: IpAddr = "10.0.0.2".parse().unwrap();
        assert!(lim.check(Some(a)).is_ok());
        assert!(lim.check(Some(a)).is_ok());
        assert!(
            lim.check(Some(a)).is_err(),
            "client a's burst of 2 is spent"
        );
        assert!(lim.check(Some(b)).is_ok(), "client b has its own bucket");
        // Global burst of 3 is now spent too (a:2 + b:1).
        assert!(lim.check(Some(b)).is_err());
        // No peer address: only the global tier applies.
        let open = RateLimiters::new(1000.0, 1.0, 0.0, 1.0);
        assert!(open.check(None).is_ok());
        assert!(open.check(None).is_ok());
    }

    #[test]
    fn gate_admits_queues_and_sheds() {
        let gate = QueryGate::new(2, 1, Duration::from_millis(200), 1.0);
        let shutdown = CancellationToken::new();
        let (a1, p1) = gate.admit(&shutdown);
        let (a2, p2) = gate.admit(&shutdown);
        assert!(matches!(a1, Admission::Admitted { queued: false, .. }));
        assert!(matches!(a2, Admission::Admitted { queued: false, .. }));
        assert_eq!(gate.active(), 2);
        // Third admit queues in a helper thread; once it is visibly
        // waiting, free a slot and it must come through as queued+degraded.
        let (a3, p3) = std::thread::scope(|s| {
            let waiter = s.spawn(|| gate.admit(&shutdown));
            while gate.queued() == 0 {
                std::thread::yield_now();
            }
            drop(p1);
            waiter.join().unwrap()
        });
        assert!(
            matches!(
                a3,
                Admission::Admitted {
                    queued: true,
                    degraded: true
                }
            ),
            "a queued admission is queued and degraded: {a3:?}"
        );
        // Gate full again (a2 + a3); a fresh waiter times out and is shed.
        let gate_short = QueryGate::new(1, 1, Duration::from_millis(150), 1.0);
        let (_, hold) = gate_short.admit(&shutdown);
        let (a4, p4) = gate_short.admit(&shutdown);
        assert!(matches!(a4, Admission::Shed(_)), "{a4:?}");
        assert!(p4.is_none());
        drop(hold);
        drop(p2);
        drop(p3);
        assert_eq!(gate.active(), 0);
    }

    #[test]
    fn gate_sheds_queue_overflow_and_shutdown() {
        let gate = QueryGate::new(1, 0, Duration::from_secs(5), 1.0);
        let shutdown = CancellationToken::new();
        let (_, permit) = gate.admit(&shutdown);
        // max_queued = 0: overflow sheds immediately, no 5s wait.
        let t0 = Instant::now();
        let (a, _) = gate.admit(&shutdown);
        assert!(matches!(a, Admission::Shed(_)));
        assert!(t0.elapsed() < Duration::from_secs(1));
        // Cancelled token sheds immediately as well.
        shutdown.cancel();
        let (a, _) = gate.admit(&shutdown);
        assert!(matches!(a, Admission::Shed(_)));
        drop(permit);
    }

    #[test]
    fn watermark_degrades_above_the_line() {
        // max_active 4, watermark 0.5 → degrade_at 2: the 3rd and 4th
        // concurrent admissions run with shrunken budgets.
        let gate = QueryGate::new(4, 4, Duration::from_millis(100), 0.5);
        assert_eq!(gate.degrade_at(), 2);
        let shutdown = CancellationToken::new();
        let (a1, _p1) = gate.admit(&shutdown);
        let (a2, _p2) = gate.admit(&shutdown);
        let (a3, _p3) = gate.admit(&shutdown);
        for (a, want) in [(&a1, false), (&a2, false), (&a3, true)] {
            assert_eq!(
                *a,
                Admission::Admitted {
                    queued: false,
                    degraded: want
                }
            );
        }
        // Watermark 1.0: no direct admission ever degrades.
        let lax = QueryGate::new(2, 2, Duration::from_millis(100), 1.0);
        let (b1, _q1) = lax.admit(&shutdown);
        let (b2, _q2) = lax.admit(&shutdown);
        for a in [&b1, &b2] {
            assert!(
                matches!(
                    a,
                    Admission::Admitted {
                        degraded: false,
                        ..
                    }
                ),
                "{a:?}"
            );
        }
    }
}

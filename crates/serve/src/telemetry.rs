//! Serve-level telemetry: the instrument-commit path for request threads.
//!
//! **Discipline (enforced by acq-lint's `obs-discipline` rule via
//! `lint.toml` `[obs-discipline] commit_paths`):** everything in this file
//! runs on the request thread between accepting a query and writing its
//! response, so nothing here may block — no lock acquisition, no I/O. Every
//! commit below is a relaxed atomic ([`RateCounter::record`]) or an
//! atomics-plus-`try_lock` operation ([`DecayingHistogram::observe`], which
//! *skips* its decay sweep when contended rather than waiting).
//!
//! Per-query pipeline metrics are NOT committed here: each request runs
//! against its own [`acq_obs::Obs`] handle and the driver commits those in
//! its serial emission loop; the finished snapshot is folded into the
//! process registry *after* the response is accounted (see
//! [`crate::handlers`]).

use std::time::Duration;

use acq_obs::metrics::LATENCY_BUCKETS_NS;
use acq_obs::snapshot::HistogramSnapshot;
use acq_obs::window::DEFAULT_RATE_WINDOW_SECS;
use acq_obs::{AdmissionStats, DecayingHistogram, RateCounter};

/// Half-life of the request-latency distribution: five minutes, so the
/// scraped quantiles track the recent workload.
const LATENCY_HALF_LIFE: Duration = Duration::from_secs(300);

/// Process-scoped request telemetry.
#[derive(Debug)]
pub struct Telemetry {
    /// Requests accepted (any endpoint).
    pub requests: RateCounter,
    /// `POST /query` runs that returned an outcome.
    pub queries_ok: RateCounter,
    /// `POST /query` runs rejected or failed.
    pub queries_err: RateCounter,
    /// End-to-end `POST /query` latency, decaying.
    pub query_latency_ns: DecayingHistogram,
    /// Admission-control decisions (shed/degraded/rejected/…); every
    /// instrument is a relaxed-atomic [`acq_obs::Counter`], so commits
    /// here keep the wait-free discipline.
    pub admission: AdmissionStats,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Fresh telemetry at process start.
    pub fn new() -> Self {
        Self {
            requests: RateCounter::new(),
            queries_ok: RateCounter::new(),
            queries_err: RateCounter::new(),
            query_latency_ns: DecayingHistogram::new(LATENCY_BUCKETS_NS, LATENCY_HALF_LIFE),
            admission: AdmissionStats::new(),
        }
    }

    /// Commits one accepted request at `now` (elapsed since process start).
    #[inline]
    pub fn record_request(&self, now: Duration) {
        self.requests.record(1, now);
    }

    /// Commits one finished `POST /query` with its end-to-end latency.
    #[inline]
    pub fn record_query(&self, ok: bool, latency: Duration, now: Duration) {
        if ok {
            self.queries_ok.record(1, now);
        } else {
            self.queries_err.record(1, now);
        }
        self.query_latency_ns
            .observe(latency.as_nanos() as u64, now);
    }

    /// Renders the serve-level series as Prometheus text, appended after
    /// the absorbed pipeline snapshot on `GET /metrics`.
    pub fn render_prometheus(&self, now: Duration) -> String {
        let mut s = String::with_capacity(1024);
        for (name, help, c) in [
            (
                "acq_serve_requests_total",
                "HTTP requests accepted",
                &self.requests,
            ),
            (
                "acq_serve_queries_ok_total",
                "Queries answered with an outcome",
                &self.queries_ok,
            ),
            (
                "acq_serve_queries_err_total",
                "Queries rejected or failed",
                &self.queries_err,
            ),
        ] {
            s.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {}\n",
                c.total()
            ));
            let rate_name = name.trim_end_matches("_total");
            s.push_str(&format!(
                "# HELP {rate_name}_per_sec Rate over the last {DEFAULT_RATE_WINDOW_SECS}s\n\
                 # TYPE {rate_name}_per_sec gauge\n{rate_name}_per_sec {}\n",
                c.rate_per_sec(DEFAULT_RATE_WINDOW_SECS, now)
            ));
        }
        let snap = self
            .query_latency_ns
            .snapshot("serve_query_latency_ns", now);
        s.push_str(
            "# HELP acq_serve_query_latency_ns End-to-end query latency (decaying)\n\
             # TYPE acq_serve_query_latency_ns histogram\n",
        );
        let mut cumulative = 0u64;
        for (bound, count) in &snap.buckets {
            cumulative += count;
            let le = bound.map_or("+Inf".to_string(), |b| b.to_string());
            s.push_str(&format!(
                "acq_serve_query_latency_ns_bucket{{le=\"{le}\"}} {cumulative}\n"
            ));
        }
        s.push_str(&format!(
            "acq_serve_query_latency_ns_sum {}\nacq_serve_query_latency_ns_count {}\n",
            snap.sum, snap.count
        ));
        for ((_, q), (_, v)) in acq_obs::SNAPSHOT_QUANTILES.iter().zip(snap.quantiles()) {
            if let Some(v) = v {
                s.push_str(&format!(
                    "acq_serve_query_latency_ns_quantile{{quantile=\"{q}\"}} {v}\n"
                ));
            }
        }
        s.push_str(&self.admission.render_prometheus("acq_serve"));
        s
    }

    /// Decayed latency snapshot for JSON sinks.
    pub fn latency_snapshot(&self, now: Duration) -> HistogramSnapshot {
        self.query_latency_ns
            .snapshot("serve_query_latency_ns", now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_accounting_splits_ok_and_err() {
        let t = Telemetry::new();
        let now = Duration::from_secs(5);
        t.record_request(now);
        t.record_query(true, Duration::from_millis(2), now);
        t.record_query(false, Duration::from_millis(1), now);
        assert_eq!(t.requests.total(), 1);
        assert_eq!(t.queries_ok.total(), 1);
        assert_eq!(t.queries_err.total(), 1);
        assert_eq!(t.latency_snapshot(now).count, 2);
    }

    #[test]
    fn prometheus_rendering_includes_rates_and_quantiles() {
        let t = Telemetry::new();
        for sec in 0..10 {
            let now = Duration::from_secs(sec);
            t.record_request(now);
            t.record_query(true, Duration::from_micros(300), now);
        }
        let text = t.render_prometheus(Duration::from_secs(10));
        assert!(text.contains("acq_serve_requests_total 10"), "{text}");
        assert!(text.contains("acq_serve_requests_per_sec "), "{text}");
        assert!(
            text.contains("acq_serve_query_latency_ns_quantile{quantile=\"0.95\"}"),
            "{text}"
        );
        assert!(
            text.contains("acq_serve_query_latency_ns_count 10"),
            "{text}"
        );
        t.admission.shed.add(2);
        t.admission.degraded.inc();
        let text = t.render_prometheus(Duration::from_secs(10));
        assert!(text.contains("acq_serve_shed_total 2"), "{text}");
        assert!(text.contains("acq_serve_degraded_total 1"), "{text}");
        assert!(text.contains("acq_serve_conn_rejected_total 0"), "{text}");
    }
}

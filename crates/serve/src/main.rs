//! `acq-serve` — host ACQ as a long-running service.
//!
//! ```text
//! acq-serve --demo users --addr 127.0.0.1:7171
//! curl -s localhost:7171/healthz
//! curl -s -XPOST localhost:7171/query?explain=1 \
//!   -d '{"sql": "SELECT * FROM users CONSTRAINT COUNT(*) >= 5K WHERE income <= 60000"}'
//! curl -s localhost:7171/metrics
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    match acq_serve::cli::run(std::env::args().skip(1)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

//! Request routing and the query execution path.
//!
//! Endpoints:
//!
//! | method | path            | body                                         |
//! |--------|-----------------|----------------------------------------------|
//! | GET    | `/healthz`      | liveness: always 200 while the process runs  |
//! | GET    | `/readyz`       | readiness: 200 accepting, 503 shutting down  |
//! | GET    | `/metrics`      | Prometheus text: pipeline + serve telemetry  |
//! | GET    | `/timeseries`   | flight-recorder ring + rates (`?window=SECS`)|
//! | GET    | `/queries`      | registry JSON: running + completed queries   |
//! | GET    | `/alerts`       | SLO alert engine rule states as JSON         |
//! | GET    | `/dashboard`    | self-contained live HTML dashboard           |
//! | GET    | `/trace/<id>`   | that query's span tree, with `truncated`;    |
//! |        |                 | `?format=chrome` re-renders for Perfetto     |
//! | POST   | `/query`        | run an ACQ request; `?explain=1` adds profile|
//! | POST   | `/shutdown`     | cancel the shutdown token (graceful stop)    |
//!
//! `GET /query/<id>/progress` (chunked NDJSON) is dispatched by the session
//! loop before this buffered handler; see [`crate::progress`].

use std::net::IpAddr;
use std::sync::{Arc, PoisonError};
use std::time::{Duration, Instant};

use acq_engine::Executor;
use acq_obs::json::{parse, JsonValue};
use acq_obs::snapshot::json_escape;
use acq_obs::{Obs, QuerySummary};
use acq_query::{AcqQuery, CmpOp, Norm};
use acq_sql::compile;
use acquire_core::{
    run_acquire_progress, run_contraction_with, AcqOutcome, AcquireConfig, ExecutionBudget,
    ExplainProfile, RefinedQueryResult, Termination,
};

use crate::admission::Admission;
use crate::http::{Request, Response, PROMETHEUS_CONTENT_TYPE};
use crate::state::ServerState;

fn json_err(status: u16, msg: &str) -> Response {
    Response::json(status, format!("{{\"error\":\"{}\"}}", json_escape(msg)))
}

/// Dispatches one request. `peer` is the connection's remote IP, the
/// per-client rate-limit key. Telemetry: every call commits a request
/// event; `POST /query` additionally commits ok/err + latency on
/// completion.
pub fn handle(state: &Arc<ServerState>, req: &Request, peer: Option<IpAddr>) -> Response {
    state.telemetry.record_request(state.now());
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/readyz") => {
            if state.is_ready() {
                Response::text(200, "ready\n")
            } else {
                Response::text(503, "not ready\n")
            }
        }
        // The versioned content type is what Prometheus' scraper expects
        // for the 0.0.4 text exposition format; bare text/plain parses but
        // is out of spec.
        ("GET", "/metrics") => Response::new(200, PROMETHEUS_CONTENT_TYPE, render_metrics(state)),
        ("GET", "/timeseries") => timeseries(state, req),
        ("GET", "/queries") => Response::json(200, state.registry.to_json()),
        ("GET", "/alerts") => alerts_json(state),
        ("GET", "/dashboard") => Response::new(
            200,
            "text/html; charset=utf-8",
            crate::dashboard::DASHBOARD_HTML,
        ),
        ("GET", path) if path.starts_with("/trace/") => trace(state, req, &path["/trace/".len()..]),
        ("POST", "/query") => query(state, req, peer),
        ("POST", "/shutdown") => {
            state.shutdown.cancel();
            Response::json(202, "{\"shutdown\":true}")
        }
        ("GET" | "POST", _) => json_err(404, &format!("no such endpoint: {}", req.path)),
        _ => json_err(405, &format!("method {} not supported", req.method)),
    }
}

/// `GET /metrics`: the absorbed pipeline snapshot, serve-level telemetry,
/// and registry occupancy, as one Prometheus text document.
fn render_metrics(state: &Arc<ServerState>) -> String {
    let now = state.now();
    let snap = acq_obs::MetricsSnapshot::capture(
        &state.metrics,
        now.as_millis() as u64,
        state.metrics.exec_stat_values(),
        vec![],
    );
    let mut s = snap.to_prometheus();
    s.push_str(&state.telemetry.render_prometheus(now));
    let (running, completed, dropped) = state.registry.counts();
    s.push_str(&format!(
        "# HELP acq_serve_queries_running In-flight queries\n\
         # TYPE acq_serve_queries_running gauge\nacq_serve_queries_running {running}\n\
         # HELP acq_serve_queries_retained Completed records retained\n\
         # TYPE acq_serve_queries_retained gauge\nacq_serve_queries_retained {completed}\n\
         # HELP acq_serve_records_dropped_total Completed records evicted from the bounded ring\n\
         # TYPE acq_serve_records_dropped_total counter\nacq_serve_records_dropped_total {dropped}\n"
    ));
    s.push_str(&format!(
        "# HELP acq_serve_gate_active Queries holding an execution slot\n\
         # TYPE acq_serve_gate_active gauge\nacq_serve_gate_active {}\n\
         # HELP acq_serve_gate_queued Queries waiting at the admission gate\n\
         # TYPE acq_serve_gate_queued gauge\nacq_serve_gate_queued {}\n\
         # HELP acq_serve_gate_degrade_at Active count above which admissions degrade\n\
         # TYPE acq_serve_gate_degrade_at gauge\nacq_serve_gate_degrade_at {}\n",
        state.gate.active(),
        state.gate.queued(),
        state.gate.degrade_at(),
    ));
    if let Some(ring) = state.journal_ring() {
        s.push_str(&format!(
            "# HELP acq_journal_written_total Journal records persisted to disk\n\
             # TYPE acq_journal_written_total counter\nacq_journal_written_total {}\n\
             # HELP acq_journal_dropped_total Journal records dropped at the wait-free ring\n\
             # TYPE acq_journal_dropped_total counter\nacq_journal_dropped_total {}\n\
             # HELP acq_journal_rotations_total Journal segment rotations\n\
             # TYPE acq_journal_rotations_total counter\nacq_journal_rotations_total {}\n\
             # HELP acq_journal_write_errors_total Journal disk-write failures\n\
             # TYPE acq_journal_write_errors_total counter\nacq_journal_write_errors_total {}\n\
             # HELP acq_journal_torn_repaired_total Torn trailing lines truncated at open\n\
             # TYPE acq_journal_torn_repaired_total counter\nacq_journal_torn_repaired_total {}\n",
            ring.written(),
            ring.dropped(),
            ring.rotations(),
            ring.write_errors(),
            ring.torn_repaired(),
        ));
    }
    if let Some(engine) = &state.alerts {
        let engine = engine.lock().unwrap_or_else(PoisonError::into_inner);
        s.push_str(&engine.render_prometheus());
    }
    s
}

/// `GET /alerts`: every rule's current state. With no `--alerts` file the
/// endpoint still answers — an empty rule list, so dashboards and probes
/// need not special-case a disabled engine.
fn alerts_json(state: &Arc<ServerState>) -> Response {
    match &state.alerts {
        Some(engine) => {
            let engine = engine.lock().unwrap_or_else(PoisonError::into_inner);
            Response::json(200, engine.to_json(state.now()))
        }
        None => Response::json(
            200,
            format!(
                "{{\"version\":{},\"rules\":[]}}",
                crate::alerts::ALERTS_VERSION
            ),
        ),
    }
}

/// `GET /timeseries`: the flight recorder's ring, with per-counter rates
/// over `?window=SECS` (default [`acq_obs::window::DEFAULT_RATE_WINDOW_SECS`]).
fn timeseries(state: &Arc<ServerState>, req: &Request) -> Response {
    let window = match req.param("window") {
        None | Some("") => Duration::from_secs(acq_obs::window::DEFAULT_RATE_WINDOW_SECS),
        Some(raw) => match raw.parse::<f64>() {
            Ok(secs) if secs.is_finite() && secs > 0.0 => Duration::from_secs_f64(secs),
            _ => return json_err(400, "window must be positive seconds"),
        },
    };
    Response::json(200, state.recorder.to_json(window))
}

/// `GET /trace/<id>`; `?format=chrome` converts the stored render to the
/// Chrome trace-event format (loadable in Perfetto).
fn trace(state: &Arc<ServerState>, req: &Request, id: &str) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return json_err(400, "trace id must be a number");
    };
    let chrome = match req.param("format") {
        None | Some("json") => false,
        Some("chrome") => true,
        Some(other) => return json_err(400, &format!("unknown trace format \"{other}\"")),
    };
    let Some(rec) = state.registry.get(id) else {
        return json_err(
            404,
            &format!("no such query id {id} (evicted or never ran)"),
        );
    };
    match (&rec.trace_json, rec.status) {
        (Some(trace), _) if chrome => match acq_obs::trace::chrome_from_render_json(trace) {
            Some(converted) => Response::json(200, converted),
            None => json_err(500, &format!("stored trace for query {id} is unreadable")),
        },
        (Some(trace), _) => Response::json(200, trace.clone()),
        (None, acq_obs::QueryStatus::Running) => {
            json_err(202, "query still running; trace is captured at completion")
        }
        (None, _) => json_err(404, &format!("query {id} retained no trace")),
    }
}

/// Per-request knobs parsed from the `POST /query` JSON body.
struct QueryRequest {
    sql: String,
    gamma: Option<f64>,
    delta: Option<f64>,
    norm: Option<Norm>,
    threads: usize,
    timeout: Option<Duration>,
    deadline: Option<Duration>,
    max_explored: Option<u64>,
    max_store_bytes: Option<usize>,
    top: usize,
}

fn parse_query_request(body: &[u8]) -> Result<QueryRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let v = parse(text).map_err(|e| format!("body is not valid JSON: {e}"))?;
    if !matches!(v, JsonValue::Obj(_)) {
        return Err("body must be a JSON object".to_string());
    }
    let sql = v
        .get("sql")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "missing required string field \"sql\"".to_string())?
        .to_string();
    let num = |key: &str| -> Result<Option<f64>, String> {
        match v.get(key) {
            None | Some(JsonValue::Null) => Ok(None),
            Some(val) => val
                .as_f64()
                .map(Some)
                .ok_or_else(|| format!("field \"{key}\" must be a number")),
        }
    };
    let norm = match v.get("norm").and_then(JsonValue::as_str) {
        None => None,
        Some("l1") => Some(Norm::L1),
        Some("l2") => Some(Norm::Lp(2.0)),
        Some("linf") | Some("loo") => Some(Norm::LInf),
        Some(other) => return Err(format!("unknown norm \"{other}\" (l1|l2|linf)")),
    };
    let timeout = match num("timeout_secs")? {
        Some(secs) if secs.is_finite() && secs > 0.0 => Some(Duration::from_secs_f64(secs)),
        Some(_) => return Err("\"timeout_secs\" must be positive and finite".to_string()),
        None => None,
    };
    // Client deadline propagation, JSON spelling; the `X-ACQ-Deadline-Ms`
    // header is the transport spelling of the same thing, folded in by the
    // caller. Whichever bound is tightest wins.
    let deadline = match num("deadline_ms")? {
        Some(ms) if ms.is_finite() && ms > 0.0 => Some(Duration::from_millis(ms as u64)),
        Some(_) => return Err("\"deadline_ms\" must be positive and finite".to_string()),
        None => None,
    };
    Ok(QueryRequest {
        sql,
        gamma: num("gamma")?,
        delta: num("delta")?,
        norm,
        threads: num("threads")?.map_or(1, |t| t.max(1.0) as usize),
        timeout,
        deadline,
        max_explored: num("max_explored")?.map(|n| n.max(0.0) as u64),
        max_store_bytes: num("max_store_bytes")?.map(|n| n.max(0.0) as usize),
        top: num("top")?.map_or(5, |t| t.max(1.0) as usize),
    })
}

/// `POST /query`: rate-limit, parse, compile, pass the admission gate,
/// register, run with a per-query handle, respond. Order matters — the
/// cheap rejections (429s, 400s) happen before a gate slot is occupied.
fn query(state: &Arc<ServerState>, req: &Request, peer: Option<IpAddr>) -> Response {
    let stats = &state.telemetry.admission;
    if !state.is_ready() {
        stats.shed.inc();
        journal_query(state, "\"status\":503,\"error\":\"shutting down\"");
        return json_err(503, "server is shutting down").with_retry_after(1);
    }
    let admitted_by_limiter = state.limiters.check(peer);
    // Fold bucket evictions (TTL sweep or size cap) into the cumulative
    // counter whichever way the check went — sweeps fire on admits too.
    let evicted = state.limiters.take_evicted();
    if evicted > 0 {
        stats.clients_evicted.add(evicted);
    }
    if let Err(retry) = admitted_by_limiter {
        stats.rate_limited.inc();
        journal_query(state, "\"status\":429,\"error\":\"rate limited\"");
        return json_err(429, "rate limited; slow down").with_retry_after(retry);
    }
    let (admission, permit) = state.gate.admit(&state.shutdown);
    let (queued, degraded) = match admission {
        Admission::Shed(retry) => {
            stats.shed.inc();
            journal_query(state, "\"status\":503,\"error\":\"shed: at capacity\"");
            return json_err(503, "at capacity; retry later").with_retry_after(retry);
        }
        Admission::Admitted { queued, degraded } => (queued, degraded),
    };
    stats.admitted.inc();
    if queued {
        stats.queued.inc();
    }
    if degraded {
        stats.degraded.inc();
    }
    let t0 = Instant::now();
    let resp = run_query(state, req, t0, queued, degraded);
    drop(permit);
    state
        .telemetry
        .record_query(resp.status == 200, t0.elapsed(), state.now());
    resp
}

fn run_query(
    state: &Arc<ServerState>,
    req: &Request,
    t0: Instant,
    queued: bool,
    degraded: bool,
) -> Response {
    let reject = |msg: &str| {
        journal_query(
            state,
            &format!("\"status\":400,\"error\":\"{}\"", json_escape(msg)),
        );
        json_err(400, msg)
    };
    let parsed = match parse_query_request(&req.body) {
        Ok(p) => p,
        Err(msg) => return reject(&msg),
    };
    let threads = parsed.threads.min(state.config.max_threads);

    // `X-ACQ-Deadline-Ms`: the transport spelling of the client deadline.
    let header_deadline = match req.header("x-acq-deadline-ms") {
        None => None,
        Some(v) => match v.trim().parse::<u64>() {
            Ok(ms) if ms > 0 => Some(Duration::from_millis(ms)),
            _ => {
                return reject("X-ACQ-Deadline-Ms must be a positive integer (milliseconds)");
            }
        },
    };

    let query = match compile(&parsed.sql, &state.catalog) {
        Ok(q) => q,
        Err(e) => return reject(&format!("compile: {e}")),
    };

    // Per-request budget: the tightest of the server's hard cap, the JSON
    // knobs (`timeout_secs`, `deadline_ms`) and the deadline header — a
    // query never outlives its caller or pins a worker past the cap.
    let mut deadline = state.config.max_deadline;
    for d in [parsed.timeout, parsed.deadline, header_deadline]
        .into_iter()
        .flatten()
    {
        deadline = deadline.min(d);
    }
    let mut budget = ExecutionBudget::unlimited().with_deadline(deadline);
    if let Some(n) = parsed.max_explored {
        budget = budget.with_max_explored(n);
    }
    if let Some(b) = parsed.max_store_bytes {
        budget = budget.with_max_store_bytes(b);
    }
    if degraded {
        // Past the high-water mark: best-effort admission. The shrunken
        // budget turns overload into partial anytime answers (an explicit
        // `termination` in the body) instead of sheds.
        budget = budget.shrunk(state.config.degrade_factor);
    }
    let cfg = AcquireConfig {
        gamma: parsed.gamma.unwrap_or(state.config.gamma),
        delta: parsed.delta.unwrap_or(state.config.delta),
        norm: parsed.norm.clone().unwrap_or(Norm::L1),
        budget,
        ..Default::default()
    }
    .with_threads(threads);

    let id = state.registry.begin(parsed.sql.clone(), threads);
    // Per-query handle: keeps traces and profiles attributable to this
    // request; folded into the process registry at completion.
    let obs = Obs::with_trace(state.config.trace_capacity);
    obs.set_query_id(id);
    // The progress channel is registered before the search starts so a
    // watcher connecting mid-run sees every boundary event; the channel is
    // sealed below with the exact response body this handler returns.
    let channel = state.progress.register(id);

    // Each request gets its own executor over the shared catalog (tables are
    // Arc'd, so the clone is cheap) and a clone of the shutdown token: a
    // graceful stop interrupts in-flight searches cooperatively.
    let mut exec = Executor::new(state.catalog.clone());
    let cancel = &state.shutdown;
    let layer = state.config.layer;
    let outcome = match query.constraint.op {
        // §7.2: overshooting constraints run the contraction search.
        CmpOp::Le | CmpOp::Lt => run_contraction_with(&mut exec, &query, &cfg, layer, cancel),
        _ => {
            run_acquire_progress(
                &mut exec,
                &query,
                &cfg,
                layer,
                cancel,
                &obs,
                Some(&channel.sink),
            )
            .map(|expanded| {
                if !expanded.satisfied
                    && query.constraint.op == CmpOp::Eq
                    && expanded.original_aggregate > query.constraint.target
                {
                    // `=` with an already-overshooting original: fall through
                    // to contraction, like the CLI; keep the expansion
                    // outcome if nothing is contractible.
                    run_contraction_with(&mut exec, &query, &cfg, layer, cancel).unwrap_or(expanded)
                } else {
                    expanded
                }
            })
        }
    };
    let duration = t0.elapsed();

    match outcome {
        Ok(outcome) => {
            obs.record_exec_stats(&outcome.stats.fields());
            let snap = obs.snapshot();
            state.registry.finish(
                id,
                QuerySummary {
                    termination: outcome.termination.slug().to_string(),
                    explored: outcome.explored,
                    cells_executed: snap
                        .as_ref()
                        .and_then(|s| s.counter("cells_executed"))
                        .unwrap_or(0),
                    answers: outcome.queries.len() as u64,
                    satisfied: outcome.satisfied,
                    layers: outcome.layers,
                },
                duration.as_millis() as u64,
                obs.render_trace_json(),
            );
            if let Some(snap) = &snap {
                state.metrics.absorb_snapshot(snap);
            }
            // The digest doubles as the journal's Eq. 17 accounting, so it
            // is computed whether or not the client asked to `?explain=1`.
            let digest = ExplainProfile::new(&query, &cfg, &outcome, snap.as_ref(), duration);
            let key = outcome_key(&outcome);
            journal_query(
                state,
                &format!(
                    "\"id\":{id},\"status\":200,\"queued\":{queued},\"degraded\":{degraded},\
                     \"satisfied\":{},\"termination\":\"{}\",\"layers\":{},\"explored\":{},\
                     \"zones_pruned\":{},\"duration_ms\":{},\"outcome_key\":\"{key}\",\
                     \"digest\":{{\"dims\":{},\"layers\":{},\"explored\":{},\
                     \"cells_executed\":{},\"regions_reused\":{},\"subqueries_total\":{},\
                     \"at_most_once_violations\":{}}}",
                    outcome.satisfied,
                    outcome.termination.slug(),
                    outcome.layers,
                    outcome.explored,
                    outcome.stats.zones_pruned,
                    duration.as_millis(),
                    digest.dims,
                    digest.layers_expanded,
                    digest.explored,
                    digest.cells_executed,
                    digest.regions_reused,
                    digest.subqueries_total,
                    digest.at_most_once_violations,
                ),
            );
            let profile = req.flag("explain").then_some(&digest);
            let body = outcome_json(
                id, &outcome, &query, parsed.top, duration, degraded, &key, profile,
            );
            // Seal with the response body *verbatim* so the stream's
            // terminal `outcome` is byte-identical to this answer.
            channel.seal(body.clone());
            Response::json(200, body)
        }
        Err(e) => {
            let msg = e.to_string();
            state
                .registry
                .fail(id, msg.clone(), duration.as_millis() as u64);
            channel.fail();
            journal_query(
                state,
                &format!(
                    "\"id\":{id},\"status\":400,\"queued\":{queued},\"degraded\":{degraded},\
                     \"duration_ms\":{},\"error\":\"{}\"",
                    duration.as_millis(),
                    json_escape(&msg)
                ),
            );
            json_err(400, &format!("query {id} failed: {msg}"))
        }
    }
}

/// Appends one `kind:"query"` NDJSON record (see
/// `schemas/journal.schema.json`) when journaling is on. The append is
/// wait-free — a full ring drops the record and counts it, so slow disks
/// never back-pressure request threads.
fn journal_query(state: &Arc<ServerState>, fields: &str) {
    if let Some(ring) = state.journal_ring() {
        ring.try_append(format!(
            "{{\"v\":{},\"kind\":\"query\",\"at_ms\":{},{fields}}}",
            acq_obs::JOURNAL_VERSION,
            acq_obs::journal::unix_ms(),
        ));
    }
}

/// FNV-1a over the answer-bearing response fields: satisfaction, the
/// termination slug, and every returned refinement's SQL + aggregate +
/// error bits (plus the near-miss). Floats are hashed as IEEE bit
/// patterns, so the key is bit-exact: two runs agree on `outcome_key` iff
/// they agree on every answer a client could act on — the serve-level
/// spelling of the workspace's determinism guarantee, checked across
/// thread counts in `serve_e2e`.
fn outcome_key(outcome: &AcqOutcome) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= 0xff; // field separator, so ("ab","c") != ("a","bc")
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    eat(&[u8::from(outcome.satisfied)]);
    eat(outcome.termination.slug().as_bytes());
    for r in &outcome.queries {
        eat(r.sql.as_bytes());
        eat(&r.aggregate.to_bits().to_le_bytes());
        eat(&r.error.to_bits().to_le_bytes());
    }
    if let Some(r) = &outcome.closest {
        eat(r.sql.as_bytes());
        eat(&r.aggregate.to_bits().to_le_bytes());
        eat(&r.error.to_bits().to_le_bytes());
    }
    format!("{h:016x}")
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn termination_json(t: &Termination) -> String {
    match t {
        Termination::Interrupted {
            reason,
            explored,
            elapsed,
        } => format!(
            "{{\"status\":\"interrupted\",\"reason\":\"{}\",\"detail\":\"{}\",\
             \"explored\":{},\"elapsed_ms\":{}}}",
            reason.slug(),
            json_escape(&reason.to_string()),
            explored,
            elapsed.as_millis()
        ),
        complete => format!("{{\"status\":\"{}\"}}", complete.slug()),
    }
}

fn result_json(r: &RefinedQueryResult, original: &AcqQuery) -> String {
    let pscores: Vec<String> = r.pscores.iter().map(|&p| json_num(p)).collect();
    let changes: Vec<String> = if original.constraint.op.is_expanding() {
        r.explain(original)
            .iter()
            .map(|c| format!("\"{}\"", json_escape(c)))
            .collect()
    } else {
        Vec::new()
    };
    format!(
        "{{\"pscores\":[{}],\"qscore\":{},\"aggregate\":{},\"error\":{},\
         \"sql\":\"{}\",\"changes\":[{}]}}",
        pscores.join(","),
        json_num(r.qscore),
        json_num(r.aggregate),
        json_num(r.error),
        json_escape(&r.sql),
        changes.join(",")
    )
}

#[allow(clippy::too_many_arguments)]
fn outcome_json(
    id: u64,
    outcome: &AcqOutcome,
    original: &AcqQuery,
    top: usize,
    duration: Duration,
    degraded: bool,
    outcome_key: &str,
    profile: Option<&ExplainProfile>,
) -> String {
    let queries: Vec<String> = outcome
        .queries
        .iter()
        .take(top)
        .map(|r| result_json(r, original))
        .collect();
    let closest = outcome
        .closest
        .as_ref()
        .map(|r| result_json(r, original))
        .unwrap_or_else(|| "null".to_string());
    let stats: Vec<String> = outcome
        .stats
        .fields()
        .iter()
        .map(|(k, v)| format!("\"{k}\":{v}"))
        .collect();
    let profile = profile
        .map(ExplainProfile::to_json)
        .unwrap_or_else(|| "null".to_string());
    format!(
        "{{\"id\":{id},\"satisfied\":{},\"degraded\":{degraded},\"termination\":{},\
         \"original_aggregate\":{},\
         \"explored\":{},\"layers\":{},\"duration_ms\":{},\"outcome_key\":\"{outcome_key}\",\
         \"queries\":[{}],\
         \"closest\":{},\"stats\":{{{}}},\"profile\":{}}}",
        outcome.satisfied,
        termination_json(&outcome.termination),
        json_num(outcome.original_aggregate),
        outcome.explored,
        outcome.layers,
        duration.as_millis(),
        queries.join(","),
        closest,
        stats.join(","),
        profile
    )
}

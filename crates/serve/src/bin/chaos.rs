//! `acq-chaos` — a hostile-client flood driver for a running `acq-serve`.
//!
//! Points a configurable mix of well-behaved and adversarial clients at a
//! live server and verifies the overload contract from the outside: every
//! connection gets an honest status from `{200, 400, 408, 413, 429, 503}`,
//! nothing is silently dropped, slowloris tricklers are cut off with `408`,
//! garbage gets `400`, and the server still answers `/healthz` afterwards.
//!
//! ```text
//! acq-serve --demo users --addr 127.0.0.1:7171 &
//! acq-chaos --addr 127.0.0.1:7171 --conns 32 --requests 4 \
//!           --slowloris 4 --garbage 4 --report chaos-report.json
//! ```
//!
//! Prints a JSON report (status histogram + per-probe verdicts) and exits
//! nonzero if any connection was dropped, any status fell outside the
//! honest set, or the server came out of the flood unhealthy.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
acq-chaos: flood a running acq-serve and audit its overload honesty

USAGE:
  acq-chaos --addr HOST:PORT [OPTIONS]

OPTIONS:
  --addr HOST:PORT   target server (required)
  --sql SQL          query the flood POSTs (default: the users demo query)
  --conns N          concurrent flood clients (default 32)
  --requests N       requests per flood client (default 4)
  --deadline-ms N    X-ACQ-Deadline-Ms sent with each query (default 2000)
  --slowloris N      trickling clients that must get 408 (default 4)
  --garbage N        non-HTTP clients that must get 400 (default 4)
  --report PATH      also write the JSON report to PATH
  --help             this text

Exit status: 0 when every connection was answered honestly, 1 otherwise.
";

const DEFAULT_SQL: &str = "SELECT * FROM users CONSTRAINT COUNT(*) >= 5K WHERE income <= 60000";

/// Statuses the overload contract allows a client to see.
const HONEST: &[u16] = &[200, 400, 408, 413, 429, 503];

struct Opts {
    addr: String,
    sql: String,
    conns: usize,
    requests: usize,
    deadline_ms: u64,
    slowloris: usize,
    garbage: usize,
    report: Option<String>,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Option<Opts>, String> {
    let mut opts = Opts {
        addr: String::new(),
        sql: DEFAULT_SQL.to_string(),
        conns: 32,
        requests: 4,
        deadline_ms: 2000,
        slowloris: 4,
        garbage: 4,
        report: None,
    };
    while let Some(arg) = args.next() {
        let mut need = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n\n{USAGE}"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--addr" => opts.addr = need("--addr")?,
            "--sql" => opts.sql = need("--sql")?,
            "--conns" => opts.conns = parse_num(&need("--conns")?, "--conns")?,
            "--requests" => opts.requests = parse_num(&need("--requests")?, "--requests")?,
            "--deadline-ms" => {
                opts.deadline_ms = parse_num(&need("--deadline-ms")?, "--deadline-ms")? as u64;
            }
            "--slowloris" => opts.slowloris = parse_num(&need("--slowloris")?, "--slowloris")?,
            "--garbage" => opts.garbage = parse_num(&need("--garbage")?, "--garbage")?,
            "--report" => opts.report = Some(need("--report")?),
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    if opts.addr.is_empty() {
        return Err(format!("--addr is required\n\n{USAGE}"));
    }
    Ok(Some(opts))
}

fn parse_num(value: &str, flag: &str) -> Result<usize, String> {
    value.parse().map_err(|e| format!("{flag}: {e}"))
}

/// One flood exchange: POST the query, read to EOF, return the status.
/// `None` means the connection was dropped without a parseable response —
/// the one thing the server must never do.
fn flood_once(addr: SocketAddr, sql: &str, deadline_ms: u64) -> Option<u16> {
    let body = format!("{{\"sql\":\"{}\"}}", sql.replace('"', "\\\""));
    let req = format!(
        "POST /query HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\
         X-ACQ-Deadline-Ms: {deadline_ms}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut s = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).ok()?;
    s.set_read_timeout(Some(Duration::from_secs(60))).ok()?;
    // A shed may FIN/RST before the whole request lands; whatever was
    // already answered still counts, so fall through to the read.
    let _ = s.write_all(req.as_bytes());
    let mut raw = String::new();
    let _ = s.read_to_string(&mut raw);
    raw.split_whitespace().nth(1)?.parse().ok()
}

/// Trickles a request that never completes its current header line, one
/// byte every 25ms. Returns the status the server answered with — `408`
/// once the read deadline fires (or `503` if the doorstep shed it first).
fn slowloris_once(addr: SocketAddr) -> Option<u16> {
    // Let the flood's initial connect storm drain first: a loris that
    // arrives into a momentarily full accept queue is shed with 503 on the
    // doorstep (honest, but then the read-deadline path goes unexercised).
    std::thread::sleep(Duration::from_millis(500));
    let mut s = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).ok()?;
    s.set_read_timeout(Some(Duration::from_secs(60))).ok()?;
    let mut drip = b"POST /query HTTP/1.1\r\nX-Drip: ".to_vec();
    drip.resize(600, b'x'); // endless header value: no line ever completes
    for byte in drip.chunks(1) {
        if s.write_all(byte).is_err() {
            break; // server gave up on us; go read its parting answer
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let mut raw = String::new();
    let _ = s.read_to_string(&mut raw);
    raw.split_whitespace().nth(1)?.parse().ok()
}

/// Writes bytes that are not HTTP. The server must answer 400, not hang.
fn garbage_once(addr: SocketAddr) -> Option<u16> {
    let mut s = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).ok()?;
    s.set_read_timeout(Some(Duration::from_secs(60))).ok()?;
    let _ = s.write_all(b"\x00\x13\x37 not http at all\r\n\r\n");
    let mut raw = String::new();
    let _ = s.read_to_string(&mut raw);
    raw.split_whitespace().nth(1)?.parse().ok()
}

fn healthz_ok(addr: SocketAddr) -> bool {
    let Ok(mut s) = TcpStream::connect_timeout(&addr, Duration::from_secs(5)) else {
        return false;
    };
    let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
    if s.write_all(b"GET /healthz HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n")
        .is_err()
    {
        return false;
    }
    let mut raw = String::new();
    let _ = s.read_to_string(&mut raw);
    raw.starts_with("HTTP/1.1 200")
}

fn run(opts: &Opts) -> Result<bool, String> {
    let addr: SocketAddr = opts
        .addr
        .to_socket_addrs()
        .map_err(|e| format!("--addr {}: {e}", opts.addr))?
        .next()
        .ok_or_else(|| format!("--addr {}: no usable address", opts.addr))?;

    // Phase 1: the flood — conns clients, each POSTing back to back, with
    // the slowloris and garbage probes running *concurrently* so the
    // hostile clients compete with real work for the same worker pool.
    let (statuses, dropped, loris, garbage) = std::thread::scope(|s| {
        let flood: Vec<_> = (0..opts.conns)
            .map(|_| {
                s.spawn(|| {
                    (0..opts.requests)
                        .map(|_| flood_once(addr, &opts.sql, opts.deadline_ms))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let loris: Vec<_> = (0..opts.slowloris)
            .map(|_| s.spawn(move || slowloris_once(addr)))
            .collect();
        let garbage: Vec<_> = (0..opts.garbage)
            .map(|_| s.spawn(move || garbage_once(addr)))
            .collect();

        let mut statuses: BTreeMap<u16, u64> = BTreeMap::new();
        let mut dropped = 0u64;
        for h in flood {
            for outcome in h.join().expect("flood client panicked") {
                match outcome {
                    Some(code) => *statuses.entry(code).or_insert(0) += 1,
                    None => dropped += 1,
                }
            }
        }
        let loris: Vec<Option<u16>> = loris
            .into_iter()
            .map(|h| h.join().expect("slowloris probe panicked"))
            .collect();
        let garbage: Vec<Option<u16>> = garbage
            .into_iter()
            .map(|h| h.join().expect("garbage probe panicked"))
            .collect();
        (statuses, dropped, loris, garbage)
    });

    // Phase 2: the audit. A hostile probe may also be shed on the doorstep
    // with 503 while the flood saturates the accept queue — that is still
    // an honest answer; what it must never get is silence or a hang.
    let dishonest: Vec<u16> = statuses
        .keys()
        .copied()
        .filter(|code| !HONEST.contains(code))
        .collect();
    let loris_408 = loris.iter().filter(|r| **r == Some(408)).count();
    let loris_ok = loris.iter().all(|r| matches!(r, Some(408 | 503)));
    let garbage_400 = garbage.iter().filter(|r| **r == Some(400)).count();
    let garbage_ok = garbage.iter().all(|r| matches!(r, Some(400 | 503)));
    let healthy = healthz_ok(addr);
    let ok = dropped == 0 && dishonest.is_empty() && loris_ok && garbage_ok && healthy;

    let histogram: Vec<String> = statuses
        .iter()
        .map(|(code, n)| format!("\"{code}\":{n}"))
        .collect();
    let report = format!(
        "{{\"target\":\"{}\",\"conns\":{},\"requests_per_conn\":{},\
         \"statuses\":{{{}}},\"dropped\":{dropped},\
         \"dishonest_statuses\":{dishonest:?},\
         \"slowloris\":{{\"sent\":{},\"got_408\":{loris_408},\"all_answered\":{loris_ok}}},\
         \"garbage\":{{\"sent\":{},\"got_400\":{garbage_400},\"all_answered\":{garbage_ok}}},\
         \"healthz_ok\":{healthy},\"ok\":{ok}}}",
        opts.addr,
        opts.conns,
        opts.requests,
        histogram.join(","),
        opts.slowloris,
        opts.garbage,
    );
    println!("{report}");
    if let Some(path) = &opts.report {
        std::fs::write(path, format!("{report}\n")).map_err(|e| format!("--report {path}: {e}"))?;
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match parse_args(std::env::args().skip(1)) {
        Ok(None) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Some(opts)) => match run(&opts) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::from(2)
            }
        },
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

//! Regenerates every table and figure of the paper's evaluation (§8).
//!
//! ```text
//! cargo run --release -p acq-bench --bin reproduce -- <experiment> [--rows N] [--quick]
//!
//! experiments: fig8 fig9 fig10a fig10b fig10c fig11 skew joins table1 workshare all
//! ```
//!
//! Each experiment prints the same rows/series the corresponding paper
//! figure plots; `EXPERIMENTS.md` records paper-vs-measured shapes.

use acq_baselines::{BinSearchParams, TqGenParams};
use acq_bench::{
    count_workload, q2_sum_workload, run_technique, Table, Technique, Workload, WorkloadSpec,
};
use acq_query::AggFunc;
use acquire_core::{AcquireConfig, EvalLayerKind};

const RATIOS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

#[derive(Debug, Clone)]
struct Opts {
    rows: usize,
    quick: bool,
}

impl Opts {
    fn tqgen(&self) -> TqGenParams {
        if self.quick {
            TqGenParams {
                levels_per_dim: 4,
                rounds: 2,
                max_queries: 20_000,
            }
        } else {
            TqGenParams::default()
        }
    }

    fn techniques(&self) -> Vec<Technique> {
        vec![
            Technique::Acquire(EvalLayerKind::GridIndex),
            Technique::TopK,
            Technique::TqGen(self.tqgen()),
            Technique::BinSearch(BinSearchParams::default()),
        ]
    }
}

fn na() -> String {
    "n/a".to_string()
}

fn cell(v: f64) -> String {
    Table::fmt_num(v)
}

/// Fig. 8: execution time, relative aggregate error and refinement score
/// versus the aggregate ratio (3 flexible predicates, δ = 0.05).
fn fig8(opts: &Opts, zipf: bool) -> Vec<Table> {
    let cfg = AcquireConfig::default();
    let label = if zipf { " (Zipf Z=1, §8.4.4)" } else { "" };
    let mut time = Table::new(
        format!("Figure 8a{label}: execution time (ms) vs aggregate ratio"),
        &["ratio", "ACQUIRE", "Top-k", "TQGen", "BinSearch"],
    );
    let mut err = Table::new(
        format!("Figure 8b{label}: relative aggregate error vs aggregate ratio"),
        &[
            "ratio",
            "ACQUIRE",
            "TQGen",
            "BinSearch(mean)",
            "BinSearch(max)",
        ],
    );
    let mut refine = Table::new(
        format!("Figure 8c{label}: refinement score vs aggregate ratio"),
        &["ratio", "ACQUIRE", "Top-k", "TQGen", "BinSearch"],
    );
    for ratio in RATIOS {
        let mut spec = WorkloadSpec::new(opts.rows, 3, ratio);
        if zipf {
            spec = spec.skewed();
        }
        let w = count_workload(&spec);
        let mut trow = vec![cell(ratio)];
        let mut rrow = vec![cell(ratio)];
        let mut erow = vec![cell(ratio)];
        for t in opts.techniques() {
            match run_technique(&w, &t, &cfg) {
                Ok(r) => {
                    trow.push(cell(r.time_ms));
                    rrow.push(cell(r.qscore));
                    if matches!(t, Technique::Acquire(_) | Technique::TqGen(_)) {
                        erow.push(cell(r.error));
                    }
                }
                Err(_) => {
                    trow.push(na());
                    rrow.push(na());
                }
            }
        }
        // BinSearch order sensitivity: mean and max error over orders.
        let (bs_mean, bs_max) = binsearch_order_spread(&w, &cfg, 3);
        erow.push(cell(bs_mean));
        erow.push(cell(bs_max));
        time.push(trow);
        err.push(erow);
        refine.push(rrow);
    }
    vec![time, err, refine]
}

/// Runs BinSearch across several predicate orders and reports the error
/// spread (the §8.4.1 instability result).
fn binsearch_order_spread(w: &Workload, cfg: &AcquireConfig, dims: usize) -> (f64, f64) {
    let orders: Vec<Vec<usize>> = match dims {
        1 => vec![vec![0]],
        2 => vec![vec![0, 1], vec![1, 0]],
        _ => {
            let mut v = Vec::new();
            for r in 0..dims {
                let mut o: Vec<usize> = (0..dims).collect();
                o.rotate_left(r);
                v.push(o.clone());
                o.reverse();
                v.push(o);
            }
            v
        }
    };
    let mut errors = Vec::new();
    for order in orders {
        let t = Technique::BinSearch(BinSearchParams {
            order: Some(order),
            ..Default::default()
        });
        if let Ok(r) = run_technique(w, &t, cfg) {
            errors.push(r.error);
        }
    }
    let mean = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
    let max = errors.iter().copied().fold(0.0, f64::max);
    (mean, max)
}

/// Fig. 9: the same metrics versus dimensionality (ratio 0.3).
fn fig9(opts: &Opts) -> Vec<Table> {
    let cfg = AcquireConfig::default();
    let mut time = Table::new(
        "Figure 9a: execution time (ms) vs number of flexible predicates",
        &["dims", "ACQUIRE", "Top-k", "TQGen", "BinSearch"],
    );
    let mut err = Table::new(
        "Figure 9b: relative aggregate error vs number of flexible predicates",
        &[
            "dims",
            "ACQUIRE",
            "TQGen",
            "BinSearch(mean)",
            "BinSearch(max)",
        ],
    );
    let mut refine = Table::new(
        "Figure 9c: refinement score vs number of flexible predicates",
        &["dims", "ACQUIRE", "Top-k", "TQGen", "BinSearch"],
    );
    let max_dims = if opts.quick { 4 } else { 5 };
    for dims in 1..=max_dims {
        let w = count_workload(&WorkloadSpec::new(opts.rows, dims, 0.3));
        let mut trow = vec![dims.to_string()];
        let mut rrow = vec![dims.to_string()];
        let mut erow = vec![dims.to_string()];
        for t in opts.techniques() {
            match run_technique(&w, &t, &cfg) {
                Ok(r) => {
                    trow.push(cell(r.time_ms));
                    rrow.push(cell(r.qscore));
                    if matches!(t, Technique::Acquire(_) | Technique::TqGen(_)) {
                        erow.push(cell(r.error));
                    }
                }
                Err(_) => {
                    trow.push(na());
                    rrow.push(na());
                }
            }
        }
        let (bs_mean, bs_max) = binsearch_order_spread(&w, &cfg, dims);
        erow.push(cell(bs_mean));
        erow.push(cell(bs_max));
        time.push(trow);
        err.push(erow);
        refine.push(rrow);
    }
    vec![time, err, refine]
}

/// Fig. 10a: execution time versus table size (ratio 0.3, 3 predicates).
fn fig10a(opts: &Opts) -> Vec<Table> {
    let cfg = AcquireConfig::default();
    let mut time = Table::new(
        "Figure 10a: execution time (ms) vs table size",
        &["rows", "ACQUIRE", "Top-k", "TQGen", "BinSearch"],
    );
    let sizes: Vec<usize> = if opts.quick {
        vec![1_000, 10_000, 100_000]
    } else {
        vec![1_000, 10_000, 100_000, 1_000_000]
    };
    for rows in sizes {
        let w = count_workload(&WorkloadSpec::new(rows, 3, 0.3));
        let mut trow = vec![rows.to_string()];
        for t in opts.techniques() {
            match run_technique(&w, &t, &cfg) {
                Ok(r) => trow.push(cell(r.time_ms)),
                Err(_) => trow.push(na()),
            }
        }
        time.push(trow);
    }
    vec![time]
}

/// Fig. 10b: ACQUIRE time versus the refinement threshold γ.
fn fig10b(opts: &Opts) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 10b: ACQUIRE execution time (ms) vs refinement threshold γ",
        &["gamma", "time_ms", "queries_explored", "refinement"],
    );
    let w = count_workload(&WorkloadSpec::new(opts.rows, 3, 0.3));
    for gamma in [2.0, 4.0, 6.0, 8.0, 10.0, 12.0] {
        let cfg = AcquireConfig::default().with_gamma(gamma);
        match run_technique(&w, &Technique::Acquire(EvalLayerKind::GridIndex), &cfg) {
            Ok(r) => t.push(vec![
                cell(gamma),
                cell(r.time_ms),
                r.queries.to_string(),
                cell(r.qscore),
            ]),
            Err(e) => t.push(vec![cell(gamma), e]),
        }
    }
    vec![t]
}

/// Fig. 10c: ACQUIRE time versus the cardinality (aggregate error)
/// threshold δ.
fn fig10c(opts: &Opts) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 10c: ACQUIRE execution time (ms) vs cardinality threshold δ",
        &["delta", "time_ms", "queries_explored", "error"],
    );
    let w = count_workload(&WorkloadSpec::new(opts.rows, 3, 0.3));
    for delta in [0.0001, 0.001, 0.01, 0.1] {
        let cfg = AcquireConfig::default().with_delta(delta);
        match run_technique(&w, &Technique::Acquire(EvalLayerKind::GridIndex), &cfg) {
            Ok(r) => t.push(vec![
                cell(delta),
                cell(r.time_ms),
                r.queries.to_string(),
                cell(r.error),
            ]),
            Err(e) => t.push(vec![cell(delta), e]),
        }
    }
    vec![t]
}

/// Fig. 11: ACQUIRE across aggregate types (SUM/COUNT/MAX on the Q2'
/// join workload).
fn fig11(opts: &Opts) -> Vec<Table> {
    let cfg = AcquireConfig::default();
    let mut time = Table::new(
        "Figure 11a: ACQUIRE execution time (ms) vs aggregate ratio, per aggregate",
        &["ratio", "SUM", "COUNT", "MAX"],
    );
    let mut refine = Table::new(
        "Figure 11b: ACQUIRE refinement score vs aggregate ratio, per aggregate",
        &["ratio", "SUM", "COUNT", "MAX"],
    );
    // The Q2 join workload's base cardinality: keep joins tractable.
    let rows = if opts.quick {
        10_000
    } else {
        opts.rows.min(200_000)
    };
    for ratio in RATIOS {
        let mut trow = vec![cell(ratio)];
        let mut rrow = vec![cell(ratio)];
        for agg in [AggFunc::Sum, AggFunc::Count, AggFunc::Max] {
            let w = q2_sum_workload(&WorkloadSpec::new(rows, 2, ratio), agg);
            match run_technique(&w, &Technique::Acquire(EvalLayerKind::GridIndex), &cfg) {
                Ok(r) => {
                    trow.push(cell(r.time_ms));
                    rrow.push(cell(r.qscore));
                }
                Err(e) => {
                    trow.push(e.clone());
                    rrow.push(na());
                }
            }
        }
        time.push(trow);
        refine.push(rrow);
    }
    vec![time, refine]
}

/// Join refinement (§2.4, §8.3): ACQUIRE widens a refinable equi-join into
/// the band `|l - r| <= w`; per Table 1 none of the baseline techniques can
/// refine join predicates, so only ACQUIRE has entries.
fn joins(opts: &Opts) -> Vec<Table> {
    let cfg = AcquireConfig::default();
    let rows = if opts.quick { 500 } else { 1_500 };
    let mut t = Table::new(
        "Join refinement: ACQUIRE on |left.j - right.j| <= w (baselines: n/a per Table 1)",
        &[
            "target_pairs",
            "time_ms",
            "band_width",
            "select_refine",
            "aggregate",
            "error",
        ],
    );
    for density in [0.5, 1.0, 2.0, 5.0, 10.0] {
        let w = acq_bench::join_workload(rows, density, 0xACC);
        match run_technique(&w, &Technique::Acquire(EvalLayerKind::GridIndex), &cfg) {
            Ok(r) => {
                // Join PScores use the denominator-100 convention: the score
                // IS the absolute band width.
                t.push(vec![
                    cell(w.query.constraint.target),
                    cell(r.time_ms),
                    cell(r.pscores.first().copied().unwrap_or(0.0)),
                    cell(r.pscores.get(1).copied().unwrap_or(0.0)),
                    cell(r.aggregate),
                    cell(r.error),
                ]);
            }
            Err(e) => t.push(vec![cell(w.query.constraint.target), e]),
        }
    }
    vec![t]
}

/// Table 1: the related-work capability matrix, probed programmatically.
fn table1(opts: &Opts) -> Vec<Table> {
    let cfg = AcquireConfig::default();
    let rows = if opts.quick {
        5_000
    } else {
        opts.rows.min(50_000)
    };
    let mut t = Table::new(
        "Table 1: technique capabilities (probed on live workloads)",
        &[
            "technique",
            "COUNT",
            "SUM/MIN/MAX/AVG",
            "proximity",
            "outputs query",
        ],
    );
    let count_w = count_workload(&WorkloadSpec::new(rows, 2, 0.5));
    let sum_w = q2_sum_workload(&WorkloadSpec::new(rows, 2, 0.5), AggFunc::Sum);
    let acq = Technique::Acquire(EvalLayerKind::GridIndex);
    let acq_count = run_technique(&count_w, &acq, &cfg).expect("acquire count");
    let techniques: Vec<Technique> = vec![
        acq.clone(),
        Technique::TopK,
        Technique::TqGen(opts.tqgen()),
        Technique::BinSearch(BinSearchParams::default()),
    ];
    for tech in techniques {
        let count_ok = run_technique(&count_w, &tech, &cfg);
        let sum_ok = run_technique(&sum_w, &tech, &cfg);
        let proximity = match (&tech, &count_ok) {
            (Technique::Acquire(_), _) => "yes (minimised)".to_string(),
            (Technique::TopK, Ok(r)) => {
                // Tuple-oriented: ranks tuples by proximity but the implied
                // query is skewed; report the measured blow-up vs ACQUIRE.
                format!(
                    "tuples only ({}x ACQUIRE)",
                    cell(r.qscore / acq_count.qscore.max(1e-9))
                )
            }
            (_, Ok(r)) => {
                format!(
                    "no ({}x ACQUIRE)",
                    cell(r.qscore / acq_count.qscore.max(1e-9))
                )
            }
            (_, Err(_)) => na(),
        };
        let outputs_query = match tech {
            Technique::TopK => "no (tuple set)",
            _ => "yes",
        };
        t.push(vec![
            tech.name().to_string(),
            count_ok
                .map(|r| format!("yes (err {})", cell(r.error)))
                .unwrap_or_else(|_| "no".into()),
            sum_ok
                .map(|r| format!("yes (err {})", cell(r.error)))
                .unwrap_or_else(|_| "no".into()),
            proximity,
            outputs_query.to_string(),
        ]);
    }
    vec![t]
}

/// §5/§6 work-sharing: tuples scanned and queries issued per technique.
fn workshare(opts: &Opts) -> Vec<Table> {
    let cfg = AcquireConfig::default();
    let rows = if opts.quick { 10_000 } else { opts.rows };
    let w = count_workload(&WorkloadSpec::new(rows, 3, 0.3));
    let mut t = Table::new(
        "Work sharing (§5): evaluation-layer work per technique",
        &[
            "technique",
            "queries",
            "tuples_scanned",
            "scans/universe",
            "peak_store",
            "error",
        ],
    );
    let techniques: Vec<Technique> = vec![
        Technique::Acquire(EvalLayerKind::Scan),
        Technique::Acquire(EvalLayerKind::CachedScore),
        Technique::Acquire(EvalLayerKind::GridIndex),
        Technique::TqGen(opts.tqgen()),
        Technique::BinSearch(BinSearchParams::default()),
    ];
    for tech in techniques {
        match run_technique(&w, &tech, &cfg) {
            Ok(r) => t.push(vec![
                tech.name().to_string(),
                r.queries.to_string(),
                r.stats.tuples_scanned.to_string(),
                cell(r.stats.tuples_scanned as f64 / rows as f64),
                r.peak_store.to_string(),
                cell(r.error),
            ]),
            Err(e) => t.push(vec![tech.name().to_string(), e]),
        }
    }
    vec![t]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = String::new();
    let mut opts = Opts {
        rows: 100_000,
        quick: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rows" => {
                opts.rows = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--rows needs a number"));
            }
            "--quick" => {
                opts.quick = true;
                opts.rows = opts.rows.min(10_000);
            }
            other if experiment.is_empty() && !other.starts_with('-') => {
                experiment = other.to_string();
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    if experiment.is_empty() {
        die(
            "usage: reproduce <fig8|fig9|fig10a|fig10b|fig10c|fig11|skew|joins|table1|workshare|all> \
             [--rows N] [--quick]",
        );
    }

    let tables = match experiment.as_str() {
        "fig8" => fig8(&opts, false),
        "fig9" => fig9(&opts),
        "fig10a" => fig10a(&opts),
        "fig10b" => fig10b(&opts),
        "fig10c" => fig10c(&opts),
        "fig11" => fig11(&opts),
        "skew" => fig8(&opts, true),
        "table1" => table1(&opts),
        "joins" => joins(&opts),
        "workshare" => workshare(&opts),
        "all" => {
            let mut all = Vec::new();
            all.extend(fig8(&opts, false));
            all.extend(fig9(&opts));
            all.extend(fig10a(&opts));
            all.extend(fig10b(&opts));
            all.extend(fig10c(&opts));
            all.extend(fig11(&opts));
            all.extend(fig8(&opts, true));
            all.extend(joins(&opts));
            all.extend(table1(&opts));
            all.extend(workshare(&opts));
            all
        }
        other => die(&format!("unknown experiment {other}")),
    };
    println!(
        "# ACQUIRE reproduction — experiment `{experiment}` (rows={}, quick={})\n",
        opts.rows, opts.quick
    );
    for table in tables {
        println!("{table}");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

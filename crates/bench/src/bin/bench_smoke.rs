//! CI perf-smoke harness: serial vs parallel ACQUIRE on the quick fig9
//! (dimensionality) and fig10 (table size) workloads.
//!
//! For every workload the harness runs the search at 1 thread and at
//! `--threads` (default 4), checks the two outcomes are **bit-identical**,
//! and records wall-clock plus the machine-independent work counters to a
//! JSON report (`--out`). Against a committed baseline (`--check`) it fails
//! when wall-clock regresses more than 20% after normalising by a fixed
//! CPU-calibration microbenchmark, so baselines recorded on one machine
//! remain meaningful on another. `--require-speedup X` additionally fails
//! when the geometric-mean parallel speedup drops below `X` — skipped (with
//! a notice) when the host has fewer cores than `--threads`, where a
//! speedup is physically impossible.
//!
//! Since report version 2 the harness also runs one workload with the
//! observability layer enabled, embeds the resulting metrics snapshot in
//! the report (`"metrics"`), cross-checks the snapshot's deterministic
//! counters against the uninstrumented run, and records the wall-clock
//! overhead of a metrics-enabled run (`"obs_overhead"`). Version 3 adds
//! `"serve_overhead"`: the same workload run through the serve crate's
//! per-request instrumentation path (query registry, per-query traced
//! `Obs` handle, snapshot folded into a process-scoped `Metrics`) versus
//! a bare library call, i.e. what one request pays for the `/queries`,
//! `/trace/<id>` and `/metrics` surfaces. Version 4 adds `"overload"`: a
//! live `acq-serve` on an ephemeral port with deliberately tight admission
//! limits, flooded over real sockets at several times its concurrency
//! limit — recording sustained answered-requests/second and the status
//! histogram, and asserting the overload contract (every connection
//! answered, statuses only from `{200, 503}` with rate limiting off).
//! Version 5 adds `"pruning"`: a zone-map ablation on the largest fig10
//! workload (serial, pruning on vs off) asserting bit-identical outcomes,
//! `zones_pruned > 0` and a strict `tuples_scanned` reduction — the row CI's
//! `prune-smoke` step gates on — plus `"speedup_gate"`, which records
//! whether the parallel-speedup gate was evaluated or skipped for lack of
//! cores (so a single-core baseline is self-describing). Version 6 adds
//! `"recorder_overhead"`: the same workload run with the live-progress path
//! fully armed — a `ProgressSink` attached to the driver and a
//! `FlightRecorder` sampling the process metrics at its default cadence —
//! versus an identical recorder-less run. Like `obs_overhead`, the row is a
//! trend record; the hard <2% gate lives in the test suite where it can
//! retry (`crates/core/tests/observability.rs`). Version 7 adds
//! `"ops_overhead"`: the fig10 sweep run with the full operations layer
//! armed — every request's lifecycle record formatted and appended to a
//! durable journal (wait-free ring, dedicated writer thread) plus an SLO
//! alert engine evaluated against a flight-recorder probe once per request,
//! far more often than the production 250ms cadence — versus identical
//! journal-less runs, asserting zero ring drops and zero write errors.
//! Baselines are versioned per PR (`BENCH_PR<n>.json`, see
//! `BENCH_TRAJECTORY.md`); the parser accepts any version.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{Read, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use acq_bench::{count_workload, measure, run_technique, Technique, WorkloadSpec};
use acq_engine::Executor;
use acq_obs::{
    FlightRecorder, Metrics, QueryRegistry, QuerySummary, DEFAULT_RECORDER_CADENCE,
    DEFAULT_RECORDER_CAPACITY,
};
use acq_serve::{alerts::parse_alerts, AlertEngine, ServeConfig, Server};
use acquire_core::{
    run_acquire_observed, run_acquire_progress, AcquireConfig, CancellationToken, EvalLayerKind,
    Obs, ProgressSink, DEFAULT_PROGRESS_CAPACITY,
};

/// Report format version. v2 added `pr`, `obs_overhead` and the embedded
/// `metrics` snapshot; v3 added `serve_overhead`; v4 added `overload`; v5
/// added `pruning` (zone-map ablation) and `speedup_gate`; v6 added
/// `recorder_overhead` (progress sink + flight recorder armed); v7 adds
/// `ops_overhead` (durable journal + alert engine armed over the fig10
/// sweep). The baseline parser accepts older reports too.
const REPORT_VERSION: u64 = 7;
/// The PR whose baseline this binary emits (`BENCH_PR<n>.json`).
const BASELINE_PR: u64 = 10;
/// How much slower than the (calibration-scaled) baseline a workload may
/// get before the check fails.
const REGRESSION_FACTOR: f64 = 1.2;
/// Absolute slack added on top, so millisecond-scale workloads don't flake.
const REGRESSION_FLOOR_MS: f64 = 10.0;

struct Args {
    out: Option<String>,
    check: Option<String>,
    require_speedup: Option<f64>,
    threads: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: None,
        check: None,
        require_speedup: None,
        threads: 4,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut need = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--out" => args.out = Some(need("--out")?),
            "--check" => args.check = Some(need("--check")?),
            "--require-speedup" => {
                args.require_speedup = Some(
                    need("--require-speedup")?
                        .parse()
                        .map_err(|e| format!("--require-speedup: {e}"))?,
                );
            }
            "--threads" => {
                args.threads = need("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.threads < 2 {
        return Err("--threads must be at least 2".into());
    }
    Ok(args)
}

/// A fixed, data-independent CPU workload (~a few hundred ms of splitmix64
/// hashing). Its wall-clock is the unit used to transfer baselines between
/// machines of different single-core speed.
fn calibrate_ms() -> f64 {
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let (_, ms) = measure(|| {
            let mut acc = 0u64;
            for i in 0..30_000_000u64 {
                acc ^= splitmix64(i);
            }
            std::hint::black_box(acc)
        });
        best = best.min(ms);
    }
    best
}

struct WorkloadReport {
    name: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
    cells: u64,
    tuples_scanned: u64,
}

impl WorkloadReport {
    fn speedup(&self) -> f64 {
        self.serial_ms / self.parallel_ms
    }
}

/// The search outcome with floats as bits, excluding the work counters:
/// zone pruning legitimately changes `tuples_scanned`/`zones_*` while the
/// answer must stay bit-identical.
fn outcome_key(r: &acq_bench::runner::RunResult) -> String {
    format!(
        "error={} qscore={} pscores={:?} aggregate={} queries={} satisfied={} peak_store={}",
        r.error.to_bits(),
        r.qscore.to_bits(),
        r.pscores.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
        r.aggregate.to_bits(),
        r.queries,
        r.satisfied,
        r.peak_store,
    )
}

/// Everything observable about a run except wall-clock, floats as bits.
/// Includes the work counters: across thread counts (same pruning mode)
/// even the accounting must agree.
fn identity_key(r: &acq_bench::runner::RunResult) -> String {
    format!("{} stats={:?}", outcome_key(r), r.stats)
}

fn run_workload(name: &'static str, spec: &WorkloadSpec, threads: usize) -> WorkloadReport {
    let workload = count_workload(spec);
    let technique = Technique::Acquire(EvalLayerKind::CachedScore);
    let serial_cfg = AcquireConfig::default();
    let parallel_cfg = AcquireConfig::default().with_threads(threads);

    // Best-of-2 wall-clock; the outcomes themselves are deterministic.
    let mut serial_ms = f64::INFINITY;
    let mut parallel_ms = f64::INFINITY;
    let mut serial = None;
    let mut parallel = None;
    for _ in 0..2 {
        let r = run_technique(&workload, &technique, &serial_cfg).expect("serial run");
        serial_ms = serial_ms.min(r.time_ms);
        serial = Some(r);
        let r = run_technique(&workload, &technique, &parallel_cfg).expect("parallel run");
        parallel_ms = parallel_ms.min(r.time_ms);
        parallel = Some(r);
    }
    let serial = serial.expect("ran");
    let parallel = parallel.expect("ran");
    assert_eq!(
        identity_key(&serial),
        identity_key(&parallel),
        "{name}: parallel outcome diverged from serial"
    );
    WorkloadReport {
        name,
        serial_ms,
        parallel_ms,
        cells: serial.queries,
        tuples_scanned: serial.stats.tuples_scanned,
    }
}

/// Zone-map ablation on one workload: the same serial search with pruning
/// on and off.
struct PruneReport {
    workload: &'static str,
    pruned_ms: f64,
    unpruned_ms: f64,
    zones_pruned: u64,
    zones_full: u64,
    zones_scanned: u64,
    tuples_pruned: u64,
    tuples_unpruned: u64,
}

impl PruneReport {
    fn speedup(&self) -> f64 {
        self.unpruned_ms / self.pruned_ms
    }
}

/// Runs `spec` serially with zone pruning on and off (best-of-2 each),
/// asserts the outcomes are bit-identical, that pruning actually fired and
/// that it scanned strictly fewer tuples. CI's `prune-smoke` step re-checks
/// the recorded row from the report JSON, so a silently disabled pruning
/// path cannot pass.
fn pruning_ablation(workload_name: &'static str, spec: &WorkloadSpec) -> PruneReport {
    let workload = count_workload(spec);
    let technique = Technique::Acquire(EvalLayerKind::CachedScore);
    let on_cfg = AcquireConfig::default();
    let off_cfg = AcquireConfig::default().with_zone_pruning(false);

    let mut pruned_ms = f64::INFINITY;
    let mut unpruned_ms = f64::INFINITY;
    let mut on = None;
    let mut off = None;
    for _ in 0..2 {
        let r = run_technique(&workload, &technique, &on_cfg).expect("pruned run");
        pruned_ms = pruned_ms.min(r.time_ms);
        on = Some(r);
        let r = run_technique(&workload, &technique, &off_cfg).expect("unpruned run");
        unpruned_ms = unpruned_ms.min(r.time_ms);
        off = Some(r);
    }
    let on = on.expect("ran");
    let off = off.expect("ran");
    assert_eq!(
        outcome_key(&on),
        outcome_key(&off),
        "{workload_name}: zone pruning changed the search outcome"
    );
    assert!(
        on.stats.zones_pruned > 0,
        "{workload_name}: zone pruning never skipped a block"
    );
    assert!(
        on.stats.tuples_scanned < off.stats.tuples_scanned,
        "{workload_name}: pruned run must scan strictly fewer tuples ({} vs {})",
        on.stats.tuples_scanned,
        off.stats.tuples_scanned
    );
    PruneReport {
        workload: workload_name,
        pruned_ms,
        unpruned_ms,
        zones_pruned: on.stats.zones_pruned,
        zones_full: on.stats.zones_full,
        zones_scanned: on.stats.zones_scanned,
        tuples_pruned: on.stats.tuples_scanned,
        tuples_unpruned: off.stats.tuples_scanned,
    }
}

/// Result of the instrumented run: overhead measurement plus the metrics
/// snapshot JSON to embed in the report.
struct ObsReport {
    plain_ms: f64,
    observed_ms: f64,
    /// Snapshot of the observed run, already rendered as compact JSON.
    metrics_json: String,
}

impl ObsReport {
    fn overhead_pct(&self) -> f64 {
        (self.observed_ms / self.plain_ms - 1.0) * 100.0
    }
}

/// Runs one workload serially with metrics enabled, cross-checks the
/// snapshot's deterministic counters against the run outcome, and measures
/// the wall-clock delta against an identical uninstrumented run
/// (best-of-3 each, so the delta reflects steady state, not noise).
fn observed_run(spec: &WorkloadSpec) -> ObsReport {
    let workload = count_workload(spec);
    let cfg = AcquireConfig::default();
    let kind = EvalLayerKind::CachedScore;

    let mut plain_ms = f64::INFINITY;
    let mut observed_ms = f64::INFINITY;
    let mut snapshot = None;
    for _ in 0..3 {
        let mut exec = Executor::new(workload.catalog.clone());
        let (out, ms) = measure(|| {
            run_acquire_observed(&mut exec, &workload.query, &cfg, kind, &Obs::disabled())
        });
        out.expect("uninstrumented run");
        plain_ms = plain_ms.min(ms);

        let obs = Obs::enabled();
        let mut exec = Executor::new(workload.catalog.clone());
        let (out, ms) =
            measure(|| run_acquire_observed(&mut exec, &workload.query, &cfg, kind, &obs));
        let out = out.expect("instrumented run");
        observed_ms = observed_ms.min(ms);

        let snap = obs.snapshot().expect("enabled handle has a snapshot");
        assert_eq!(
            snap.counter("cells_executed"),
            Some(out.explored),
            "metrics snapshot disagrees with AcqOutcome.explored"
        );
        assert_eq!(
            snap.counter("at_most_once_violations"),
            Some(0),
            "a cell sub-query was executed twice"
        );
        snapshot = Some(snap);
    }
    ObsReport {
        plain_ms,
        observed_ms,
        metrics_json: snapshot.expect("ran").to_json(),
    }
}

/// Wall-clock comparison of a plain instrumented run against one with the
/// full live-progress path armed: a [`ProgressSink`] fed from the driver's
/// layer-boundary commits plus a [`FlightRecorder`] sampling the process
/// metrics at its default cadence.
struct RecorderReport {
    plain_ms: f64,
    recorded_ms: f64,
    /// Layer-boundary events the sink captured on the final run.
    events: u64,
    /// Samples the recorder's background thread took while runs were live.
    samples: u64,
}

impl RecorderReport {
    fn overhead_pct(&self) -> f64 {
        (self.recorded_ms / self.plain_ms - 1.0) * 100.0
    }
}

/// Runs one workload serially with metrics enabled (the recorder-less
/// baseline), then identically with a progress sink attached and a flight
/// recorder running at [`DEFAULT_RECORDER_CADENCE`] over a process-scoped
/// [`Metrics`] that absorbs each run's snapshot — i.e. exactly what an
/// `acq-serve` request pays when someone is watching `/timeseries` and
/// `/query/<id>/progress`. Best-of-3 each; asserts the sink saw a strictly
/// monotone stream ending in a terminal event.
fn recorder_run(spec: &WorkloadSpec) -> RecorderReport {
    let workload = count_workload(spec);
    let cfg = AcquireConfig::default();
    let kind = EvalLayerKind::CachedScore;
    let process_metrics = Arc::new(Metrics::new());
    let recorder = FlightRecorder::start(
        Arc::clone(&process_metrics),
        DEFAULT_RECORDER_CADENCE,
        DEFAULT_RECORDER_CAPACITY,
    );

    let mut plain_ms = f64::INFINITY;
    let mut recorded_ms = f64::INFINITY;
    let mut events = 0u64;
    for _ in 0..3 {
        let obs = Obs::enabled();
        let mut exec = Executor::new(workload.catalog.clone());
        let (out, ms) =
            measure(|| run_acquire_observed(&mut exec, &workload.query, &cfg, kind, &obs));
        out.expect("recorder-less run");
        plain_ms = plain_ms.min(ms);

        let obs = Obs::enabled();
        let sink = ProgressSink::new(DEFAULT_PROGRESS_CAPACITY);
        let mut exec = Executor::new(workload.catalog.clone());
        let (out, ms) = measure(|| {
            run_acquire_progress(
                &mut exec,
                &workload.query,
                &cfg,
                kind,
                &CancellationToken::new(),
                &obs,
                Some(&sink),
            )
        });
        let out = out.expect("recorded run");
        recorded_ms = recorded_ms.min(ms);
        process_metrics.absorb_snapshot(&obs.snapshot().expect("enabled handle"));

        let (stream, _, missed) = sink.drain_from(0);
        assert_eq!(missed, 0, "default capacity must hold the whole stream");
        assert!(
            stream.windows(2).all(|w| w[0].explored < w[1].explored),
            "progress stream not strictly monotone"
        );
        let last = stream.last().expect("at least the terminal event");
        assert!(last.terminal, "stream must end with the terminal event");
        assert_eq!(last.explored, out.explored, "terminal totals disagree");
        events = stream.len() as u64;
    }
    recorder.sample_now();
    RecorderReport {
        plain_ms,
        recorded_ms,
        events,
        samples: recorder.len() as u64,
    }
}

/// Wall-clock comparison of a bare library run against the serve crate's
/// per-request path.
struct ServeReport {
    plain_ms: f64,
    served_ms: f64,
}

impl ServeReport {
    fn overhead_pct(&self) -> f64 {
        (self.served_ms / self.plain_ms - 1.0) * 100.0
    }
}

/// Trace-buffer capacity matching the serve crate's default, so the
/// measured per-request cost covers the same span recording a real
/// `POST /query` pays for.
const SERVE_TRACE_CAPACITY: usize = 4096;

/// Runs one workload the way `acq-serve` runs a request — registry entry,
/// per-query traced `Obs` handle, snapshot folded into the process-scoped
/// `Metrics`, trace rendered at completion — and measures the wall-clock
/// delta against a bare uninstrumented library call (best-of-3 each).
/// Socket and JSON-parsing costs are excluded on purpose: they are
/// per-deployment noise, while this path is the fixed per-request price of
/// the observability surfaces.
fn serve_mode_run(spec: &WorkloadSpec) -> ServeReport {
    let workload = count_workload(spec);
    let cfg = AcquireConfig::default();
    let kind = EvalLayerKind::CachedScore;
    let registry = QueryRegistry::default();
    let process_metrics = Metrics::new();

    let mut plain_ms = f64::INFINITY;
    let mut served_ms = f64::INFINITY;
    for _ in 0..3 {
        let mut exec = Executor::new(workload.catalog.clone());
        let (out, ms) = measure(|| {
            run_acquire_observed(&mut exec, &workload.query, &cfg, kind, &Obs::disabled())
        });
        out.expect("uninstrumented run");
        plain_ms = plain_ms.min(ms);

        let mut exec = Executor::new(workload.catalog.clone());
        let ((id, out), ms) = measure(|| {
            let id = registry.begin("bench serve-mode workload".to_string(), 1);
            let obs = Obs::with_trace(SERVE_TRACE_CAPACITY);
            obs.set_query_id(id);
            let out = run_acquire_observed(&mut exec, &workload.query, &cfg, kind, &obs)
                .expect("served run");
            let snap = obs.snapshot().expect("enabled handle has a snapshot");
            process_metrics.absorb_snapshot(&snap);
            registry.finish(
                id,
                QuerySummary {
                    termination: out.termination.slug().to_string(),
                    explored: out.explored,
                    cells_executed: snap.counter("cells_executed").unwrap_or(0),
                    answers: out.queries.len() as u64,
                    satisfied: out.satisfied,
                    layers: out.layers,
                },
                0,
                obs.render_trace_json(),
            );
            (id, out)
        });
        served_ms = served_ms.min(ms);
        let record = registry.get(id).expect("finished record retained");
        assert_eq!(
            record.summary.map(|s| s.cells_executed),
            Some(out.explored),
            "registry record disagrees with the run's ground truth"
        );
    }
    ServeReport {
        plain_ms,
        served_ms,
    }
}

/// Throughput and status histogram of a socket-level flood against a live
/// server with deliberately tight admission limits.
struct OverloadReport {
    conns: usize,
    requests_per_conn: usize,
    wall_ms: f64,
    statuses: BTreeMap<u16, u64>,
    dropped: u64,
    /// The server's own admission accounting
    /// ([`acq_obs::AdmissionStats::to_json`]), captured after the flood.
    admission_json: String,
}

impl OverloadReport {
    fn answered(&self) -> u64 {
        self.statuses.values().sum()
    }

    fn per_sec(&self) -> f64 {
        self.answered() as f64 / (self.wall_ms / 1000.0)
    }
}

/// The flood query: forces real expansion work over the bench `lineitem`
/// table, but every request carries a transport deadline so an admitted
/// query never pins a worker for long.
const OVERLOAD_SQL: &str = "SELECT * FROM lineitem CONSTRAINT COUNT(*) >= 8K WHERE l_quantity <= 1";

/// One flood exchange; `None` means the connection was dropped without a
/// parseable response — the thing the overload contract forbids.
fn overload_exchange(addr: SocketAddr) -> Option<u16> {
    // Fine-grained gamma multiplies refinement steps (and, on the Scan
    // layer, full-table re-scans): each admitted query is real work.
    let body = format!("{{\"sql\":\"{OVERLOAD_SQL}\",\"gamma\":0.2}}");
    let req = format!(
        "POST /query HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\
         X-ACQ-Deadline-Ms: 400\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut s = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).ok()?;
    s.set_read_timeout(Some(Duration::from_secs(30))).ok()?;
    // A doorstep shed may close before the whole request lands; whatever
    // the server already answered still counts, so fall through to read.
    let _ = s.write_all(req.as_bytes());
    let mut raw = String::new();
    let _ = s.read_to_string(&mut raw);
    raw.split_whitespace().nth(1)?.parse().ok()
}

/// Starts a real server over the bench catalog with tight admission limits
/// (2 execution slots, 2-deep queue, 4x flood), floods it, and measures
/// sustained answered-requests/second. Asserts the overload contract:
/// every connection answered, every status honest.
fn overload_run(spec: &WorkloadSpec) -> OverloadReport {
    let workload = count_workload(spec);
    let config = ServeConfig {
        // The Scan layer re-executes every cell query, making each request
        // expensive enough that a 4x flood genuinely overloads two slots.
        layer: EvalLayerKind::Scan,
        max_concurrent: 2,
        max_queued: 2,
        // Short queue patience relative to per-query cost, so the flood
        // visibly exercises the shed path as well as the degrade path.
        queue_wait: Duration::from_millis(10),
        degrade_watermark: 0.5,
        workers: 4,
        accept_queue: 8,
        ..ServeConfig::default()
    };
    let server = Server::start(config, workload.catalog.clone()).expect("bind overload server");
    let addr = server.addr();
    let conns = 8; // 4x the execution-slot limit
    let requests_per_conn = 6;

    let (outcomes, wall_ms) = measure(|| {
        std::thread::scope(|s| {
            let clients: Vec<_> = (0..conns)
                .map(|_| {
                    s.spawn(move || {
                        (0..requests_per_conn)
                            .map(|_| overload_exchange(addr))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            clients
                .into_iter()
                .flat_map(|h| h.join().expect("flood client panicked"))
                .collect::<Vec<_>>()
        })
    });

    let mut statuses: BTreeMap<u16, u64> = BTreeMap::new();
    let mut dropped = 0u64;
    for outcome in outcomes {
        match outcome {
            Some(code) => *statuses.entry(code).or_insert(0) += 1,
            None => dropped += 1,
        }
    }
    assert_eq!(
        dropped, 0,
        "overload flood dropped connections: {statuses:?}"
    );
    for code in statuses.keys() {
        // Rate limiting is off here, so the honest set is {200, 503}.
        assert!(
            matches!(code, 200 | 503),
            "dishonest status {code} under overload: {statuses:?}"
        );
    }
    OverloadReport {
        conns,
        requests_per_conn,
        wall_ms,
        statuses,
        dropped,
        admission_json: server.state().telemetry.admission.to_json(),
    }
}

/// Wall-clock cost of the full operations layer, measured per fig10
/// workload.
struct OpsRow {
    name: &'static str,
    plain_ms: f64,
    ops_ms: f64,
}

/// The fig10 sweep with the durable journal and the SLO alert engine armed.
struct OpsReport {
    rows: Vec<OpsRow>,
    /// Journal ring accounting after the sweep: the row is only honest if
    /// nothing was silently dropped or lost to disk errors.
    written: u64,
    dropped: u64,
    write_errors: u64,
    /// Alert-state transitions over the sweep (quiet rules: must be zero).
    transitions: u64,
}

impl OpsReport {
    fn overhead_pct(&self) -> f64 {
        let plain: f64 = self.rows.iter().map(|r| r.plain_ms).sum();
        let ops: f64 = self.rows.iter().map(|r| r.ops_ms).sum();
        (ops / plain - 1.0) * 100.0
    }
}

/// Runs the fig10 sweep twice per workload (best-of-3 each): once plain
/// (metrics enabled, no operations layer) and once with a durable journal
/// receiving one lifecycle record per request via its wait-free ring and an
/// [`AlertEngine`] evaluated against a flight-recorder probe after every
/// request — a strictly harsher cadence than the production alert thread's
/// 250ms interval. The record is formatted inside the measured region so
/// the row charges everything a served request pays. Asserts the ring
/// dropped nothing, the writer hit no disk errors, and the (quiet) rules
/// never paged; the wall-clock delta itself is a trend row, with the hard
/// <2% gate in `crates/serve/tests/ops_overhead.rs` where it can retry.
fn ops_run(specs: &[(&'static str, WorkloadSpec)]) -> OpsReport {
    use acq_obs::journal::{Journal, DEFAULT_JOURNAL_CAPACITY, DEFAULT_JOURNAL_MAX_BYTES};

    let path = std::env::temp_dir().join(format!("acq-bench-ops-{}.journal", std::process::id()));
    let journal = Journal::open(&path, DEFAULT_JOURNAL_MAX_BYTES, DEFAULT_JOURNAL_CAPACITY)
        .expect("open bench journal");
    let ring = journal.ring();
    // Two realistic, deliberately quiet rules: a missing signal (never
    // pages by contract) and an unreachable error-rate threshold. The
    // evaluation cost is identical to rules that would page.
    let mut engine = AlertEngine::new(
        parse_alerts(
            "[[rule]]\nname = \"p99-latency-high\"\nsignal = \"p99_latency_ms\"\n\
             threshold = 1e12\nwindow_secs = 60\n\n\
             [[rule]]\nname = \"error-rate-high\"\nsignal = \"queries_err_per_sec\"\n\
             threshold = 1e12\nwindow_secs = 60\nfor_secs = 30\n",
        )
        .expect("bench alert rules"),
    );
    let process_metrics = Arc::new(Metrics::new());
    let recorder = FlightRecorder::start(
        Arc::clone(&process_metrics),
        DEFAULT_RECORDER_CADENCE,
        DEFAULT_RECORDER_CAPACITY,
    );
    let probe = |signal: &str, window: Duration| -> Option<f64> {
        signal
            .strip_suffix("_per_sec")
            .and_then(|counter| recorder.rate(counter, window))
    };
    let t0 = std::time::Instant::now();

    let cfg = AcquireConfig::default();
    let kind = EvalLayerKind::CachedScore;
    let mut rows = Vec::new();
    let mut transitions = 0u64;
    let mut id = 0u64;
    for (name, spec) in specs {
        let workload = count_workload(spec);
        let mut plain_ms = f64::INFINITY;
        let mut ops_ms = f64::INFINITY;
        for _ in 0..3 {
            let obs = Obs::enabled();
            let mut exec = Executor::new(workload.catalog.clone());
            let (out, ms) =
                measure(|| run_acquire_observed(&mut exec, &workload.query, &cfg, kind, &obs));
            out.expect("plain run");
            plain_ms = plain_ms.min(ms);

            let obs = Obs::enabled();
            let mut exec = Executor::new(workload.catalog.clone());
            id += 1;
            let (accepted, ms) = measure(|| {
                let out = run_acquire_observed(&mut exec, &workload.query, &cfg, kind, &obs)
                    .expect("ops run");
                process_metrics.absorb_snapshot(&obs.snapshot().expect("enabled handle"));
                let record = format!(
                    "{{\"v\":1,\"kind\":\"query\",\"at_ms\":{},\"id\":{id},\"status\":200,\
                     \"queued\":false,\"degraded\":false,\"satisfied\":{},\
                     \"termination\":\"{}\",\"layers\":{},\"explored\":{},\
                     \"zones_pruned\":{},\"duration_ms\":0.0,\
                     \"outcome_key\":\"{:016x}\"}}",
                    acq_obs::journal::unix_ms(),
                    out.satisfied,
                    out.termination.slug(),
                    out.layers,
                    out.explored,
                    out.stats.zones_pruned,
                    out.original_aggregate.to_bits(),
                );
                let accepted = ring.try_append(record);
                transitions += engine.evaluate(t0.elapsed(), &probe).len() as u64;
                accepted
            });
            assert!(accepted, "{name}: journal ring dropped a bench record");
            ops_ms = ops_ms.min(ms);
        }
        rows.push(OpsRow {
            name,
            plain_ms,
            ops_ms,
        });
    }
    assert!(
        journal.flush(Duration::from_secs(10)),
        "journal writer did not settle"
    );
    let report = OpsReport {
        rows,
        written: ring.written(),
        dropped: ring.dropped(),
        write_errors: ring.write_errors(),
        transitions,
    };
    assert_eq!(report.written, id, "every bench record must reach disk");
    assert_eq!(report.dropped, 0, "ring dropped records under bench load");
    assert_eq!(report.write_errors, 0, "journal writer hit disk errors");
    assert_eq!(report.transitions, 0, "quiet rules paged during the sweep");
    drop(journal);
    let _ = std::fs::remove_file(&path);
    report
}

/// Host-level run context stamped into the report header and consulted by
/// the speedup gate.
struct RunInfo {
    calibration_ms: f64,
    threads: usize,
    cores: usize,
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    info: &RunInfo,
    rows: &[WorkloadReport],
    prune: &PruneReport,
    obs: &ObsReport,
    recorder: &RecorderReport,
    serve: &ServeReport,
    overload: &OverloadReport,
    ops: &OpsReport,
) -> String {
    let RunInfo {
        calibration_ms,
        threads,
        cores,
    } = *info;
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"version\": {REPORT_VERSION},");
    let _ = writeln!(s, "  \"pr\": {BASELINE_PR},");
    let _ = writeln!(s, "  \"threads\": {threads},");
    let _ = writeln!(s, "  \"cores\": {cores},");
    let _ = writeln!(s, "  \"calibration_ms\": {calibration_ms:.3},");
    s.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{ \"name\": \"{}\", \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \
             \"speedup\": {:.3}, \"cells\": {}, \"tuples_scanned\": {} }}{}",
            r.name,
            r.serial_ms,
            r.parallel_ms,
            r.speedup(),
            r.cells,
            r.tuples_scanned,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    s.push_str("  ],\n");
    // The zone-map ablation row CI's prune-smoke step gates on: pruning
    // must have fired and must have scanned strictly fewer tuples, with a
    // bit-identical outcome (asserted in pruning_ablation before this is
    // rendered).
    let _ = writeln!(
        s,
        "  \"pruning\": {{ \"workload\": \"{}\", \"pruned_serial_ms\": {:.3}, \
         \"unpruned_serial_ms\": {:.3}, \"speedup\": {:.3}, \"zones_pruned\": {}, \
         \"zones_full\": {}, \"zones_scanned\": {}, \"tuples_scanned_pruned\": {}, \
         \"tuples_scanned_unpruned\": {} }},",
        prune.workload,
        prune.pruned_ms,
        prune.unpruned_ms,
        prune.speedup(),
        prune.zones_pruned,
        prune.zones_full,
        prune.zones_scanned,
        prune.tuples_pruned,
        prune.tuples_unpruned,
    );
    // Whether the parallel-speedup gate can be evaluated on this host, so a
    // baseline recorded on a single-core machine is self-describing instead
    // of silently carrying a meaningless sub-1.0 speedup.
    let _ = writeln!(
        s,
        "  \"speedup_gate\": {{ \"skipped\": {}, \"reason\": {} }},",
        cores < threads,
        if cores < threads {
            format!("\"{cores} core(s) < {threads} threads: no parallel speedup is physically possible\"")
        } else {
            "null".to_string()
        },
    );
    // Wall-clock is environment-dependent, so the overhead is recorded for
    // trend-watching only; the hard <2% gate lives in the test suite where
    // it can retry. The embedded snapshot, by contrast, is deterministic
    // (see DESIGN.md on serial emission order) apart from `uptime_ms`.
    let _ = writeln!(
        s,
        "  \"obs_overhead\": {{ \"plain_ms\": {:.3}, \"observed_ms\": {:.3}, \
         \"overhead_pct\": {:.2} }},",
        obs.plain_ms,
        obs.observed_ms,
        obs.overhead_pct(),
    );
    // Progress sink + flight recorder armed, like obs_overhead a trend row:
    // the <2% hard gate is the retrying test in
    // crates/core/tests/observability.rs.
    let _ = writeln!(
        s,
        "  \"recorder_overhead\": {{ \"plain_ms\": {:.3}, \"recorded_ms\": {:.3}, \
         \"overhead_pct\": {:.2}, \"events\": {}, \"samples\": {} }},",
        recorder.plain_ms,
        recorder.recorded_ms,
        recorder.overhead_pct(),
        recorder.events,
        recorder.samples,
    );
    let _ = writeln!(
        s,
        "  \"serve_overhead\": {{ \"plain_ms\": {:.3}, \"served_ms\": {:.3}, \
         \"overhead_pct\": {:.2} }},",
        serve.plain_ms,
        serve.served_ms,
        serve.overhead_pct(),
    );
    // Overload throughput is a trend row, not a regression gate: its
    // wall-clock depends on socket scheduling. The hard contract (no drops,
    // honest statuses) is asserted inside overload_run itself.
    let histogram: Vec<String> = overload
        .statuses
        .iter()
        .map(|(code, n)| format!("\"{code}\": {n}"))
        .collect();
    let _ = writeln!(
        s,
        "  \"overload\": {{ \"conns\": {}, \"requests_per_conn\": {}, \
         \"wall_ms\": {:.3}, \"answered\": {}, \"per_sec\": {:.1}, \
         \"dropped\": {}, \"statuses\": {{ {} }}, \"admission\": {} }},",
        overload.conns,
        overload.requests_per_conn,
        overload.wall_ms,
        overload.answered(),
        overload.per_sec(),
        overload.dropped,
        histogram.join(", "),
        overload.admission_json.trim_end(),
    );
    // The full operations layer (durable journal + alert engine) armed over
    // the fig10 sweep. A trend row like the other overheads; the hard <2%
    // gate retries in crates/serve/tests/ops_overhead.rs. The ring/writer
    // integrity half (no drops, no write errors, quiet rules stayed quiet)
    // is asserted inside ops_run before this renders. The key is "workload"
    // (matching the pruning row), not "name": parse_baseline scans every
    // `"name"` in the file expecting serial_ms/parallel_ms to follow.
    let ops_rows: Vec<String> = ops
        .rows
        .iter()
        .map(|r| {
            format!(
                "{{ \"workload\": \"{}\", \"plain_ms\": {:.3}, \"ops_ms\": {:.3} }}",
                r.name, r.plain_ms, r.ops_ms
            )
        })
        .collect();
    let _ = writeln!(
        s,
        "  \"ops_overhead\": {{ \"workloads\": [ {} ], \"overhead_pct\": {:.2}, \
         \"journal_written\": {}, \"journal_dropped\": {}, \"journal_write_errors\": {}, \
         \"alert_transitions\": {} }},",
        ops_rows.join(", "),
        ops.overhead_pct(),
        ops.written,
        ops.dropped,
        ops.write_errors,
        ops.transitions,
    );
    let _ = writeln!(s, "  \"metrics\": {}", obs.metrics_json.trim_end());
    s.push_str("}\n");
    s
}

/// Minimal scanner for the JSON this tool writes: the numeric value that
/// follows `"key":` at or after `from`. Returns (value, end offset).
fn scan_f64(json: &str, key: &str, from: usize) -> Option<(f64, usize)> {
    let needle = format!("\"{key}\":");
    let at = json.get(from..)?.find(&needle)? + from + needle.len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == ' '))
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok().map(|v| (v, at + end))
}

struct Baseline {
    calibration_ms: f64,
    /// name → (serial_ms, parallel_ms)
    workloads: Vec<(String, f64, f64)>,
}

fn parse_baseline(json: &str) -> Option<Baseline> {
    let (calibration_ms, _) = scan_f64(json, "calibration_ms", 0)?;
    let mut workloads = Vec::new();
    let mut pos = 0;
    while let Some(at) = json.get(pos..).and_then(|s| s.find("\"name\": \"")) {
        let start = pos + at + "\"name\": \"".len();
        let end = start + json.get(start..)?.find('"')?;
        let name = json[start..end].to_string();
        let (serial_ms, p) = scan_f64(json, "serial_ms", end)?;
        let (parallel_ms, p2) = scan_f64(json, "parallel_ms", p)?;
        workloads.push((name, serial_ms, parallel_ms));
        pos = p2;
    }
    Some(Baseline {
        calibration_ms,
        workloads,
    })
}

fn check_regressions(
    baseline: &Baseline,
    calibration_ms: f64,
    rows: &[WorkloadReport],
) -> Result<(), String> {
    // >1 means this machine's single core is slower than the baseline's.
    let scale = calibration_ms / baseline.calibration_ms;
    let mut failures = String::new();
    for r in rows {
        let Some((_, base_serial, base_parallel)) = baseline
            .workloads
            .iter()
            .find(|(name, _, _)| name == r.name)
        else {
            println!("note: no baseline entry for {}, skipping", r.name);
            continue;
        };
        for (what, got, base) in [
            ("serial", r.serial_ms, *base_serial),
            ("parallel", r.parallel_ms, *base_parallel),
        ] {
            let allowed = base * scale * REGRESSION_FACTOR + REGRESSION_FLOOR_MS;
            if got > allowed {
                let _ = writeln!(
                    failures,
                    "{} {what}: {got:.1}ms exceeds {allowed:.1}ms \
                     (baseline {base:.1}ms × cpu-scale {scale:.2} × {REGRESSION_FACTOR})",
                    r.name,
                );
            }
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_smoke: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!("calibrating single-core speed...");
    let calibration_ms = calibrate_ms();
    println!(
        "calibration: {calibration_ms:.1}ms, cores: {cores}, threads: {}\n",
        args.threads
    );

    // The fig9 (dimensionality) and fig10 (table size) quick workloads.
    let specs: [(&'static str, WorkloadSpec); 6] = [
        ("fig9_d2", WorkloadSpec::new(10_000, 2, 0.3)),
        ("fig9_d3", WorkloadSpec::new(10_000, 3, 0.3)),
        ("fig9_d4", WorkloadSpec::new(10_000, 4, 0.3)),
        ("fig10_1k", WorkloadSpec::new(1_000, 3, 0.3)),
        ("fig10_10k", WorkloadSpec::new(10_000, 3, 0.3)),
        ("fig10_100k", WorkloadSpec::new(100_000, 3, 0.3)),
    ];
    let mut rows = Vec::new();
    for (name, spec) in &specs {
        let r = run_workload(name, spec, args.threads);
        println!(
            "{name:12} serial {:8.1}ms  parallel({}) {:8.1}ms  speedup {:.2}x  cells {}",
            r.serial_ms,
            args.threads,
            r.parallel_ms,
            r.speedup(),
            r.cells,
        );
        rows.push(r);
    }

    // Zone-map ablation on the largest fig10 workload: pruning on vs off,
    // serial, bit-identical outcomes enforced.
    let prune = pruning_ablation("fig10_100k", &WorkloadSpec::new(100_000, 3, 0.3));
    println!(
        "\npruning         on {:8.1}ms  off {:8.1}ms  speedup {:.2}x  zones p/f/s {}/{}/{}  \
         tuples {} -> {}",
        prune.pruned_ms,
        prune.unpruned_ms,
        prune.speedup(),
        prune.zones_pruned,
        prune.zones_full,
        prune.zones_scanned,
        prune.tuples_unpruned,
        prune.tuples_pruned,
    );

    // Instrumented run on the mid-size fig9 shape: validates the metrics
    // snapshot against ground truth and records observability overhead.
    let obs = observed_run(&WorkloadSpec::new(10_000, 3, 0.3));
    println!(
        "\nobservability   plain {:8.1}ms  observed {:8.1}ms  overhead {:+.2}%  (snapshot ok)",
        obs.plain_ms,
        obs.observed_ms,
        obs.overhead_pct(),
    );

    // Live-progress run on the same shape: progress sink attached, flight
    // recorder sampling at its default cadence.
    let recorder = recorder_run(&WorkloadSpec::new(10_000, 3, 0.3));
    println!(
        "recorder        plain {:8.1}ms  recorded {:8.1}ms  overhead {:+.2}%  ({} events)",
        recorder.plain_ms,
        recorder.recorded_ms,
        recorder.overhead_pct(),
        recorder.events,
    );

    // Serve-mode run on the same shape: the fixed per-request price of the
    // query registry, per-query trace and process-metrics fold.
    let serve = serve_mode_run(&WorkloadSpec::new(10_000, 3, 0.3));
    println!(
        "serve-mode      plain {:8.1}ms  served   {:8.1}ms  overhead {:+.2}%  (registry ok)",
        serve.plain_ms,
        serve.served_ms,
        serve.overhead_pct(),
    );

    // Socket-level overload flood against a live server with tight
    // admission limits: sustained throughput under honest load shedding.
    let overload = overload_run(&WorkloadSpec::new(10_000, 3, 0.3));
    println!(
        "overload        {} conns x {} reqs in {:8.1}ms  {:.1} answered/s  statuses {:?}",
        overload.conns,
        overload.requests_per_conn,
        overload.wall_ms,
        overload.per_sec(),
        overload.statuses,
    );

    // Operations layer (durable journal + alert engine) armed over the
    // fig10 sweep; the same workloads already ran bare above, so the delta
    // is the price of durability plus alerting.
    let ops = ops_run(&[
        ("fig10_1k", WorkloadSpec::new(1_000, 3, 0.3)),
        ("fig10_10k", WorkloadSpec::new(10_000, 3, 0.3)),
        ("fig10_100k", WorkloadSpec::new(100_000, 3, 0.3)),
    ]);
    println!(
        "ops             overhead {:+.2}%  journal {} written / {} dropped / {} errors  \
         alerts quiet",
        ops.overhead_pct(),
        ops.written,
        ops.dropped,
        ops.write_errors,
    );

    let json = render_json(
        &RunInfo {
            calibration_ms,
            threads: args.threads,
            cores,
        },
        &rows,
        &prune,
        &obs,
        &recorder,
        &serve,
        &overload,
        &ops,
    );
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("bench_smoke: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nwrote {path}");
    } else {
        println!("\n{json}");
    }

    let mut failed = false;
    if let Some(path) = &args.check {
        match std::fs::read_to_string(path) {
            Ok(text) => match parse_baseline(&text) {
                Some(baseline) => match check_regressions(&baseline, calibration_ms, &rows) {
                    Ok(()) => println!("regression check vs {path}: ok"),
                    Err(report) => {
                        eprintln!("regression check vs {path} FAILED:\n{report}");
                        failed = true;
                    }
                },
                None => {
                    eprintln!("bench_smoke: {path} is not a bench_smoke report");
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("bench_smoke: reading {path}: {e}");
                failed = true;
            }
        }
    }

    if let Some(floor) = args.require_speedup {
        if cores < args.threads {
            println!(
                "speedup gate skipped: {cores} core(s) < {} threads (no parallel speedup \
                 is physically possible on this host; outcomes were still verified identical)",
                args.threads
            );
        } else {
            let geomean =
                (rows.iter().map(|r| r.speedup().ln()).sum::<f64>() / rows.len() as f64).exp();
            if geomean < floor {
                eprintln!(
                    "speedup gate FAILED: geometric mean {geomean:.2}x < required {floor:.2}x"
                );
                failed = true;
            } else {
                println!("speedup gate: geometric mean {geomean:.2}x >= {floor:.2}x");
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! Experiment workloads (§8.3).
//!
//! *"Our test queries are TPC-H queries which have been adapted to include
//! only numeric range and join predicates. … For each dataset, query, and
//! ACQUIRE settings, we define the original aggregate `A_actual` and the
//! aggregate ratio `A_actual / A_exp`."*
//!
//! [`count_workload`] builds the COUNT experiments over `lineitem`, whose
//! five numeric attributes supply 1–5 flexible predicates (Fig. 8–10);
//! [`q2_sum_workload`] builds the Example 2 / Q2' join workload over
//! `supplier ⋈ part ⋈ partsupp` for the aggregate-type experiments
//! (Fig. 11).

use acq_datagen::{tpch, GenConfig};
use acq_engine::{Catalog, Executor};
use acq_query::{
    AcqQuery, AggConstraint, AggFunc, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide,
};

/// Parameters of a workload instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Base table cardinality (`lineitem`/`partsupp` rows).
    pub rows: usize,
    /// Number of flexible predicates (1–5 for `lineitem`).
    pub dims: usize,
    /// The aggregate ratio `A_actual / A_exp` (0.1–0.9 in Fig. 8).
    pub ratio: f64,
    /// Zipf skew `Z` (0 uniform, 1 for §8.4.4).
    pub zipf_z: f64,
    /// Data seed.
    pub seed: u64,
    /// Initial per-predicate selectivity fraction of the attribute domain.
    pub frac: f64,
}

impl WorkloadSpec {
    /// The Fig. 8 default shape: 3 flexible predicates, uniform data.
    #[must_use]
    pub fn new(rows: usize, dims: usize, ratio: f64) -> Self {
        Self {
            rows,
            dims,
            ratio,
            zipf_z: 0.0,
            seed: 0xACC_0FFEE,
            frac: 0.45,
        }
    }

    /// Same spec with Zipf skew `Z = 1`.
    #[must_use]
    pub fn skewed(mut self) -> Self {
        self.zipf_z = 1.0;
        self
    }

    fn gen_config(&self) -> GenConfig {
        GenConfig {
            rows: self.rows,
            seed: self.seed,
            zipf_z: self.zipf_z,
        }
    }
}

/// A ready-to-run experiment: data plus an ACQ whose target realises the
/// requested aggregate ratio.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The dataset (cheap to clone: tables are shared).
    pub catalog: Catalog,
    /// The aggregation constrained query.
    pub query: AcqQuery,
    /// The original query's aggregate value `A_actual`.
    pub original_aggregate: f64,
    /// The requested ratio `A_actual / A_exp`.
    pub ratio: f64,
}

/// `A_exp` from `A_actual` and the ratio.
#[must_use]
pub fn ratio_target(actual: f64, ratio: f64) -> f64 {
    assert!(ratio > 0.0);
    actual / ratio
}

/// The `lineitem` columns used as flexible predicates, in order.
pub const LINEITEM_DIMS: [&str; 5] = [
    "l_quantity",
    "l_extendedprice",
    "l_discount",
    "l_tax",
    "l_shipdate",
];

/// The `q`-quantile of a numeric column (exact, via sort).
fn quantile(table: &acq_engine::Table, col: &str, q: f64) -> f64 {
    let column = table.column_by_name(col).expect("column exists");
    let mut vals: Vec<f64> = (0..table.num_rows())
        .filter_map(|r| column.get_f64(r))
        .collect();
    vals.sort_by(f64::total_cmp);
    let idx = ((vals.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    vals[idx]
}

/// Builds the COUNT workload of Fig. 8–10: `dims` one-sided range
/// predicates over `lineitem`, each initially admitting `frac` of its
/// attribute domain, with `COUNT(*) = A_actual / ratio`.
pub fn count_workload(spec: &WorkloadSpec) -> Workload {
    assert!(
        (1..=LINEITEM_DIMS.len()).contains(&spec.dims),
        "lineitem supports 1..=5 flexible predicates"
    );
    let catalog = tpch::generate_lineitem(&spec.gen_config()).expect("generate lineitem");
    let table = catalog.table("lineitem").expect("lineitem exists");

    let mut builder = AcqQuery::builder().table("lineitem");
    for col in LINEITEM_DIMS.iter().take(spec.dims) {
        let domain = table.numeric_domain(col).expect("numeric column");
        // Anchor the initial bound at the `frac` data quantile (not a
        // domain fraction): each predicate initially admits `frac` of the
        // rows regardless of the column's distribution, exactly like a
        // selectivity-controlled TPC-H range predicate.
        let bound = quantile(&table, col, spec.frac);
        builder = builder.predicate(
            Predicate::select(
                ColRef::new("lineitem", *col),
                Interval::new(domain.lo(), bound.max(domain.lo())),
                RefineSide::Upper,
            )
            .with_domain(domain),
        );
    }
    let mut query = builder
        .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 1.0))
        .build()
        .expect("valid workload query");

    let original_aggregate = original_aggregate(&catalog, &query);
    assert!(
        original_aggregate > 0.0,
        "workload query must admit at least one tuple (rows={}, dims={})",
        spec.rows,
        spec.dims
    );
    // Clamp the target to what full refinement can reach (95% of it, so the
    // target stays strictly achievable): otherwise low ratios on skewed or
    // low-dimensional workloads would ask for more tuples than exist and
    // every technique would flatline at the cap.
    let reachable = reachable_aggregate(&catalog, &query);
    query.constraint.target = ratio_target(original_aggregate, spec.ratio).min(reachable * 0.95);
    Workload {
        catalog,
        query,
        original_aggregate,
        ratio: spec.ratio,
    }
}

/// Builds the Example 2 / Q2' workload: `supplier ⋈ part ⋈ partsupp` with
/// NOREFINE key joins, refinable `p_retailprice` and `s_acctbal`
/// predicates, and the requested aggregate over `ps_availqty` (Fig. 11
/// evaluates SUM, COUNT and MAX).
pub fn q2_sum_workload(spec: &WorkloadSpec, agg: AggFunc) -> Workload {
    let catalog = tpch::generate_q2(&spec.gen_config()).expect("generate q2 tables");
    let part = catalog.table("part").expect("part");
    let supplier = catalog.table("supplier").expect("supplier");

    let price_domain = part.numeric_domain("p_retailprice").expect("numeric");
    let bal_domain = supplier.numeric_domain("s_acctbal").expect("numeric");
    let price_bound = price_domain.lo() + spec.frac * price_domain.width();
    let bal_bound = bal_domain.lo() + spec.frac * bal_domain.width();

    // SUM/COUNT aggregate over the part quantities; MAX/MIN aggregate over
    // the *refined attribute itself* (p_retailprice), so that expanding the
    // price predicate moves the aggregate — MAX(ps_availqty) saturates at
    // the domain maximum after a handful of tuples and makes the experiment
    // degenerate.
    let spec_agg = match agg {
        AggFunc::Count => AggregateSpec::count(),
        AggFunc::Sum => AggregateSpec::sum(ColRef::new("partsupp", "ps_availqty")),
        AggFunc::Max => AggregateSpec::max(ColRef::new("part", "p_retailprice")),
        AggFunc::Min => AggregateSpec::min(ColRef::new("part", "p_retailprice")),
        AggFunc::Avg => AggregateSpec::avg(ColRef::new("partsupp", "ps_availqty")),
        AggFunc::Uda(ref name) => {
            AggregateSpec::uda(name.clone(), ColRef::new("partsupp", "ps_availqty"))
        }
    };
    let op = if agg == AggFunc::Count {
        CmpOp::Eq
    } else {
        CmpOp::Ge
    };

    let mut query = AcqQuery::builder()
        .table("supplier")
        .table("part")
        .table("partsupp")
        .join(
            ColRef::new("supplier", "s_suppkey"),
            ColRef::new("partsupp", "ps_suppkey"),
        )
        .join(
            ColRef::new("part", "p_partkey"),
            ColRef::new("partsupp", "ps_partkey"),
        )
        .predicate(
            Predicate::select(
                ColRef::new("part", "p_retailprice"),
                Interval::new(price_domain.lo(), price_bound),
                RefineSide::Upper,
            )
            .with_domain(price_domain),
        )
        .predicate(
            Predicate::select(
                ColRef::new("supplier", "s_acctbal"),
                Interval::new(bal_domain.lo(), bal_bound),
                RefineSide::Upper,
            )
            .with_domain(bal_domain),
        )
        .constraint(AggConstraint::new(spec_agg, op, 1.0))
        .build()
        .expect("valid q2 workload");

    let original_aggregate = original_aggregate(&catalog, &query);
    assert!(original_aggregate > 0.0, "q2 workload must admit tuples");
    let reachable = reachable_aggregate(&catalog, &query);
    query.constraint.target = ratio_target(original_aggregate, spec.ratio).min(reachable * 0.95);
    Workload {
        catalog,
        query,
        original_aggregate,
        ratio: spec.ratio,
    }
}

/// Builds the join-refinement workload (§2.4 / Table 1): two tables whose
/// refinable equi-join `left.j = right.j` must widen into the band
/// `|left.j - right.j| <= w` until the pair count reaches the target, plus
/// one refinable selection predicate. `pair_density` scales the target as a
/// fraction of `|left| x |right| / 1000` (one unit of band width over the
/// [0, 1000] join domain admits about that many pairs).
pub fn join_workload(rows: usize, pair_density: f64, seed: u64) -> Workload {
    use acq_datagen::synthetic;
    let catalog = synthetic::join_pair(
        &GenConfig {
            rows,
            seed,
            zipf_z: 0.0,
        },
        rows,
        rows,
    )
    .expect("join pair");
    let right = catalog.table("right").expect("right");
    let v_domain = right.numeric_domain("v").expect("numeric");
    let v_bound = v_domain.lo() + 0.5 * v_domain.width();
    let query = AcqQuery::builder()
        .table("left")
        .table("right")
        .predicate(Predicate::equi_join(
            ColRef::new("left", "j"),
            ColRef::new("right", "j"),
        ))
        .predicate(
            Predicate::select(
                ColRef::new("right", "v"),
                Interval::new(v_domain.lo(), v_bound),
                RefineSide::Upper,
            )
            .with_domain(v_domain),
        )
        .constraint(AggConstraint::new(
            AggregateSpec::count(),
            CmpOp::Ge,
            (rows as f64 * rows as f64 / 1000.0) * pair_density,
        ))
        .build()
        .expect("join workload");
    let original_aggregate = original_aggregate(&catalog, &query);
    Workload {
        catalog,
        query,
        original_aggregate,
        ratio: pair_density,
    }
}

/// Executes the query at full per-dimension refinement caps and returns the
/// best aggregate any refinement can reach.
fn reachable_aggregate(catalog: &Catalog, query: &AcqQuery) -> f64 {
    let mut exec = Executor::new(catalog.clone());
    let mut q = query.clone();
    exec.populate_domains(&mut q).expect("domains");
    let caps: Vec<f64> = q
        .flexible()
        .iter()
        .map(|&i| q.predicates[i].max_useful_score().unwrap_or(1000.0))
        .collect();
    let rq = exec.resolve(&q).expect("resolve");
    let rel = exec.base_relation(&rq, &caps).expect("base relation");
    exec.full_aggregate(&rq, &rel, &caps)
        .expect("aggregate")
        .value()
        .unwrap_or(0.0)
}

/// Executes the unrefined query and returns its aggregate value.
fn original_aggregate(catalog: &Catalog, query: &AcqQuery) -> f64 {
    let mut exec = Executor::new(catalog.clone());
    let mut q = query.clone();
    exec.populate_domains(&mut q).expect("domains");
    let rq = exec.resolve(&q).expect("resolve");
    let zeros = vec![0.0; q.dims()];
    let rel = exec.base_relation(&rq, &zeros).expect("base relation");
    exec.full_aggregate(&rq, &rel, &zeros)
        .expect("aggregate")
        .value()
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_workload_realises_the_ratio() {
        let w = count_workload(&WorkloadSpec::new(5_000, 3, 0.5));
        assert!(w.original_aggregate > 0.0);
        let expect = w.original_aggregate / 0.5;
        assert!(w.query.constraint.target <= expect + 1e-9);
        assert!(w.query.constraint.target > w.original_aggregate);
        assert_eq!(w.query.dims(), 3);
    }

    #[test]
    fn unreachable_targets_are_clamped() {
        // Ratio 0.01 would demand 100x the original count, beyond the table
        // size; the workload clamps to a reachable target.
        let w = count_workload(&WorkloadSpec::new(2_000, 2, 0.01));
        assert!(w.query.constraint.target <= 2_000.0);
    }

    #[test]
    fn count_workload_dims_one_through_five() {
        for d in 1..=5 {
            let w = count_workload(&WorkloadSpec::new(2_000, d, 0.3));
            assert_eq!(w.query.dims(), d, "dims {d}");
        }
    }

    #[test]
    #[should_panic(expected = "1..=5")]
    fn count_workload_rejects_dim_six() {
        let _ = count_workload(&WorkloadSpec::new(1_000, 6, 0.3));
    }

    #[test]
    fn q2_workload_builds_for_all_aggregates() {
        for agg in [AggFunc::Sum, AggFunc::Count, AggFunc::Max] {
            let w = q2_sum_workload(&WorkloadSpec::new(4_000, 2, 0.5), agg.clone());
            assert_eq!(w.query.structural_joins.len(), 2);
            assert_eq!(w.query.dims(), 2);
            assert!(w.original_aggregate > 0.0, "{agg}");
            assert!(w.query.constraint.target.is_finite());
        }
    }

    #[test]
    fn skewed_spec_generates_different_data() {
        let u = count_workload(&WorkloadSpec::new(3_000, 2, 0.5));
        let s = count_workload(&WorkloadSpec::new(3_000, 2, 0.5).skewed());
        assert_ne!(u.original_aggregate, s.original_aggregate);
    }
}

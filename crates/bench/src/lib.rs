//! # acq-bench — the paper's evaluation, reproduced
//!
//! Harness code shared by the Criterion benches and the `reproduce` binary.
//! Each figure of §8 maps to a [`workloads`] constructor plus a sweep in
//! `src/bin/reproduce.rs`:
//!
//! | Paper | Here |
//! |---|---|
//! | Fig. 8a–c (aggregate ratio 0.1–0.9) | `reproduce fig8` |
//! | Fig. 9a–c (dimensionality 1–5) | `reproduce fig9` |
//! | Fig. 10a (table size 1K–1M) | `reproduce fig10a` |
//! | Fig. 10b (refinement threshold γ 2–12) | `reproduce fig10b` |
//! | Fig. 10c (cardinality threshold δ 1e-4–1e-1) | `reproduce fig10c` |
//! | Fig. 11a–b (SUM/COUNT/MAX) | `reproduce fig11` |
//! | §8.4.4 (Zipf Z=1) | `reproduce skew` |
//! | Table 1 (capability matrix) | `reproduce table1` |
//! | §5/§6 work-sharing claim | `reproduce workshare` |
//!
//! The experiments measure wall-clock time *and* the engine's
//! machine-independent work counters, so shapes are comparable with the
//! paper even though the absolute hardware differs.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod report;
pub mod runner;
pub mod workloads;

pub use report::{Row, Table};
pub use runner::{measure, run_technique, Technique};
pub use workloads::{
    count_workload, join_workload, q2_sum_workload, ratio_target, Workload, WorkloadSpec,
};

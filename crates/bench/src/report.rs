//! Plain-text experiment tables (the rows/series the paper's figures plot).

use std::fmt;

/// One table row.
#[derive(Debug, Clone, Default)]
pub struct Row {
    /// Cell texts.
    pub cells: Vec<String>,
}

impl Row {
    /// Builds a row from displayable cells.
    #[must_use]
    pub fn new(cells: Vec<String>) -> Self {
        Self { cells }
    }
}

/// An aligned plain-text table with a title and column headers.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title (e.g. `Figure 8a: execution time vs aggregate ratio`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// An empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn push(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(Row::new(cells));
    }

    /// Formats a float compactly for table cells.
    #[must_use]
    pub fn fmt_num(v: f64) -> String {
        if !v.is_finite() {
            return "inf".to_string();
        }
        let a = v.abs();
        if a == 0.0 {
            "0".to_string()
        } else if !(0.001..100_000.0).contains(&a) {
            format!("{v:.3e}")
        } else if a >= 100.0 {
            format!("{v:.1}")
        } else {
            format!("{v:.4}")
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(&row.cells) {
                *w = (*w).max(c.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut parts = Vec::with_capacity(cells.len());
            for (w, c) in widths.iter().zip(cells) {
                parts.push(format!("{c:>w$}", w = w));
            }
            writeln!(f, "| {} |", parts.join(" | "))
        };
        line(f, &self.headers)?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &sep)?;
        for row in &self.rows {
            line(f, &row.cells)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["a", "long_header"]);
        t.push(vec!["1".into(), "2".into()]);
        t.push(vec!["300".into()]);
        let s = t.to_string();
        assert!(s.contains("## Demo"));
        assert!(s.contains("long_header"));
        let lines: Vec<&str> = s.lines().skip(1).collect();
        let lens: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(Table::fmt_num(0.0), "0");
        assert_eq!(Table::fmt_num(f64::INFINITY), "inf");
        assert_eq!(Table::fmt_num(12.3456789), "12.3457");
        assert_eq!(Table::fmt_num(1234.5), "1234.5");
        assert!(Table::fmt_num(1e9).contains('e'));
        assert!(Table::fmt_num(1e-9).contains('e'));
    }
}

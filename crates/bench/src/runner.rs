//! Running one technique on one workload, with timing and work counters.

use std::time::Instant;

use acq_baselines::{binsearch, topk, tqgen, BinSearchParams, TqGenParams};
use acq_engine::{ExecStats, Executor};
use acquire_core::{run_acquire, AcquireConfig, EvalLayerKind};

use crate::workloads::Workload;

/// A technique under test (§8.2).
#[derive(Debug, Clone)]
pub enum Technique {
    /// ACQUIRE with the chosen evaluation layer.
    Acquire(EvalLayerKind),
    /// Top-k ranking (COUNT only).
    TopK,
    /// TQGen iterative grid search.
    TqGen(TqGenParams),
    /// BinSearch per-predicate bisection.
    BinSearch(BinSearchParams),
}

impl Technique {
    /// Display name used in report tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Acquire(EvalLayerKind::Scan) => "ACQUIRE(scan)",
            Self::Acquire(EvalLayerKind::CachedScore) => "ACQUIRE(cached)",
            Self::Acquire(EvalLayerKind::GridIndex) => "ACQUIRE",
            Self::TopK => "Top-k",
            Self::TqGen(_) => "TQGen",
            Self::BinSearch(_) => "BinSearch",
        }
    }
}

/// One technique's result on one workload.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Wall-clock milliseconds.
    pub time_ms: f64,
    /// Aggregate error of the produced query.
    pub error: f64,
    /// Refinement score (QScore) of the produced query.
    pub qscore: f64,
    /// Per-flexible-predicate refinement vector of the produced query.
    pub pscores: Vec<f64>,
    /// Achieved aggregate value.
    pub aggregate: f64,
    /// Queries issued against the evaluation layer (cell queries for
    /// ACQUIRE, full queries for the baselines).
    pub queries: u64,
    /// Whether the technique met the constraint within the threshold.
    pub satisfied: bool,
    /// Peak retained grid points (ACQUIRE only; 0 for baselines).
    pub peak_store: usize,
    /// Engine work counters.
    pub stats: ExecStats,
}

/// Times a closure.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Runs `technique` on `workload` under `cfg` (fresh executor, cold work
/// counters). Returns an error string for unsupported combinations (e.g.
/// Top-k on SUM), which reports print as `n/a` — mirroring the paper's
/// missing curves.
pub fn run_technique(
    workload: &Workload,
    technique: &Technique,
    cfg: &AcquireConfig,
) -> Result<RunResult, String> {
    let mut exec = Executor::new(workload.catalog.clone());
    match technique {
        Technique::Acquire(kind) => {
            let (out, time_ms) = measure(|| run_acquire(&mut exec, &workload.query, cfg, *kind));
            let out = out.map_err(|e| e.to_string())?;
            let best = out
                .queries
                .first()
                .cloned()
                .or_else(|| out.closest.clone())
                .ok_or_else(|| "ACQUIRE produced no candidate".to_string())?;
            Ok(RunResult {
                time_ms,
                error: best.error,
                qscore: best.qscore,
                pscores: best.pscores,
                aggregate: best.aggregate,
                queries: out.explored,
                satisfied: out.satisfied,
                peak_store: out.peak_store,
                stats: out.stats,
            })
        }
        Technique::TopK => {
            let (out, time_ms) = measure(|| topk(&mut exec, &workload.query, &cfg.norm));
            let out = out.map_err(|e| e.to_string())?;
            Ok(RunResult {
                time_ms,
                error: out.error,
                qscore: out.qscore,
                pscores: out.pscores,
                aggregate: out.aggregate,
                queries: out.queries_executed,
                satisfied: out.error <= cfg.delta,
                peak_store: 0,
                stats: out.stats,
            })
        }
        Technique::TqGen(params) => {
            let (out, time_ms) = measure(|| tqgen(&mut exec, &workload.query, &cfg.norm, params));
            let out = out.map_err(|e| e.to_string())?;
            Ok(RunResult {
                time_ms,
                error: out.error,
                qscore: out.qscore,
                pscores: out.pscores,
                aggregate: out.aggregate,
                queries: out.queries_executed,
                satisfied: out.error <= cfg.delta,
                peak_store: 0,
                stats: out.stats,
            })
        }
        Technique::BinSearch(params) => {
            let (out, time_ms) =
                measure(|| binsearch(&mut exec, &workload.query, &cfg.norm, params));
            let out = out.map_err(|e| e.to_string())?;
            Ok(RunResult {
                time_ms,
                error: out.error,
                qscore: out.qscore,
                pscores: out.pscores,
                aggregate: out.aggregate,
                queries: out.queries_executed,
                satisfied: out.error <= cfg.delta,
                peak_store: 0,
                stats: out.stats,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{count_workload, WorkloadSpec};

    #[test]
    fn all_techniques_run_on_a_count_workload() {
        let w = count_workload(&WorkloadSpec::new(3_000, 2, 0.5));
        let cfg = AcquireConfig::default();
        for t in [
            Technique::Acquire(EvalLayerKind::GridIndex),
            Technique::TopK,
            Technique::TqGen(TqGenParams {
                levels_per_dim: 4,
                rounds: 2,
                max_queries: 10_000,
            }),
            Technique::BinSearch(BinSearchParams::default()),
        ] {
            let r = run_technique(&w, &t, &cfg).unwrap_or_else(|e| panic!("{}: {e}", t.name()));
            assert!(r.time_ms >= 0.0);
            assert!(r.error.is_finite(), "{}", t.name());
            assert!(r.queries >= 1, "{}", t.name());
        }
    }

    #[test]
    fn acquire_meets_the_constraint_where_baselines_vary() {
        let w = count_workload(&WorkloadSpec::new(3_000, 3, 0.3));
        let cfg = AcquireConfig::default();
        let acq = run_technique(&w, &Technique::Acquire(EvalLayerKind::GridIndex), &cfg).unwrap();
        assert!(acq.satisfied, "error {}", acq.error);
        assert!(acq.error <= cfg.delta);
    }

    #[test]
    fn unsupported_combination_reports_error() {
        use acq_query::AggFunc;
        let w = crate::workloads::q2_sum_workload(&WorkloadSpec::new(2_000, 2, 0.5), AggFunc::Sum);
        let e = run_technique(&w, &Technique::TopK, &AcquireConfig::default());
        assert!(e.is_err());
    }
}

//! Criterion bench for Figure 10: (a) ACQUIRE versus table size, (b) versus
//! the refinement threshold γ, (c) versus the cardinality threshold δ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use acq_bench::{count_workload, run_technique, Technique, WorkloadSpec};
use acquire_core::{AcquireConfig, EvalLayerKind};

fn bench_table_size(c: &mut Criterion) {
    let cfg = AcquireConfig::default();
    let mut group = c.benchmark_group("fig10a_time_vs_table_size");
    group.sample_size(10);
    for rows in [1_000usize, 10_000, 50_000] {
        let w = count_workload(&WorkloadSpec::new(rows, 3, 0.3));
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::new("ACQUIRE", rows), &w, |b, w| {
            b.iter(|| {
                run_technique(w, &Technique::Acquire(EvalLayerKind::GridIndex), &cfg)
                    .expect("acquire runs")
            });
        });
    }
    group.finish();
}

fn bench_gamma(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10b_time_vs_gamma");
    group.sample_size(10);
    let w = count_workload(&WorkloadSpec::new(20_000, 3, 0.3));
    for gamma in [2.0f64, 6.0, 12.0] {
        let cfg = AcquireConfig::default().with_gamma(gamma);
        group.bench_with_input(
            BenchmarkId::new("ACQUIRE", format!("gamma={gamma}")),
            &w,
            |b, w| {
                b.iter(|| {
                    run_technique(w, &Technique::Acquire(EvalLayerKind::GridIndex), &cfg)
                        .expect("acquire runs")
                });
            },
        );
    }
    group.finish();
}

fn bench_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10c_time_vs_delta");
    group.sample_size(10);
    let w = count_workload(&WorkloadSpec::new(20_000, 3, 0.3));
    for delta in [0.0001f64, 0.01, 0.1] {
        let cfg = AcquireConfig::default().with_delta(delta);
        group.bench_with_input(
            BenchmarkId::new("ACQUIRE", format!("delta={delta}")),
            &w,
            |b, w| {
                b.iter(|| {
                    run_technique(w, &Technique::Acquire(EvalLayerKind::GridIndex), &cfg)
                        .expect("acquire runs")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table_size, bench_gamma, bench_delta);
criterion_main!(benches);

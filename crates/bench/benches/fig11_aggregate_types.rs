//! Criterion bench for Figure 11: ACQUIRE across aggregate types
//! (SUM / COUNT / MAX over the Q2' join workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use acq_bench::{q2_sum_workload, run_technique, Technique, WorkloadSpec};
use acq_query::AggFunc;
use acquire_core::{AcquireConfig, EvalLayerKind};

fn bench_fig11(c: &mut Criterion) {
    let cfg = AcquireConfig::default();
    let mut group = c.benchmark_group("fig11_aggregate_types");
    group.sample_size(10);
    for agg in [AggFunc::Sum, AggFunc::Count, AggFunc::Max] {
        let w = q2_sum_workload(&WorkloadSpec::new(10_000, 2, 0.5), agg.clone());
        group.bench_with_input(BenchmarkId::new("ACQUIRE", agg.to_string()), &w, |b, w| {
            b.iter(|| {
                run_technique(w, &Technique::Acquire(EvalLayerKind::GridIndex), &cfg)
                    .expect("acquire runs")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);

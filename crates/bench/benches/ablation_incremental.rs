//! Ablation (§5): incremental aggregate computation versus naive full
//! re-execution of every grid query.
//!
//! This isolates the paper's central algorithmic idea: with the recurrence
//! of Eq. 17 each grid query costs one *cell* query plus `d` merges, whereas
//! the naive strategy re-executes the whole refined query per grid point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use acq_bench::{count_workload, WorkloadSpec};
use acq_engine::Executor;
use acquire_core::expand::{BfsExpander, Expander};
use acquire_core::explore::Explorer;
use acquire_core::{AcquireConfig, CachedScoreEvaluator, EvaluationLayer, RefinedSpace};

const LAYER_BUDGET: u64 = 10;

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_incremental_vs_naive");
    group.sample_size(10);
    for dims in [2usize, 3] {
        let w = count_workload(&WorkloadSpec::new(10_000, dims, 0.3));
        let cfg = AcquireConfig::default();

        group.bench_with_input(BenchmarkId::new("incremental", dims), &w, |b, w| {
            b.iter(|| {
                let mut query = w.query.clone();
                let mut exec = Executor::new(w.catalog.clone());
                exec.populate_domains(&mut query).unwrap();
                let space = RefinedSpace::new(&query, &cfg).unwrap();
                let caps = space.caps();
                let mut eval = CachedScoreEvaluator::new(&mut exec, &query, &caps).unwrap();
                let mut explorer = Explorer::new();
                let mut expander = BfsExpander::new(&space);
                let mut total = 0.0;
                while let Some(p) = expander.next_query() {
                    let layer = RefinedSpace::l1_layer(&p);
                    if layer > LAYER_BUDGET {
                        break;
                    }
                    total += explorer
                        .compute_aggregate(&mut eval, &space, &p, layer)
                        .unwrap()
                        .value()
                        .unwrap_or(0.0);
                }
                total
            });
        });

        group.bench_with_input(BenchmarkId::new("naive_full_requery", dims), &w, |b, w| {
            b.iter(|| {
                let mut query = w.query.clone();
                let mut exec = Executor::new(w.catalog.clone());
                exec.populate_domains(&mut query).unwrap();
                let space = RefinedSpace::new(&query, &cfg).unwrap();
                let caps = space.caps();
                let mut eval = CachedScoreEvaluator::new(&mut exec, &query, &caps).unwrap();
                let mut expander = BfsExpander::new(&space);
                let mut total = 0.0;
                while let Some(p) = expander.next_query() {
                    if RefinedSpace::l1_layer(&p) > LAYER_BUDGET {
                        break;
                    }
                    total += eval
                        .full_aggregate(&space.bounds(&p))
                        .unwrap()
                        .value()
                        .unwrap_or(0.0);
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);

//! Criterion bench for Figure 8a: execution time of every technique as the
//! aggregate ratio varies (smaller data than `reproduce` so Criterion can
//! sample; the *relative* ordering is what the figure shows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use acq_baselines::{BinSearchParams, TqGenParams};
use acq_bench::{count_workload, run_technique, Technique, WorkloadSpec};
use acquire_core::{AcquireConfig, EvalLayerKind};

fn bench_fig8(c: &mut Criterion) {
    let cfg = AcquireConfig::default();
    let mut group = c.benchmark_group("fig8_time_vs_ratio");
    group.sample_size(10);
    for ratio in [0.3, 0.7] {
        let w = count_workload(&WorkloadSpec::new(20_000, 3, ratio));
        let techniques = vec![
            Technique::Acquire(EvalLayerKind::GridIndex),
            Technique::TopK,
            Technique::TqGen(TqGenParams {
                levels_per_dim: 4,
                rounds: 2,
                max_queries: 50_000,
            }),
            Technique::BinSearch(BinSearchParams::default()),
        ];
        for t in techniques {
            group.bench_with_input(
                BenchmarkId::new(t.name(), format!("ratio={ratio}")),
                &w,
                |b, w| {
                    b.iter(|| run_technique(w, &t, &cfg).expect("technique runs"));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);

//! Criterion bench for Figure 9a: execution time versus the number of
//! flexible predicates. ACQUIRE grows roughly linearly with dimensionality
//! while TQGen grows exponentially (`levels^d` full queries per round).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use acq_baselines::{BinSearchParams, TqGenParams};
use acq_bench::{count_workload, run_technique, Technique, WorkloadSpec};
use acquire_core::{AcquireConfig, EvalLayerKind};

fn bench_fig9(c: &mut Criterion) {
    let cfg = AcquireConfig::default();
    let mut group = c.benchmark_group("fig9_time_vs_dims");
    group.sample_size(10);
    for dims in 1..=4usize {
        let w = count_workload(&WorkloadSpec::new(10_000, dims, 0.3));
        let techniques = vec![
            Technique::Acquire(EvalLayerKind::GridIndex),
            Technique::TopK,
            Technique::TqGen(TqGenParams {
                levels_per_dim: 4,
                rounds: 2,
                max_queries: 50_000,
            }),
            Technique::BinSearch(BinSearchParams::default()),
        ];
        for t in techniques {
            group.bench_with_input(BenchmarkId::new(t.name(), dims), &w, |b, w| {
                b.iter(|| run_technique(w, &t, &cfg).expect("technique runs"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);

//! Ablation: the parallel Explore phase at 1/2/4/8 worker threads.
//!
//! All cell sub-queries of one Expand layer are independent (Theorem 2
//! orders layers, not cells), so the driver can prefetch a whole layer on a
//! work-stealing pool while keeping the Eq. 17 merges in serial emission
//! order — outcomes are bit-identical at every thread count, so this bench
//! measures pure scheduling overhead vs. scaling. The cached-score layer is
//! used because its per-cell cost (an O(n) scan of the score matrix)
//! dominates, which is where parallelism pays; the grid-index layer makes
//! cells nearly free and mostly measures pool overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use acq_bench::{count_workload, run_technique, Technique, WorkloadSpec};
use acquire_core::{AcquireConfig, EvalLayerKind};

fn bench_parallel_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallel");
    group.sample_size(10);
    let w = count_workload(&WorkloadSpec::new(20_000, 3, 0.3));
    for threads in [1usize, 2, 4, 8] {
        let cfg = AcquireConfig::default().with_threads(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &w, |b, w| {
            b.iter(|| {
                run_technique(w, &Technique::Acquire(EvalLayerKind::CachedScore), &cfg)
                    .expect("runs")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_explore);
criterion_main!(benches);

//! Ablation (§3 / §7.4): the three evaluation layers under the same search.
//!
//! `Scan` re-executes each cell query against the engine (Postgres-style),
//! `CachedScore` scores tuples once, and `GridIndex` additionally skips
//! empty cells without execution — the §7.4 index idea. The gap between
//! them quantifies how much of ACQUIRE's speed comes from the algorithm
//! versus the backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use acq_bench::{count_workload, run_technique, Technique, WorkloadSpec};
use acq_engine::{sample_catalog_tables, scale_target_for_sample, Executor};
use acquire_core::{acquire, AcquireConfig, EvalLayerKind, HistogramEstimator, RefinedSpace};

fn bench_eval_layers(c: &mut Criterion) {
    let cfg = AcquireConfig::default();
    let mut group = c.benchmark_group("ablation_eval_layers");
    group.sample_size(10);
    let w = count_workload(&WorkloadSpec::new(5_000, 3, 0.5));
    for kind in [
        EvalLayerKind::Scan,
        EvalLayerKind::CachedScore,
        EvalLayerKind::GridIndex,
    ] {
        group.bench_with_input(
            BenchmarkId::new("ACQUIRE", format!("{kind:?}")),
            &w,
            |b, w| {
                b.iter(|| run_technique(w, &Technique::Acquire(kind), &cfg).expect("runs"));
            },
        );
    }
    group.finish();
}

/// The §3 approximate strategies under the same search: a 10% Bernoulli
/// sample (with a scaled target) and the AVI histogram estimator.
fn bench_approx_layers(c: &mut Criterion) {
    let cfg = AcquireConfig::default();
    let mut group = c.benchmark_group("ablation_approx_layers");
    group.sample_size(10);
    let w = count_workload(&WorkloadSpec::new(20_000, 3, 0.5));

    group.bench_function("exact_grid_index", |b| {
        b.iter(|| {
            run_technique(&w, &Technique::Acquire(EvalLayerKind::GridIndex), &cfg).expect("runs")
        });
    });

    group.bench_function("bernoulli_sample_10pct", |b| {
        b.iter(|| {
            let (sampled, rate) =
                sample_catalog_tables(&w.catalog, &["lineitem"], 0.1, 7).expect("sample");
            let q = scale_target_for_sample(&w.query, rate);
            let mut exec = Executor::new(sampled);
            acquire_core::run_acquire(&mut exec, &q, &cfg, EvalLayerKind::GridIndex).expect("runs")
        });
    });

    group.bench_function("histogram_estimator", |b| {
        b.iter(|| {
            let mut q = w.query.clone();
            let mut exec = Executor::new(w.catalog.clone());
            exec.populate_domains(&mut q).expect("domains");
            let space = RefinedSpace::new(&q, &cfg).expect("space");
            let caps = space.caps();
            let mut est = HistogramEstimator::new(&mut exec, &q, &caps, space.step()).expect("est");
            acquire(&mut est, &q, &cfg).expect("runs")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_eval_layers, bench_approx_layers);
criterion_main!(benches);

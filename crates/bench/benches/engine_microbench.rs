//! Engine micro-benchmarks: the substrate operations ACQUIRE is built on
//! (scans, hash joins, band joins, cell queries, grid-index construction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use acq_datagen::{synthetic, GenConfig};
use acq_engine::{
    band_join, hash_equi_join, index::BitmapGridIndex, CellRange, ExecStats, Executor, Relation,
};
use acq_query::{
    AcqQuery, AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide,
};

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_joins");
    group.sample_size(10);
    for rows in [1_000usize, 10_000] {
        let cat = synthetic::join_pair(&GenConfig::uniform(rows), rows, rows).unwrap();
        let left = Relation::table(cat.table("left").unwrap());
        let right = Relation::table(cat.table("right").unwrap());
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::new("hash_equi_join", rows), &rows, |b, _| {
            b.iter(|| {
                let mut stats = ExecStats::default();
                hash_equi_join(&left, (0, 0), &right, (0, 0), &mut stats)
            });
        });
        group.bench_with_input(BenchmarkId::new("band_join_w1", rows), &rows, |b, _| {
            b.iter(|| {
                let mut stats = ExecStats::default();
                band_join(
                    &left,
                    (0, 0),
                    (1.0, 0.0),
                    &right,
                    (0, 0),
                    (1.0, 0.0),
                    1.0,
                    &mut stats,
                )
            });
        });
    }
    group.finish();
}

fn bench_cell_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_cell_queries");
    group.sample_size(20);
    let rows = 50_000;
    let cat = synthetic::numeric_catalog(&GenConfig::uniform(rows), 3).unwrap();
    let query = AcqQuery::builder()
        .table("t")
        .predicate(Predicate::select(
            ColRef::new("t", "x0"),
            Interval::new(0.0, 300.0),
            RefineSide::Upper,
        ))
        .predicate(Predicate::select(
            ColRef::new("t", "x1"),
            Interval::new(0.0, 300.0),
            RefineSide::Upper,
        ))
        .constraint(AggConstraint::new(
            AggregateSpec::count(),
            CmpOp::Eq,
            1000.0,
        ))
        .build()
        .unwrap();
    let mut exec = Executor::new(cat);
    let mut q = query;
    exec.populate_domains(&mut q).unwrap();
    let rq = exec.resolve(&q).unwrap();
    let rel = exec.base_relation(&rq, &[200.0, 200.0]).unwrap();
    let cell = vec![
        CellRange::Open { lo: 5.0, hi: 10.0 },
        CellRange::Open { lo: 0.0, hi: 5.0 },
    ];
    group.throughput(Throughput::Elements(rel.len() as u64));
    group.bench_function("cell_aggregate_scan", |b| {
        b.iter(|| exec.cell_aggregate(&rq, &rel, &cell).unwrap());
    });
    group.bench_function("full_aggregate_scan", |b| {
        b.iter(|| exec.full_aggregate(&rq, &rel, &[10.0, 5.0]).unwrap());
    });
    group.finish();
}

fn bench_grid_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_grid_index");
    group.sample_size(10);
    for rows in [10_000usize, 100_000] {
        let cat = synthetic::numeric_catalog(&GenConfig::uniform(rows), 2).unwrap();
        let table = cat.table("t").unwrap();
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::new("build_32bins", rows), &rows, |b, _| {
            b.iter(|| BitmapGridIndex::build(&table, &[1, 2], 32));
        });
        let idx = BitmapGridIndex::build(&table, &[1, 2], 32);
        group.bench_with_input(BenchmarkId::new("box_probe", rows), &rows, |b, _| {
            b.iter(|| {
                let mut probes = 0u64;
                idx.box_maybe_occupied(&[(100.0, 200.0), (400.0, 500.0)], &mut probes)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_joins,
    bench_cell_queries,
    bench_grid_index_build
);
criterion_main!(benches);

//! Property tests for the engine substrate: joins against nested-loop
//! references, aggregate-state algebra, cell-query partitioning, and the
//! bitmap grid index.

use std::sync::Arc;

use proptest::prelude::*;

use acq_engine::{
    band_join, hash_equi_join, index::BitmapGridIndex, AggState, Catalog, CellRange, DataType,
    ExecStats, Executor, Field, Relation, Table, TableBuilder, Value,
};
use acq_query::{
    AcqQuery, AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide,
};

fn table_from(name: &str, vals: &[f64]) -> Arc<Table> {
    let mut b = TableBuilder::new(name, vec![Field::new("x", DataType::Float)]).unwrap();
    for &v in vals {
        b.push_row(vec![Value::Float(v)]);
    }
    Arc::new(b.finish().unwrap())
}

proptest! {
    // ---------------------------------------------------------------------
    // Joins vs nested-loop references
    // ---------------------------------------------------------------------

    #[test]
    fn band_join_equals_nested_loop(
        l in prop::collection::vec(-100.0f64..100.0, 0..60),
        r in prop::collection::vec(-100.0f64..100.0, 0..60),
        w in 0.0f64..50.0,
    ) {
        let lr = Relation::table(table_from("l", &l));
        let rr = Relation::table(table_from("r", &r));
        let mut stats = ExecStats::default();
        let j = band_join(&lr, (0, 0), (1.0, 0.0), &rr, (0, 0), (1.0, 0.0), w, &mut stats);
        let mut got: Vec<(u32, u32)> =
            (0..j.len()).map(|row| (j.base_row(row, 0), j.base_row(row, 1))).collect();
        got.sort_unstable();
        let mut expected = Vec::new();
        for (i, &a) in l.iter().enumerate() {
            for (k, &b) in r.iter().enumerate() {
                if (a - b).abs() <= w {
                    expected.push((i as u32, k as u32));
                }
            }
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn hash_join_equals_nested_loop(
        l in prop::collection::vec(-5i64..5, 0..60),
        r in prop::collection::vec(-5i64..5, 0..60),
    ) {
        let lf: Vec<f64> = l.iter().map(|&v| v as f64).collect();
        let rf: Vec<f64> = r.iter().map(|&v| v as f64).collect();
        let lr = Relation::table(table_from("l", &lf));
        let rr = Relation::table(table_from("r", &rf));
        let mut stats = ExecStats::default();
        let j = hash_equi_join(&lr, (0, 0), &rr, (0, 0), &mut stats);
        let mut got: Vec<(u32, u32)> =
            (0..j.len()).map(|row| (j.base_row(row, 0), j.base_row(row, 1))).collect();
        got.sort_unstable();
        let mut expected = Vec::new();
        for (i, &a) in l.iter().enumerate() {
            for (k, &b) in r.iter().enumerate() {
                if a == b {
                    expected.push((i as u32, k as u32));
                }
            }
        }
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    // ---------------------------------------------------------------------
    // Aggregate-state algebra (the OSP "+")
    // ---------------------------------------------------------------------

    /// Splitting a value stream at any point and merging the two partial
    /// states equals folding the whole stream — for every aggregate kind.
    #[test]
    fn merge_equals_concatenated_fold(
        vals in prop::collection::vec(-100.0f64..100.0, 1..50),
        split in any::<prop::sample::Index>(),
    ) {
        let cut = split.index(vals.len());
        let states: Vec<AggState> = vec![
            AggState::Count(0),
            AggState::Sum(0.0),
            AggState::Min(None),
            AggState::Max(None),
            AggState::Avg { sum: 0.0, count: 0 },
        ];
        for empty in states {
            let mut whole = empty.clone();
            for &v in &vals {
                whole.update(v);
            }
            let mut left = empty.clone();
            for &v in &vals[..cut] {
                left.update(v);
            }
            let mut right = empty.clone();
            for &v in &vals[cut..] {
                right.update(v);
            }
            left.merge(&right).unwrap();
            match (whole.value(), left.value()) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}"),
                (a, b) => prop_assert_eq!(a, b),
            }
        }
    }

    // ---------------------------------------------------------------------
    // Cell queries partition the admissible tuples
    // ---------------------------------------------------------------------

    /// The cells of any grid step partition the tuple universe: summing the
    /// COUNT of every cell up to the domain cap equals the full aggregate.
    #[test]
    fn cells_partition_universe(
        vals in prop::collection::vec(0.0f64..100.0, 1..80),
        bound in 5.0f64..50.0,
        step in 2.0f64..40.0,
    ) {
        let mut cat = Catalog::new();
        let mut b = TableBuilder::new("t", vec![Field::new("x", DataType::Float)]).unwrap();
        for &v in &vals {
            b.push_row(vec![Value::Float(v)]);
        }
        cat.register(b.finish().unwrap()).unwrap();
        let q = AcqQuery::builder()
            .table("t")
            .predicate(
                Predicate::select(
                    ColRef::new("t", "x"),
                    Interval::new(0.0, bound),
                    RefineSide::Upper,
                )
                .with_domain(Interval::new(0.0, 100.0)),
            )
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 1.0))
            .build()
            .unwrap();
        let mut exec = Executor::new(cat);
        let rq = exec.resolve(&q).unwrap();
        let rel = exec.base_relation(&rq, &[f64::INFINITY]).unwrap();
        // Enough buckets to cover scores up to the maximal possible score.
        let max_score = (100.0 - 0.0) / bound * 100.0;
        let buckets = (max_score / step).ceil() as u32 + 1;
        let mut total = 0.0;
        for k in 0..=buckets {
            let cell = if k == 0 {
                vec![CellRange::Zero]
            } else {
                vec![CellRange::Open {
                    lo: f64::from(k - 1) * step,
                    hi: f64::from(k) * step,
                }]
            };
            total += exec.cell_aggregate(&rq, &rel, &cell).unwrap().value().unwrap();
        }
        let full = exec
            .full_aggregate(&rq, &rel, &[f64::from(buckets) * step])
            .unwrap()
            .value()
            .unwrap();
        prop_assert_eq!(total, full);
        prop_assert_eq!(full, vals.len() as f64);
    }

    // ---------------------------------------------------------------------
    // Bitmap grid index vs brute force
    // ---------------------------------------------------------------------

    #[test]
    fn grid_index_box_queries_are_sound(
        rows in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..80),
        (q0, q1) in ((0.0f64..100.0, 0.0f64..100.0), (0.0f64..100.0, 0.0f64..100.0)),
        bins in 1usize..12,
    ) {
        let mut b = TableBuilder::new(
            "t",
            vec![Field::new("a", DataType::Float), Field::new("b", DataType::Float)],
        )
        .unwrap();
        for &(x, y) in &rows {
            b.push_row(vec![Value::Float(x), Value::Float(y)]);
        }
        let table = b.finish().unwrap();
        let idx = BitmapGridIndex::build(&table, &[0, 1], bins);
        let (alo, ahi) = if q0.0 <= q0.1 { (q0.0, q0.1) } else { (q0.1, q0.0) };
        let (blo, bhi) = if q1.0 <= q1.1 { (q1.0, q1.1) } else { (q1.1, q1.0) };
        let boxq = [(alo, ahi), (blo, bhi)];
        let exact: Vec<u32> = rows
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| x >= alo && x <= ahi && y >= blo && y <= bhi)
            .map(|(i, _)| i as u32)
            .collect();
        // Soundness: if the index says "empty", it is empty.
        let mut probes = 0;
        if !idx.box_maybe_occupied(&boxq, &mut probes) {
            prop_assert!(exact.is_empty(), "index claimed empty but {exact:?} match");
        }
        // Candidates are a superset of exact matches.
        let mut cands = Vec::new();
        idx.visit_box_candidates(&boxq, |r| cands.push(r));
        for e in &exact {
            prop_assert!(cands.contains(e), "candidate set missing row {e}");
        }
        // Count upper bound is an upper bound.
        prop_assert!(idx.box_count_upper_bound(&boxq) >= exact.len() as u64);
    }
}

//! Property test: any table survives a CSV write/read round trip with
//! identical schema and values.

use proptest::prelude::*;

use acq_engine::{csv, DataType, Field, Table, TableBuilder, Value};

fn build(rows: &[(i64, f64, String)]) -> Table {
    let mut b = TableBuilder::new(
        "t",
        vec![
            Field::new("i", DataType::Int),
            Field::new("f", DataType::Float),
            Field::new("s", DataType::Str),
        ],
    )
    .unwrap();
    for (i, f, s) in rows {
        b.push_row(vec![
            Value::Int(*i),
            Value::Float(*f),
            Value::from(s.as_str()),
        ]);
    }
    b.finish().unwrap()
}

/// Strings that exercise the quoting rules but keep the non-empty /
/// no-ambient-newline invariants of the engine's CSV profile, and that do
/// not themselves parse as numbers (type inference must keep the column
/// STR).
fn csv_string() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z ,\"'_-]{1,20}")
        .expect("valid regex")
        .prop_filter("non-empty, non-numeric, no edge whitespace", |s| {
            !s.trim().is_empty()
                && s.trim() == s
                && s.parse::<f64>().is_err()
                && s.chars().any(|c| c.is_ascii_alphabetic())
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn roundtrip_preserves_schema_and_values(
        rows in prop::collection::vec(
            (any::<i64>(), -1.0e15f64..1.0e15, csv_string()),
            1..40,
        )
    ) {
        let table = build(&rows);
        let text = csv::write_csv_string(&table);
        let back = csv::read_csv_str("t", "roundtrip", &text)
            .unwrap_or_else(|e| panic!("{e}\n{text}"));
        prop_assert_eq!(back.schema(), table.schema());
        prop_assert_eq!(back.num_rows(), table.num_rows());
        for r in 0..table.num_rows() {
            for c in 0..3 {
                prop_assert_eq!(
                    back.value(r, c),
                    table.value(r, c),
                    "cell ({}, {})",
                    r,
                    c
                );
            }
        }
    }

    /// Float columns survive exactly (shortest-round-trip formatting).
    #[test]
    fn floats_roundtrip_bit_exactly(vals in prop::collection::vec(any::<f64>(), 1..30)) {
        prop_assume!(vals.iter().all(|v| v.is_finite()));
        let mut b = TableBuilder::new("t", vec![Field::new("x", DataType::Float)]).unwrap();
        for &v in &vals {
            b.push_row(vec![Value::Float(v)]);
        }
        let table = b.finish().unwrap();
        let back = csv::read_csv_str("t", "mem", &csv::write_csv_string(&table)).unwrap();
        for (r, &v) in vals.iter().enumerate() {
            let got = back.column_by_name("x").unwrap().get_f64(r).unwrap();
            prop_assert_eq!(got.to_bits(), v.to_bits(), "row {}", r);
        }
    }
}

//! Columnar storage.

use std::sync::Arc;

use crate::value::{DataType, Value};

/// A typed column of values stored contiguously.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Integer column.
    Int(Vec<i64>),
    /// Float column.
    Float(Vec<f64>),
    /// String column.
    Str(Vec<Arc<str>>),
}

impl ColumnData {
    /// An empty column of the given type.
    #[must_use]
    pub fn empty(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => Self::Int(Vec::new()),
            DataType::Float => Self::Float(Vec::new()),
            DataType::Str => Self::Str(Vec::new()),
        }
    }

    /// An empty column with reserved capacity.
    #[must_use]
    pub fn with_capacity(dtype: DataType, cap: usize) -> Self {
        match dtype {
            DataType::Int => Self::Int(Vec::with_capacity(cap)),
            DataType::Float => Self::Float(Vec::with_capacity(cap)),
            DataType::Str => Self::Str(Vec::with_capacity(cap)),
        }
    }

    /// The column's data type.
    #[must_use]
    pub fn dtype(&self) -> DataType {
        match self {
            Self::Int(_) => DataType::Int,
            Self::Float(_) => DataType::Float,
            Self::Str(_) => DataType::Str,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Self::Int(v) => v.len(),
            Self::Float(v) => v.len(),
            Self::Str(v) => v.len(),
        }
    }

    /// Whether the column is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at `row`. Panics when out of bounds (callers iterate within
    /// `0..len()`).
    #[must_use]
    pub fn get(&self, row: usize) -> Value {
        match self {
            Self::Int(v) => Value::Int(v[row]),
            Self::Float(v) => Value::Float(v[row]),
            Self::Str(v) => Value::Str(Arc::clone(&v[row])),
        }
    }

    /// Numeric view of the value at `row` (`None` for string columns).
    #[inline]
    #[must_use]
    pub fn get_f64(&self, row: usize) -> Option<f64> {
        match self {
            Self::Int(v) => Some(v[row] as f64),
            Self::Float(v) => Some(v[row]),
            Self::Str(_) => None,
        }
    }

    /// Integer view of the value at `row` (`None` for non-int columns).
    #[inline]
    #[must_use]
    pub fn get_i64(&self, row: usize) -> Option<i64> {
        match self {
            Self::Int(v) => Some(v[row]),
            _ => None,
        }
    }

    /// String view of the value at `row` (`None` for numeric columns).
    #[inline]
    #[must_use]
    pub fn get_str(&self, row: usize) -> Option<&str> {
        match self {
            Self::Str(v) => Some(&v[row]),
            _ => None,
        }
    }

    /// Appends a value. Panics on type mismatch (table builders validate
    /// types before pushing).
    pub fn push(&mut self, v: Value) {
        match (self, v) {
            (Self::Int(col), Value::Int(x)) => col.push(x),
            (Self::Float(col), Value::Float(x)) => col.push(x),
            (Self::Str(col), Value::Str(x)) => col.push(x),
            // lint-allow(panic-hygiene): documented contract; table builders validate dtypes
            (col, v) => panic!("cannot push {} into {} column", v.dtype(), col.dtype()),
        }
    }

    /// Borrowed numeric view of the whole column, `None` for string
    /// columns. The kernel paths use this to read values without the
    /// per-row enum dispatch of [`ColumnData::get_f64`].
    #[must_use]
    pub fn num_slice(&self) -> Option<NumSlice<'_>> {
        match self {
            Self::Int(v) => Some(NumSlice::Int(v)),
            Self::Float(v) => Some(NumSlice::Float(v)),
            Self::Str(_) => None,
        }
    }

    /// Minimum and maximum of a numeric column, `None` for empty or string
    /// columns. NaN floats are ignored.
    #[must_use]
    pub fn min_max(&self) -> Option<(f64, f64)> {
        match self {
            Self::Int(v) => {
                let min = *v.iter().min()?;
                let max = *v.iter().max()?;
                Some((min as f64, max as f64))
            }
            Self::Float(v) => {
                let mut it = v.iter().copied().filter(|x| !x.is_nan());
                let first = it.next()?;
                let (mut lo, mut hi) = (first, first);
                for x in it {
                    lo = lo.min(x);
                    hi = hi.max(x);
                }
                Some((lo, hi))
            }
            Self::Str(_) => None,
        }
    }
}

/// A borrowed, typed view over one numeric column, letting tight loops
/// hoist the column-type dispatch out of the per-row path. Values read as
/// `f64` exactly like [`ColumnData::get_f64`].
#[derive(Debug, Clone, Copy)]
pub enum NumSlice<'a> {
    /// View over an integer column.
    Int(&'a [i64]),
    /// View over a float column.
    Float(&'a [f64]),
}

impl NumSlice<'_> {
    /// Value at `row` as `f64` (same cast as [`ColumnData::get_f64`]).
    #[inline]
    #[must_use]
    pub fn get(&self, row: usize) -> f64 {
        match self {
            Self::Int(v) => v[row] as f64,
            Self::Float(v) => v[row],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut c = ColumnData::empty(DataType::Int);
        c.push(Value::Int(4));
        c.push(Value::Int(-2));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Value::Int(-2));
        assert_eq!(c.get_f64(0), Some(4.0));
        assert_eq!(c.get_i64(0), Some(4));
        assert_eq!(c.get_str(0), None);
    }

    #[test]
    #[should_panic(expected = "cannot push")]
    fn push_type_mismatch_panics() {
        let mut c = ColumnData::empty(DataType::Int);
        c.push(Value::Float(1.0));
    }

    #[test]
    fn min_max_int_and_float() {
        let c = ColumnData::Int(vec![5, -1, 3]);
        assert_eq!(c.min_max(), Some((-1.0, 5.0)));
        let f = ColumnData::Float(vec![2.0, f64::NAN, -7.5]);
        assert_eq!(f.min_max(), Some((-7.5, 2.0)));
        let s = ColumnData::Str(vec![]);
        assert_eq!(s.min_max(), None);
        let e = ColumnData::Int(vec![]);
        assert_eq!(e.min_max(), None);
    }

    #[test]
    fn string_columns_share_values() {
        let v: Arc<str> = Arc::from("hello");
        let c = ColumnData::Str(vec![Arc::clone(&v), v]);
        assert_eq!(c.get_str(0), Some("hello"));
        assert_eq!(c.get_f64(0), None);
    }
}

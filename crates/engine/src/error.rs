//! Engine errors.

use std::fmt;

use acq_query::ColRef;

use crate::value::DataType;

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

/// Errors raised by storage and execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// The referenced table does not exist in the catalog.
    UnknownTable(String),
    /// The referenced column does not exist, or the reference is unresolved.
    UnknownColumn(ColRef),
    /// A column was used with an incompatible type.
    TypeMismatch {
        /// The column in question.
        col: ColRef,
        /// Type the operation needed.
        expected: DataType,
        /// Type the column actually has.
        actual: DataType,
    },
    /// Table construction received columns of inconsistent lengths.
    RaggedColumns {
        /// Table being built.
        table: String,
        /// Expected row count (from the first column).
        expected: usize,
        /// Offending column's row count.
        actual: usize,
    },
    /// A duplicate table or column name.
    DuplicateName(String),
    /// The query's tables cannot be connected by its join predicates without
    /// a cross product larger than the configured limit.
    CrossProductTooLarge {
        /// Estimated row count of the product.
        estimated: u64,
        /// Configured limit.
        limit: u64,
    },
    /// A named user-defined aggregate was not registered.
    UnknownUda(String),
    /// Two aggregate states of different kinds were merged.
    StateMismatch,
    /// An operation was asked of a component that does not support it
    /// (e.g. a COUNT-only evaluation layer given a SUM constraint).
    Unsupported(String),
    /// An I/O failure (CSV import/export).
    Io(String),
    /// Malformed external data (CSV parse failures).
    Malformed {
        /// Source description (path).
        source: String,
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An injected or environmental fault. Raised by the fault-injection
    /// harness and available to out-of-tree evaluation layers for transient
    /// backend failures (connection drops, timeouts).
    Fault(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownTable(t) => write!(f, "unknown table: {t}"),
            Self::UnknownColumn(c) => write!(f, "unknown or unresolved column: {c}"),
            Self::TypeMismatch {
                col,
                expected,
                actual,
            } => {
                write!(f, "column {col} has type {actual}, expected {expected}")
            }
            Self::RaggedColumns {
                table,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "table {table}: column length {actual} != expected {expected}"
                )
            }
            Self::DuplicateName(n) => write!(f, "duplicate name: {n}"),
            Self::CrossProductTooLarge { estimated, limit } => {
                write!(
                    f,
                    "cross product of ~{estimated} rows exceeds limit {limit}"
                )
            }
            Self::UnknownUda(n) => write!(f, "user-defined aggregate not registered: {n}"),
            Self::StateMismatch => write!(f, "cannot merge aggregate states of different kinds"),
            Self::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            Self::Io(msg) => write!(f, "I/O error: {msg}"),
            Self::Malformed {
                source,
                line,
                message,
            } => {
                write!(f, "{source}:{line}: {message}")
            }
            Self::Fault(msg) => write!(f, "evaluation fault: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

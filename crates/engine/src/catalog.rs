//! Table catalog.

use std::collections::HashMap;
use std::sync::Arc;

use acq_query::ColRef;

use crate::error::{EngineError, EngineResult};
use crate::table::Table;

/// A named collection of tables, shared by executors and binders.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
}

impl Catalog {
    /// An empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table under its own name; rejects duplicates.
    pub fn register(&mut self, table: Table) -> EngineResult<()> {
        let name = table.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(EngineError::DuplicateName(name));
        }
        self.tables.insert(name, Arc::new(table));
        Ok(())
    }

    /// Replaces (or inserts) a table.
    pub fn replace(&mut self, table: Table) {
        self.tables
            .insert(table.name().to_string(), Arc::new(table));
    }

    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> EngineResult<Arc<Table>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Resolves a column reference to `(table, column_index)`.
    pub fn resolve(&self, col: &ColRef) -> EngineResult<(Arc<Table>, usize)> {
        let table_name = col
            .table
            .as_deref()
            .ok_or_else(|| EngineError::UnknownColumn(col.clone()))?;
        let table = self.table(table_name)?;
        let idx = table
            .schema()
            .index_of(&col.column)
            .ok_or_else(|| EngineError::UnknownColumn(col.clone()))?;
        Ok((table, idx))
    }

    /// Names of the registered tables (unordered).
    #[must_use]
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of registered tables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::table::TableBuilder;
    use crate::value::{DataType, Value};

    fn table(name: &str) -> Table {
        let mut b = TableBuilder::new(name, vec![Field::new("x", DataType::Int)]).unwrap();
        b.push_row(vec![Value::Int(1)]);
        b.finish().unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        c.register(table("t")).unwrap();
        assert!(c.table("t").is_ok());
        assert_eq!(
            c.table("u").unwrap_err(),
            EngineError::UnknownTable("u".into())
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn duplicate_rejected_replace_allowed() {
        let mut c = Catalog::new();
        c.register(table("t")).unwrap();
        assert!(matches!(
            c.register(table("t")),
            Err(EngineError::DuplicateName(_))
        ));
        c.replace(table("t"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn resolve_column() {
        let mut c = Catalog::new();
        c.register(table("t")).unwrap();
        let (_, idx) = c.resolve(&ColRef::new("t", "x")).unwrap();
        assert_eq!(idx, 0);
        assert!(c.resolve(&ColRef::new("t", "nope")).is_err());
        assert!(c.resolve(&ColRef::bare("x")).is_err());
    }
}

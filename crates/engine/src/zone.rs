//! Block-level min/max statistics ("zone maps") and cell-range pruning.
//!
//! Cell queries (§5.1.1) are pure range/band predicates over refinement
//! scores, so a block of rows whose per-column min/max lie entirely outside
//! (or entirely inside) a cell's score band can be skipped (or aggregated
//! without re-evaluating the predicate). [`Table`](crate::Table) builds one
//! [`ColumnZones`] per numeric column at load time over fixed
//! [`ZONE_BLOCK`]-row blocks; [`classify`] maps a block against one
//! predicate + [`CellRange`](crate::CellRange) into a [`BlockClass`].
//!
//! Classification works in *value space at the block endpoints* and leans
//! only on the weak monotonicity of [`Predicate::score_value`] over the
//! feasible segment (fp subtraction and division by a positive constant are
//! order-preserving), so it is exact: `Skip` blocks contain no qualifying
//! tuple, `Full` blocks contain only qualifying tuples, and the straddling
//! remainder is re-scanned with the scalar predicate. The pruned path is
//! therefore bit-identical to the unpruned one (see DESIGN, "Zone-map
//! pruning and the determinism contract").

use acq_query::{Predicate, RefineSide};

use crate::column::ColumnData;
use crate::executor::CellRange;

/// Rows per zone-map block. Small enough that a straddling block costs
/// little, large enough that the per-block classification (a handful of
/// `score_value` calls) amortises to nothing.
pub const ZONE_BLOCK: usize = 1024;

/// Min/max summary of one block of one column.
///
/// NaN values are excluded from the band and recorded in `has_nan`; a block
/// that is entirely NaN keeps the empty sentinel `min > max`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockStat {
    /// Smallest non-NaN value in the block (`+inf` when none).
    pub min: f64,
    /// Largest non-NaN value in the block (`-inf` when none).
    pub max: f64,
    /// Whether the block contains any NaN value.
    pub has_nan: bool,
}

impl BlockStat {
    /// The empty/all-NaN sentinel: an inverted band that classifies as
    /// `Skip` (NaN rows score `+inf` and can never fall in a cell).
    pub const EMPTY: Self = Self {
        min: f64::INFINITY,
        max: f64::NEG_INFINITY,
        has_nan: false,
    };
}

/// Zone map for one column: one [`BlockStat`] per [`ZONE_BLOCK`]-row block.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnZones {
    blocks: Vec<BlockStat>,
}

impl ColumnZones {
    /// Builds the zone map for a column; string columns get no blocks
    /// (they never feed numeric predicates through the kernel path).
    #[must_use]
    pub fn build(col: &ColumnData) -> Self {
        let blocks = match col {
            ColumnData::Int(v) => v
                .chunks(ZONE_BLOCK)
                .map(|c| {
                    let mut st = BlockStat::EMPTY;
                    for &x in c {
                        let x = x as f64;
                        if x < st.min {
                            st.min = x;
                        }
                        if x > st.max {
                            st.max = x;
                        }
                    }
                    st
                })
                .collect(),
            ColumnData::Float(v) => v
                .chunks(ZONE_BLOCK)
                .map(|c| {
                    let mut st = BlockStat::EMPTY;
                    for &x in c {
                        if x.is_nan() {
                            st.has_nan = true;
                        } else {
                            if x < st.min {
                                st.min = x;
                            }
                            if x > st.max {
                                st.max = x;
                            }
                        }
                    }
                    st
                })
                .collect(),
            ColumnData::Str(_) => Vec::new(),
        };
        Self { blocks }
    }

    /// The per-block stats; empty for string columns.
    #[must_use]
    pub fn blocks(&self) -> &[BlockStat] {
        &self.blocks
    }
}

/// How a block relates to one cell's score band.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockClass {
    /// No row in the block can qualify: skip it entirely.
    Skip,
    /// Every row in the block qualifies: aggregate without re-evaluating
    /// the predicate.
    Full,
    /// The block straddles the band: scan it row by row.
    Scan,
}

impl BlockClass {
    /// Meet of per-dimension classes: a cell qualifies a row only when every
    /// dimension does, so any `Skip` wins, `Full` requires all-`Full`.
    #[must_use]
    pub fn and(self, other: Self) -> Self {
        match (self, other) {
            (Self::Skip, _) | (_, Self::Skip) => Self::Skip,
            (Self::Full, Self::Full) => Self::Full,
            _ => Self::Scan,
        }
    }
}

/// Classifies one block against one predicate and its cell score range.
///
/// `range` is `None` for NOREFINE predicates (which qualify exactly the
/// rows inside their interval) and `Some` for refinable dimensions, where
/// the qualifying scores are `s == 0` ([`CellRange::Zero`]) or
/// `lo < s <= hi` ([`CellRange::Open`]).
///
/// `Skip`/`Full` answers are exact; anything uncertain returns `Scan`.
#[must_use]
pub fn classify(pred: &Predicate, range: Option<&CellRange>, st: &BlockStat) -> BlockClass {
    if st.min > st.max {
        // Empty or all-NaN block: NaN scores +inf, never qualifies.
        return BlockClass::Skip;
    }
    let (zmin, zmax) = (st.min, st.max);
    let Some(range) = range else {
        // NOREFINE: qualification is plain interval containment; pure
        // value-space comparison, no score arithmetic involved.
        let (lo, hi) = (pred.interval.lo(), pred.interval.hi());
        return if zmax < lo || zmin > hi {
            BlockClass::Skip
        } else if !st.has_nan && zmin >= lo && zmax <= hi {
            BlockClass::Full
        } else {
            BlockClass::Scan
        };
    };
    // Refinable dimension. score_value is weakly monotone over the feasible
    // segment (nondecreasing in v for Upper on v >= lo, nonincreasing for
    // Lower on v <= hi) and +inf outside it, so the block's score band is
    // bracketed by the endpoint scores once the fixed-side boundary is
    // known to be respected.
    let s_min = pred.score_value(zmin);
    let s_max = pred.score_value(zmax);
    match pred.refine {
        RefineSide::Upper => {
            let lo = pred.interval.lo();
            match *range {
                CellRange::Zero => {
                    if zmax < lo || (zmin >= lo && s_min != 0.0) {
                        // Whole block below the fixed side, or min feasible
                        // score already positive/inf: nothing scores 0.
                        BlockClass::Skip
                    } else if !st.has_nan && s_min == 0.0 && s_max == 0.0 {
                        BlockClass::Full
                    } else {
                        BlockClass::Scan
                    }
                }
                CellRange::Open { lo: rlo, hi: rhi } => {
                    if zmax < lo || s_max <= rlo || (zmin >= lo && s_min > rhi) {
                        BlockClass::Skip
                    } else if !st.has_nan && zmin >= lo && s_min > rlo && s_max <= rhi {
                        BlockClass::Full
                    } else {
                        BlockClass::Scan
                    }
                }
            }
        }
        RefineSide::Lower => {
            // Mirror image: max score at zmin, min score at zmax.
            let hi = pred.interval.hi();
            match *range {
                CellRange::Zero => {
                    if zmin > hi || (zmax <= hi && s_max != 0.0) {
                        BlockClass::Skip
                    } else if !st.has_nan && s_min == 0.0 && s_max == 0.0 {
                        BlockClass::Full
                    } else {
                        BlockClass::Scan
                    }
                }
                CellRange::Open { lo: rlo, hi: rhi } => {
                    if zmin > hi || s_min <= rlo || (zmax <= hi && s_max > rhi) {
                        BlockClass::Skip
                    } else if !st.has_nan && zmax <= hi && s_max > rlo && s_min <= rhi {
                        BlockClass::Full
                    } else {
                        BlockClass::Scan
                    }
                }
            }
        }
    }
}

/// Per-cell scan accounting produced by the pruned cell path, committed to
/// [`ExecStats`](crate::ExecStats) on the serial emission path only (§9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellScan {
    /// Rows actually evaluated against the predicate (straddling blocks).
    pub tuples_scanned: u64,
    /// Blocks skipped outright by zone-map classification.
    pub zones_pruned: u64,
    /// Blocks aggregated wholesale without predicate re-evaluation.
    pub zones_full: u64,
    /// Blocks that straddled the band and were scanned row by row.
    pub zones_scanned: u64,
}

impl CellScan {
    /// Accumulates another scan's counters into this one.
    pub fn absorb(&mut self, other: &Self) {
        self.tuples_scanned += other.tuples_scanned;
        self.zones_pruned += other.zones_pruned;
        self.zones_full += other.zones_full;
        self.zones_scanned += other.zones_scanned;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_query::{ColRef, Interval};

    fn upper(lo: f64, hi: f64) -> Predicate {
        Predicate::select(
            ColRef::new("t", "x"),
            Interval::new(lo, hi),
            RefineSide::Upper,
        )
    }

    fn lower(lo: f64, hi: f64) -> Predicate {
        Predicate::select(
            ColRef::new("t", "x"),
            Interval::new(lo, hi),
            RefineSide::Lower,
        )
    }

    fn st(min: f64, max: f64) -> BlockStat {
        BlockStat {
            min,
            max,
            has_nan: false,
        }
    }

    #[test]
    fn zone_build_int_and_float() {
        let z = ColumnZones::build(&ColumnData::Int((0..2500).collect()));
        assert_eq!(z.blocks().len(), 3);
        assert_eq!(z.blocks()[0], st(0.0, 1023.0));
        assert_eq!(z.blocks()[2], st(2048.0, 2499.0));

        let mut vals = vec![1.5, f64::NAN, -2.0];
        vals.extend(std::iter::repeat_n(0.0, 5));
        let z = ColumnZones::build(&ColumnData::Float(vals));
        assert_eq!(z.blocks().len(), 1);
        assert_eq!(
            z.blocks()[0],
            BlockStat {
                min: -2.0,
                max: 1.5,
                has_nan: true
            }
        );

        let z = ColumnZones::build(&ColumnData::Float(vec![f64::NAN; 4]));
        assert_eq!(z.blocks()[0].min, f64::INFINITY);
        assert!(z.blocks()[0].min > z.blocks()[0].max);
        assert!(z.blocks()[0].has_nan);
        assert_eq!(
            classify(&upper(0.0, 50.0), Some(&CellRange::Zero), &z.blocks()[0]),
            BlockClass::Skip
        );
    }

    #[test]
    fn upper_zero_classification_at_boundaries() {
        let p = upper(0.0, 50.0);
        let zero = CellRange::Zero;
        // Block max exactly on interval hi: still fully inside.
        assert_eq!(classify(&p, Some(&zero), &st(0.0, 50.0)), BlockClass::Full);
        // Block min exactly on interval lo qualifies; past hi does not.
        assert_eq!(classify(&p, Some(&zero), &st(0.0, 50.1)), BlockClass::Scan);
        // Whole block strictly past hi: scores all positive.
        assert_eq!(classify(&p, Some(&zero), &st(50.1, 80.0)), BlockClass::Skip);
        // Whole block below the fixed side.
        assert_eq!(
            classify(&p, Some(&zero), &st(-10.0, -0.1)),
            BlockClass::Skip
        );
        // Straddles the fixed side.
        assert_eq!(classify(&p, Some(&zero), &st(-1.0, 10.0)), BlockClass::Scan);
    }

    #[test]
    fn upper_open_classification_at_boundaries() {
        let p = upper(0.0, 50.0);
        // Band (0, 10]: values in (50, 55].
        let band = CellRange::Open { lo: 0.0, hi: 10.0 };
        assert_eq!(classify(&p, Some(&band), &st(51.0, 55.0)), BlockClass::Full);
        // Hi endpoint of the band is inclusive: score(55) == 10 exactly.
        assert_eq!(classify(&p, Some(&band), &st(50.5, 55.0)), BlockClass::Full);
        // Lo endpoint exclusive: score(50) == 0 is outside (0, 10].
        assert_eq!(classify(&p, Some(&band), &st(50.0, 55.0)), BlockClass::Scan);
        assert_eq!(classify(&p, Some(&band), &st(0.0, 50.0)), BlockClass::Skip);
        assert_eq!(classify(&p, Some(&band), &st(55.5, 80.0)), BlockClass::Skip);
        assert_eq!(classify(&p, Some(&band), &st(54.0, 56.0)), BlockClass::Scan);
        // Fixed-side straddle can hide in-band values: must scan.
        assert_eq!(classify(&p, Some(&band), &st(-5.0, 52.0)), BlockClass::Scan);
    }

    #[test]
    fn lower_side_mirrors() {
        let p = lower(100.0, 200.0);
        let zero = CellRange::Zero;
        assert_eq!(
            classify(&p, Some(&zero), &st(100.0, 200.0)),
            BlockClass::Full
        );
        assert_eq!(
            classify(&p, Some(&zero), &st(210.0, 220.0)),
            BlockClass::Skip
        );
        assert_eq!(classify(&p, Some(&zero), &st(10.0, 90.0)), BlockClass::Skip);
        assert_eq!(
            classify(&p, Some(&zero), &st(90.0, 150.0)),
            BlockClass::Scan
        );

        // Band (0, 10]: values in [90, 100).
        let band = CellRange::Open { lo: 0.0, hi: 10.0 };
        assert_eq!(classify(&p, Some(&band), &st(90.0, 99.0)), BlockClass::Full);
        assert_eq!(
            classify(&p, Some(&band), &st(90.0, 100.0)),
            BlockClass::Scan
        );
        assert_eq!(
            classify(&p, Some(&band), &st(100.0, 150.0)),
            BlockClass::Skip
        );
        assert_eq!(classify(&p, Some(&band), &st(50.0, 80.0)), BlockClass::Skip);
        assert_eq!(classify(&p, Some(&band), &st(85.0, 95.0)), BlockClass::Scan);
    }

    #[test]
    fn norefine_is_pure_containment() {
        let mut p = upper(0.0, 50.0);
        p.refinable = false;
        assert_eq!(classify(&p, None, &st(0.0, 50.0)), BlockClass::Full);
        assert_eq!(classify(&p, None, &st(-1.0, 50.0)), BlockClass::Scan);
        assert_eq!(classify(&p, None, &st(51.0, 60.0)), BlockClass::Skip);
        assert_eq!(classify(&p, None, &st(-9.0, -1.0)), BlockClass::Skip);
        // NaN in the block forbids Full even when the band covers it.
        let nan = BlockStat {
            min: 0.0,
            max: 50.0,
            has_nan: true,
        };
        assert_eq!(classify(&p, None, &nan), BlockClass::Scan);
    }

    #[test]
    fn refinement_cap_turns_scores_infinite() {
        let p = upper(0.0, 50.0).with_max_refinement(5.0);
        // score(60) == 20 > cap, so the whole block is infeasible.
        assert_eq!(
            classify(
                &p,
                Some(&CellRange::Open { lo: 0.0, hi: 30.0 }),
                &st(56.0, 60.0)
            ),
            BlockClass::Skip
        );
        // Cap-straddling block: score(52)=4 <= cap, score(60) inf.
        assert_eq!(
            classify(
                &p,
                Some(&CellRange::Open { lo: 0.0, hi: 30.0 }),
                &st(52.0, 60.0)
            ),
            BlockClass::Scan
        );
    }

    #[test]
    fn class_meet_semantics() {
        use BlockClass::*;
        assert_eq!(Full.and(Full), Full);
        assert_eq!(Full.and(Scan), Scan);
        assert_eq!(Scan.and(Skip), Skip);
        assert_eq!(Skip.and(Full), Skip);
    }
}

//! Catalog sampling: the "sampling" evaluation-layer strategy of §3.
//!
//! *"The evaluation layer is modular and can be replaced with other
//! techniques such as estimation, and/or sampling"* — and the paper's
//! Fig. 10a runs a 1K-tuple dataset precisely "to mimic a sample based
//! approach". This module makes that a first-class operation: Bernoulli
//! -sample selected tables of a catalog (deterministically, from a seed and
//! the row identity — no RNG state involved) and scale the query target so
//! a refinement search over the sample approximates the full-data search.
//!
//! Sampling each table of a join independently would destroy foreign-key
//! matches, so [`sample_catalog_tables`] samples only the tables the caller
//! names (typically the fact table) and keeps the rest intact.

use acq_query::{AcqQuery, AggFunc};

use crate::catalog::Catalog;
use crate::column::ColumnData;
use crate::error::EngineResult;
use crate::schema::Schema;
use crate::table::Table;

/// SplitMix64: a tiny, high-quality bit mixer for hash-based sampling.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Bernoulli-samples a table: row `i` is kept iff
/// `hash(seed, table, i) < rate`. Deterministic in `(seed, table name, i)`.
pub fn bernoulli_sample(table: &Table, rate: f64, seed: u64) -> EngineResult<Table> {
    assert!(
        (0.0..=1.0).contains(&rate),
        "sampling rate must be in [0, 1]"
    );
    let threshold = (rate * u64::MAX as f64) as u64;
    let tag = seed ^ fnv1a(table.name());
    let kept: Vec<usize> = (0..table.num_rows())
        .filter(|&row| splitmix64(tag ^ row as u64) <= threshold)
        .collect();

    let schema = Schema::new(table.schema().fields().to_vec())?;
    let mut columns = Vec::with_capacity(schema.len());
    for c in 0..schema.len() {
        let src = table.column(c);
        let mut dst = ColumnData::with_capacity(src.dtype(), kept.len());
        for &row in &kept {
            dst.push(src.get(row));
        }
        columns.push(dst);
    }
    Table::from_columns(table.name(), schema, columns)
}

/// Samples the named tables of a catalog at `rate`; every other table is
/// shared as-is. Returns the sampled catalog and the *effective* rate of
/// each sampled table (its realised |sample| / |table|), whose mean the
/// caller can use for target scaling.
pub fn sample_catalog_tables(
    catalog: &Catalog,
    tables: &[&str],
    rate: f64,
    seed: u64,
) -> EngineResult<(Catalog, f64)> {
    let mut out = Catalog::new();
    let mut realised = Vec::new();
    for name in catalog.table_names() {
        let table = catalog.table(name)?;
        if tables.contains(&name) {
            let sampled = bernoulli_sample(&table, rate, seed)?;
            if table.num_rows() > 0 {
                realised.push(sampled.num_rows() as f64 / table.num_rows() as f64);
            }
            out.register(sampled)?;
        } else {
            out.register((*table).clone())?;
        }
    }
    let eff = if realised.is_empty() {
        rate
    } else {
        realised.iter().sum::<f64>() / realised.len() as f64
    };
    Ok((out, eff))
}

/// Scales a query's aggregate target for execution over a sample:
/// extensive aggregates (COUNT, SUM) scale with the rate; MIN/MAX/AVG and
/// UDAs are left unscaled (they are intensive — the caller owns any
/// aggregate-specific correction).
#[must_use]
pub fn scale_target_for_sample(query: &AcqQuery, rate: f64) -> AcqQuery {
    let mut q = query.clone();
    match q.constraint.spec.func {
        AggFunc::Count | AggFunc::Sum => q.constraint.target *= rate,
        AggFunc::Min | AggFunc::Max | AggFunc::Avg | AggFunc::Uda(_) => {}
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::table::TableBuilder;
    use crate::value::{DataType, Value};
    use acq_query::{AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide};

    fn table(n: usize) -> Table {
        let mut b = TableBuilder::new("t", vec![Field::new("x", DataType::Float)]).unwrap();
        for i in 0..n {
            b.push_row(vec![Value::Float(i as f64)]);
        }
        b.finish().unwrap()
    }

    #[test]
    fn sample_rate_is_respected_and_deterministic() {
        let t = table(10_000);
        let s1 = bernoulli_sample(&t, 0.1, 7).unwrap();
        let s2 = bernoulli_sample(&t, 0.1, 7).unwrap();
        assert_eq!(s1.num_rows(), s2.num_rows());
        let frac = s1.num_rows() as f64 / 10_000.0;
        assert!((frac - 0.1).abs() < 0.02, "realised rate {frac}");
        // Different seeds give different samples.
        let s3 = bernoulli_sample(&t, 0.1, 8).unwrap();
        let differs = s1.num_rows() != s3.num_rows()
            || (0..s1.num_rows()).any(|r| s1.value(r, 0) != s3.value(r, 0));
        assert!(differs);
    }

    #[test]
    fn rate_extremes() {
        let t = table(100);
        assert_eq!(bernoulli_sample(&t, 1.0, 1).unwrap().num_rows(), 100);
        assert_eq!(bernoulli_sample(&t, 0.0, 1).unwrap().num_rows(), 0);
    }

    #[test]
    fn catalog_sampling_touches_only_named_tables() {
        let mut cat = Catalog::new();
        cat.register(table(1_000)).unwrap();
        let mut b = TableBuilder::new("dim", vec![Field::new("k", DataType::Int)]).unwrap();
        for i in 0..50 {
            b.push_row(vec![Value::Int(i)]);
        }
        cat.register(b.finish().unwrap()).unwrap();
        let (sampled, eff) = sample_catalog_tables(&cat, &["t"], 0.2, 3).unwrap();
        assert!(sampled.table("t").unwrap().num_rows() < 400);
        assert_eq!(sampled.table("dim").unwrap().num_rows(), 50);
        assert!(eff > 0.1 && eff < 0.3, "effective rate {eff}");
    }

    #[test]
    fn target_scaling_by_aggregate_kind() {
        let base = AcqQuery::builder()
            .table("t")
            .predicate(Predicate::select(
                ColRef::new("t", "x"),
                Interval::new(0.0, 10.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(
                AggregateSpec::count(),
                CmpOp::Eq,
                1000.0,
            ))
            .build()
            .unwrap();
        assert_eq!(scale_target_for_sample(&base, 0.1).constraint.target, 100.0);

        let mut maxq = base.clone();
        maxq.constraint =
            AggConstraint::new(AggregateSpec::max(ColRef::new("t", "x")), CmpOp::Ge, 500.0);
        assert_eq!(scale_target_for_sample(&maxq, 0.1).constraint.target, 500.0);
    }
}

//! Scalar values and data types.

use std::fmt;
use std::sync::Arc;

/// The engine's column data types. The ACQ model refines numeric predicates
/// (§2.2); strings exist to support categorical predicates scored through an
/// ontology (§7.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string (reference counted; columns share repeated values).
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Int => write!(f, "INT"),
            Self::Float => write!(f, "FLOAT"),
            Self::Str => write!(f, "STR"),
        }
    }
}

/// A scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// String value.
    Str(Arc<str>),
}

impl Value {
    /// The value's data type.
    #[must_use]
    pub fn dtype(&self) -> DataType {
        match self {
            Self::Int(_) => DataType::Int,
            Self::Float(_) => DataType::Float,
            Self::Str(_) => DataType::Str,
        }
    }

    /// Numeric view of the value (`None` for strings).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Int(i) => Some(*i as f64),
            Self::Float(f) => Some(*f),
            Self::Str(_) => None,
        }
    }

    /// String view of the value (`None` for numerics).
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Self::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Self::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Self::Str(Arc::from(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Self::Str(Arc::from(v.as_str()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Int(i) => write!(f, "{i}"),
            Self::Float(x) => write!(f, "{x}"),
            Self::Str(s) => write!(f, "'{s}'"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_views() {
        assert_eq!(Value::from(3i64).as_f64(), Some(3.0));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("a").as_f64(), None);
        assert_eq!(Value::from("a").as_str(), Some("a"));
        assert_eq!(Value::from(1i64).as_str(), None);
    }

    #[test]
    fn dtype_matches_variant() {
        assert_eq!(Value::from(1i64).dtype(), DataType::Int);
        assert_eq!(Value::from(1.0).dtype(), DataType::Float);
        assert_eq!(Value::from("x").dtype(), DataType::Str);
    }

    #[test]
    fn display() {
        assert_eq!(Value::from(1i64).to_string(), "1");
        assert_eq!(Value::from("ab").to_string(), "'ab'");
    }
}

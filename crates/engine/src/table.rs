//! Tables: named collections of equal-length columns.

use std::sync::Arc;

use acq_query::Interval;

use crate::column::ColumnData;
use crate::error::{EngineError, EngineResult};
use crate::schema::{Field, Schema};
use crate::value::Value;
use crate::zone::ColumnZones;

/// An immutable in-memory table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Arc<Schema>,
    columns: Vec<ColumnData>,
    zones: Vec<ColumnZones>,
    rows: usize,
}

impl Table {
    /// Builds a table from pre-filled columns; validates arity, types and
    /// lengths against the schema.
    pub fn from_columns(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<ColumnData>,
    ) -> EngineResult<Self> {
        let name = name.into();
        assert_eq!(
            schema.len(),
            columns.len(),
            "table {name}: {} fields but {} columns",
            schema.len(),
            columns.len()
        );
        let rows = columns.first().map_or(0, ColumnData::len);
        for (f, c) in schema.fields().iter().zip(&columns) {
            if f.dtype != c.dtype() {
                return Err(EngineError::TypeMismatch {
                    col: acq_query::ColRef::new(name.clone(), f.name.clone()),
                    expected: f.dtype,
                    actual: c.dtype(),
                });
            }
            if c.len() != rows {
                return Err(EngineError::RaggedColumns {
                    table: name.clone(),
                    expected: rows,
                    actual: c.len(),
                });
            }
        }
        // Zone maps are built once at load time; tables are immutable so
        // the stats can never go stale.
        let zones = columns.iter().map(ColumnZones::build).collect();
        Ok(Self {
            name,
            schema: Arc::new(schema),
            columns,
            zones,
            rows,
        })
    }

    /// Table name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Column by index.
    #[must_use]
    pub fn column(&self, idx: usize) -> &ColumnData {
        &self.columns[idx]
    }

    /// Column by name.
    #[must_use]
    pub fn column_by_name(&self, name: &str) -> Option<&ColumnData> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Zone map (per-block min/max statistics) for the column at `idx`,
    /// built at load time over [`crate::zone::ZONE_BLOCK`]-row blocks.
    /// Empty for string columns.
    #[must_use]
    pub fn zones(&self, idx: usize) -> &ColumnZones {
        &self.zones[idx]
    }

    /// Value at `(row, col)`.
    #[must_use]
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].get(row)
    }

    /// Numeric domain `[min, max]` of a column, `None` for empty/string
    /// columns. Used by binders to cap the useful refinement of predicates.
    #[must_use]
    pub fn numeric_domain(&self, col: &str) -> Option<Interval> {
        let (lo, hi) = self.column_by_name(col)?.min_max()?;
        Some(Interval::new(lo, hi))
    }
}

/// Row-at-a-time builder for [`Table`].
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    schema: Schema,
    columns: Vec<ColumnData>,
}

impl TableBuilder {
    /// Starts a builder for a table with the given fields.
    pub fn new(name: impl Into<String>, fields: Vec<Field>) -> EngineResult<Self> {
        let schema = Schema::new(fields)?;
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnData::empty(f.dtype))
            .collect();
        Ok(Self {
            name: name.into(),
            schema,
            columns,
        })
    }

    /// Reserves capacity in every column.
    pub fn reserve(&mut self, additional: usize) {
        for (i, f) in self.schema.fields().iter().enumerate() {
            let fresh = ColumnData::with_capacity(f.dtype, self.columns[i].len() + additional);
            // Only reserve on empty columns (cheap path for generators).
            if self.columns[i].is_empty() {
                self.columns[i] = fresh;
            }
        }
    }

    /// Appends a row. Panics if the row arity or types mismatch the schema
    /// (generator bugs should fail fast).
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
    }

    /// Finishes the table.
    pub fn finish(self) -> EngineResult<Table> {
        Table::from_columns(self.name, self.schema, self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn small() -> Table {
        let mut b = TableBuilder::new(
            "t",
            vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Float),
            ],
        )
        .unwrap();
        b.push_row(vec![Value::Int(1), Value::Float(10.0)]);
        b.push_row(vec![Value::Int(2), Value::Float(20.0)]);
        b.push_row(vec![Value::Int(3), Value::Float(-5.0)]);
        b.finish().unwrap()
    }

    #[test]
    fn build_and_access() {
        let t = small();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.value(1, 0), Value::Int(2));
        assert_eq!(t.column_by_name("b").unwrap().get_f64(2), Some(-5.0));
        assert!(t.column_by_name("nope").is_none());
    }

    #[test]
    fn numeric_domain() {
        let t = small();
        let d = t.numeric_domain("b").unwrap();
        assert_eq!((d.lo(), d.hi()), (-5.0, 20.0));
        assert!(t.numeric_domain("missing").is_none());
    }

    #[test]
    fn ragged_columns_rejected() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ])
        .unwrap();
        let r = Table::from_columns(
            "t",
            schema,
            vec![ColumnData::Int(vec![1, 2]), ColumnData::Int(vec![1])],
        );
        assert!(matches!(r.unwrap_err(), EngineError::RaggedColumns { .. }));
    }

    #[test]
    fn type_mismatch_rejected() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]).unwrap();
        let r = Table::from_columns("t", schema, vec![ColumnData::Float(vec![1.0])]);
        assert!(matches!(r.unwrap_err(), EngineError::TypeMismatch { .. }));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut b = TableBuilder::new("t", vec![Field::new("a", DataType::Int)]).unwrap();
        b.push_row(vec![Value::Int(1), Value::Int(2)]);
    }
}

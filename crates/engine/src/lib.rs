//! # acq-engine — in-memory columnar query engine substrate
//!
//! The paper delegates all query execution to an *evaluation layer* (Postgres
//! in their implementation) and stresses that the layer is modular (§3).
//! This crate is that layer: a small, deterministic, in-memory columnar
//! engine providing exactly the operations ACQUIRE and the baseline
//! techniques need —
//!
//! * typed columnar [`Table`]s with a [`Catalog`] and per-column statistics;
//! * materialisation of a query's *base relation*: hash equi-joins for
//!   NOREFINE structural joins and band joins for refinable join predicates
//!   ([`Executor::base_relation`]);
//! * **cell queries** (§5.1): aggregates over the tuples whose per-predicate
//!   refinement scores fall into one grid cell of the refined space
//!   ([`Executor::cell_aggregate`]);
//! * full refined-query aggregates ([`Executor::full_aggregate`]) used by
//!   the baselines, which re-execute whole queries;
//! * mergeable aggregate states ([`AggState`]) implementing the
//!   optimal-substructure "+" of §2.6 (COUNT/SUM/MIN/MAX, AVG as SUM+COUNT,
//!   and registered user-defined aggregates);
//! * the §7.4 bitmap grid index ([`index::BitmapGridIndex`]) that lets an
//!   evaluation layer skip empty cells without executing them;
//! * per-column block min/max **zone maps** built at table load time
//!   ([`zone`]): the cell path classifies each block against the cell's
//!   score band as skip / fully-inside / straddling, so most tuples are
//!   never read ([`ExecStats`] reports `zones_pruned` / `zones_full` /
//!   `zones_scanned`);
//! * [`ExecStats`] work counters (queries issued, tuples scanned, rows
//!   joined) so experiments can report machine-independent costs.
//!
//! Everything is seeded/deterministic and single-threaded by design: the
//! experiments compare *work*, and wall-clock numbers remain meaningful.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod aggregate;
mod catalog;
mod column;
pub mod csv;
mod error;
mod executor;
pub mod index;
mod join;
mod relation;
mod sampling;
mod schema;
mod scoring;
mod stats;
mod table;
mod value;
pub mod zone;

pub use aggregate::{AggState, SumSquares, UdaRegistry, UdaState};
pub use catalog::Catalog;
pub use column::ColumnData;
pub use error::{EngineError, EngineResult};
pub use executor::{CellRange, Executor};
pub use join::{band_join, hash_equi_join};
pub use relation::Relation;
pub use sampling::{bernoulli_sample, sample_catalog_tables, scale_target_for_sample};
pub use schema::{Field, Schema};
pub use scoring::{BoundQuery, ResolvedQuery};
pub use stats::ExecStats;
pub use table::{Table, TableBuilder};
pub use value::{DataType, Value};
pub use zone::{BlockClass, BlockStat, CellScan, ColumnZones, ZONE_BLOCK};

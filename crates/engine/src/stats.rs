//! Machine-independent execution work counters.
//!
//! The paper's experiments report wall-clock time on 2006-era hardware; to
//! make comparisons portable this engine additionally counts the *work* each
//! technique performs. ACQUIRE's central claim — each region of data is
//! executed at most once (§5) — shows up directly in `tuples_scanned`.

use std::fmt;
use std::ops::AddAssign;

/// Counters accumulated by an [`crate::Executor`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Cell queries issued (§5.1: the only sub-query ACQUIRE ever executes).
    pub cell_queries: u64,
    /// Full refined-query executions (baselines re-execute whole queries).
    pub full_queries: u64,
    /// Tuples examined across all scans and joins.
    pub tuples_scanned: u64,
    /// Output rows produced by join operators.
    pub rows_joined: u64,
    /// Probes into a bitmap grid index.
    pub index_probes: u64,
    /// Cell queries skipped because the index proved them empty (§7.4).
    pub cells_skipped: u64,
    /// Zone-map blocks skipped outright (no row could fall in the cell).
    pub zones_pruned: u64,
    /// Zone-map blocks aggregated wholesale without predicate re-evaluation.
    pub zones_full: u64,
    /// Zone-map blocks that straddled the cell band and were scanned.
    pub zones_scanned: u64,
}

impl ExecStats {
    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Total queries issued against the evaluation layer.
    #[must_use]
    pub fn total_queries(&self) -> u64 {
        self.cell_queries + self.full_queries
    }

    /// Every counter as a stable `(name, value)` list — the bridge used by
    /// observability snapshots and the CLI's JSON output, so neither needs
    /// to hard-code the field set.
    #[must_use]
    pub fn fields(&self) -> [(&'static str, u64); 9] {
        [
            ("cell_queries", self.cell_queries),
            ("full_queries", self.full_queries),
            ("tuples_scanned", self.tuples_scanned),
            ("rows_joined", self.rows_joined),
            ("index_probes", self.index_probes),
            ("cells_skipped", self.cells_skipped),
            ("zones_pruned", self.zones_pruned),
            ("zones_full", self.zones_full),
            ("zones_scanned", self.zones_scanned),
        ]
    }
}

impl AddAssign for ExecStats {
    fn add_assign(&mut self, rhs: Self) {
        self.cell_queries += rhs.cell_queries;
        self.full_queries += rhs.full_queries;
        self.tuples_scanned += rhs.tuples_scanned;
        self.rows_joined += rhs.rows_joined;
        self.index_probes += rhs.index_probes;
        self.cells_skipped += rhs.cells_skipped;
        self.zones_pruned += rhs.zones_pruned;
        self.zones_full += rhs.zones_full;
        self.zones_scanned += rhs.zones_scanned;
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell_queries={} full_queries={} tuples_scanned={} rows_joined={} \
             index_probes={} cells_skipped={} zones_pruned={} zones_full={} \
             zones_scanned={}",
            self.cell_queries,
            self.full_queries,
            self.tuples_scanned,
            self.rows_joined,
            self.index_probes,
            self.cells_skipped,
            self.zones_pruned,
            self.zones_full,
            self.zones_scanned
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_and_reset() {
        let mut a = ExecStats {
            cell_queries: 1,
            tuples_scanned: 10,
            ..Default::default()
        };
        let b = ExecStats {
            cell_queries: 2,
            full_queries: 3,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.cell_queries, 3);
        assert_eq!(a.full_queries, 3);
        assert_eq!(a.total_queries(), 6);
        a.reset();
        assert_eq!(a, ExecStats::default());
    }
}

//! The §7.4 bitmap grid index.
//!
//! *"We divide each attribute dimension into equi-width parts and create a
//! multi-dimensional grid on the table. … each cell is assigned a
//! corresponding bit, which is set to 1 if the cell contains some tuple and
//! 0 otherwise. Once constructed, this simple index structure can be used in
//! the Explore phase to determine if a given cell query is empty without
//! actually executing the query."*
//!
//! Beyond the paper's bit-per-cell, this implementation also keeps per-cell
//! tuple counts and a CSR row-id layout so that non-empty box queries can be
//! answered by scanning only the rows of overlapping grid cells.

use acq_query::Interval;

use crate::table::Table;

/// One indexed dimension: an equi-width binning of a numeric column.
#[derive(Debug, Clone)]
pub struct GridDim {
    /// Column index in the table.
    pub col: usize,
    /// Attribute domain covered by the bins.
    pub domain: Interval,
    /// Number of equi-width bins.
    pub bins: usize,
}

impl GridDim {
    #[inline]
    fn bin_of(&self, v: f64) -> usize {
        let w = self.domain.width();
        if w <= 0.0 {
            return 0;
        }
        let frac = (v - self.domain.lo()) / w;
        // Clamp out-of-domain values into the edge bins so every row lands
        // somewhere (domains come from table statistics, so this only
        // triggers on floating-point edge effects).
        ((frac * self.bins as f64) as isize).clamp(0, self.bins as isize - 1) as usize
    }

    /// The bins overlapping `[lo, hi]`, as an inclusive index range.
    #[inline]
    fn bin_range(&self, lo: f64, hi: f64) -> (usize, usize) {
        (self.bin_of(lo), self.bin_of(hi))
    }
}

/// A multi-dimensional equi-width grid over numeric columns of one table,
/// with an occupancy bitmap, per-cell counts, and CSR row ids.
#[derive(Debug, Clone)]
pub struct BitmapGridIndex {
    dims: Vec<GridDim>,
    /// Bit per cell: 1 when the cell holds at least one row.
    occupied: Vec<u64>,
    /// Rows per cell.
    counts: Vec<u32>,
    /// CSR: `row_ids[cell_start[c]..cell_start[c+1]]` are the rows in cell c.
    cell_start: Vec<u32>,
    row_ids: Vec<u32>,
    total_cells: usize,
}

impl BitmapGridIndex {
    /// Builds the index over the given numeric columns of `table`, with
    /// `bins` equi-width bins per dimension. String columns and empty tables
    /// produce an index with zero dimensions that reports every region
    /// occupied (callers fall back to scans).
    #[must_use]
    pub fn build(table: &Table, cols: &[usize], bins: usize) -> Self {
        assert!(bins >= 1, "at least one bin per dimension");
        let mut dims = Vec::with_capacity(cols.len());
        for &col in cols {
            let name = &table.schema().fields()[col].name;
            let Some(domain) = table.numeric_domain(name) else {
                return Self::degenerate();
            };
            dims.push(GridDim { col, domain, bins });
        }
        if dims.is_empty() || table.num_rows() == 0 {
            return Self::degenerate();
        }
        let total_cells = bins.pow(dims.len() as u32);

        // First pass: cell of each row + counts.
        let n = table.num_rows();
        let mut cell_of = vec![0u32; n];
        let mut counts = vec![0u32; total_cells];
        for (row, slot) in cell_of.iter_mut().enumerate() {
            let mut cell = 0usize;
            for d in &dims {
                let v = table.column(d.col).get_f64(row).unwrap_or(d.domain.lo());
                cell = cell * d.bins + d.bin_of(v);
            }
            *slot = cell as u32;
            counts[cell] += 1;
        }

        // CSR layout.
        let mut cell_start = vec![0u32; total_cells + 1];
        for c in 0..total_cells {
            cell_start[c + 1] = cell_start[c] + counts[c];
        }
        let mut cursor = cell_start[..total_cells].to_vec();
        let mut row_ids = vec![0u32; n];
        for (row, &cell) in cell_of.iter().enumerate() {
            let c = cell as usize;
            row_ids[cursor[c] as usize] = row as u32;
            cursor[c] += 1;
        }

        let mut occupied = vec![0u64; total_cells.div_ceil(64)];
        for (c, &cnt) in counts.iter().enumerate() {
            if cnt > 0 {
                occupied[c / 64] |= 1u64 << (c % 64);
            }
        }

        Self {
            dims,
            occupied,
            counts,
            cell_start,
            row_ids,
            total_cells,
        }
    }

    fn degenerate() -> Self {
        Self {
            dims: Vec::new(),
            occupied: Vec::new(),
            counts: Vec::new(),
            cell_start: vec![0],
            row_ids: Vec::new(),
            total_cells: 0,
        }
    }

    /// Whether the index carries usable dimensions.
    #[must_use]
    pub fn is_usable(&self) -> bool {
        !self.dims.is_empty()
    }

    /// Number of grid cells.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.total_cells
    }

    /// Whether grid cell `c` holds any row.
    #[inline]
    #[must_use]
    pub fn cell_occupied(&self, c: usize) -> bool {
        (self.occupied[c / 64] >> (c % 64)) & 1 == 1
    }

    /// Rows in grid cell `c`.
    #[must_use]
    pub fn rows_in_cell(&self, c: usize) -> &[u32] {
        let (s, e) = (self.cell_start[c] as usize, self.cell_start[c + 1] as usize);
        &self.row_ids[s..e]
    }

    fn for_each_overlapping_cell(
        &self,
        boxes: &[(f64, f64)],
        mut visit: impl FnMut(usize) -> bool,
    ) {
        debug_assert_eq!(boxes.len(), self.dims.len());
        let ranges: Vec<(usize, usize)> = self
            .dims
            .iter()
            .zip(boxes)
            .map(|(d, &(lo, hi))| d.bin_range(lo, hi))
            .collect();
        // Odometer over the per-dimension bin ranges.
        let mut idx: Vec<usize> = ranges.iter().map(|r| r.0).collect();
        loop {
            let mut cell = 0usize;
            for (d, &i) in self.dims.iter().zip(&idx) {
                cell = cell * d.bins + i;
            }
            if !visit(cell) {
                return;
            }
            // Increment the odometer.
            let mut k = idx.len();
            loop {
                if k == 0 {
                    return;
                }
                k -= 1;
                if idx[k] < ranges[k].1 {
                    idx[k] += 1;
                    for j in (k + 1)..idx.len() {
                        idx[j] = ranges[j].0;
                    }
                    break;
                }
            }
        }
    }

    /// Whether any tuple may lie inside the attribute box (one `[lo, hi]`
    /// range per indexed dimension). `false` means the corresponding cell
    /// query is provably empty and need not be executed (§7.4).
    ///
    /// `probes` is incremented once per call.
    #[must_use]
    pub fn box_maybe_occupied(&self, boxes: &[(f64, f64)], probes: &mut u64) -> bool {
        *probes += 1;
        if !self.is_usable() {
            return true;
        }
        if boxes.iter().any(|&(lo, hi)| lo > hi) {
            return false;
        }
        let mut found = false;
        self.for_each_overlapping_cell(boxes, |cell| {
            if self.cell_occupied(cell) {
                found = true;
                false // stop
            } else {
                true
            }
        });
        found
    }

    /// Upper bound on the number of tuples in the attribute box (sum of the
    /// counts of every overlapping cell).
    #[must_use]
    pub fn box_count_upper_bound(&self, boxes: &[(f64, f64)]) -> u64 {
        if !self.is_usable() {
            return u64::MAX;
        }
        if boxes.iter().any(|&(lo, hi)| lo > hi) {
            return 0;
        }
        let mut total = 0u64;
        self.for_each_overlapping_cell(boxes, |cell| {
            total += u64::from(self.counts[cell]);
            true
        });
        total
    }

    /// Visits the row ids of every cell overlapping the attribute box.
    /// Callers must re-check the exact predicate per row (grid cells are
    /// coarser than the box).
    pub fn visit_box_candidates(&self, boxes: &[(f64, f64)], mut visit: impl FnMut(u32)) {
        if !self.is_usable() {
            return;
        }
        if boxes.iter().any(|&(lo, hi)| lo > hi) {
            return;
        }
        self.for_each_overlapping_cell(boxes, |cell| {
            for &r in self.rows_in_cell(cell) {
                visit(r);
            }
            true
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::table::TableBuilder;
    use crate::value::{DataType, Value};

    fn table_2d() -> Table {
        let mut b = TableBuilder::new(
            "t",
            vec![
                Field::new("x", DataType::Float),
                Field::new("y", DataType::Float),
            ],
        )
        .unwrap();
        // Points on a diagonal: (0,0), (10,10), ..., (90,90)
        for i in 0..10 {
            b.push_row(vec![
                Value::Float(i as f64 * 10.0),
                Value::Float(i as f64 * 10.0),
            ]);
        }
        b.finish().unwrap()
    }

    #[test]
    fn build_and_cell_counts() {
        let t = table_2d();
        let idx = BitmapGridIndex::build(&t, &[0, 1], 10);
        assert!(idx.is_usable());
        assert_eq!(idx.num_cells(), 100);
        // All 10 points are on the diagonal; exactly 10 occupied cells.
        let occupied = (0..100).filter(|&c| idx.cell_occupied(c)).count();
        assert_eq!(occupied, 10);
        // Every row is in exactly one cell.
        let total: usize = (0..100).map(|c| idx.rows_in_cell(c).len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn empty_region_detected() {
        let t = table_2d();
        let idx = BitmapGridIndex::build(&t, &[0, 1], 10);
        let mut probes = 0;
        // Off-diagonal box: x in [0,9], y in [60, 89] has no points.
        assert!(!idx.box_maybe_occupied(&[(0.0, 9.0), (60.0, 89.0)], &mut probes));
        // Diagonal box is occupied.
        assert!(idx.box_maybe_occupied(&[(0.0, 9.0), (0.0, 9.0)], &mut probes));
        assert_eq!(probes, 2);
    }

    #[test]
    fn inverted_boxes_are_empty() {
        let t = table_2d();
        let idx = BitmapGridIndex::build(&t, &[0, 1], 10);
        let mut probes = 0;
        assert!(!idx.box_maybe_occupied(&[(5.0, 1.0), (0.0, 90.0)], &mut probes));
        assert_eq!(idx.box_count_upper_bound(&[(5.0, 1.0), (0.0, 90.0)]), 0);
    }

    #[test]
    fn candidates_superset_of_exact_matches() {
        let t = table_2d();
        let idx = BitmapGridIndex::build(&t, &[0, 1], 10);
        let mut cands = Vec::new();
        idx.visit_box_candidates(&[(10.0, 35.0), (0.0, 90.0)], |r| cands.push(r));
        cands.sort_unstable();
        // Exact matches are rows 1..=3 (x = 10, 20, 30); candidates may
        // include rows from partially overlapping cells.
        for exact in [1u32, 2, 3] {
            assert!(cands.contains(&exact));
        }
        // Upper bound >= exact count.
        assert!(idx.box_count_upper_bound(&[(10.0, 35.0), (0.0, 90.0)]) >= 3);
    }

    #[test]
    fn degenerate_on_string_column() {
        let mut b = TableBuilder::new("s", vec![Field::new("c", DataType::Str)]).unwrap();
        b.push_row(vec![Value::from("a")]);
        let t = b.finish().unwrap();
        let idx = BitmapGridIndex::build(&t, &[0], 8);
        assert!(!idx.is_usable());
        let mut probes = 0;
        // Degenerate index can never prove emptiness.
        assert!(idx.box_maybe_occupied(&[(0.0, 1.0)], &mut probes));
    }

    #[test]
    fn single_bin_grid() {
        let t = table_2d();
        let idx = BitmapGridIndex::build(&t, &[0], 1);
        assert_eq!(idx.num_cells(), 1);
        assert_eq!(idx.rows_in_cell(0).len(), 10);
    }

    #[test]
    fn point_domain_column() {
        let mut b = TableBuilder::new("p", vec![Field::new("x", DataType::Float)]).unwrap();
        for _ in 0..5 {
            b.push_row(vec![Value::Float(7.0)]);
        }
        let t = b.finish().unwrap();
        let idx = BitmapGridIndex::build(&t, &[0], 4);
        // All rows collapse into bin 0 of a zero-width domain.
        assert_eq!(idx.rows_in_cell(0).len(), 5);
        let mut probes = 0;
        assert!(idx.box_maybe_occupied(&[(7.0, 7.0)], &mut probes));
    }
}

//! Index structures for the evaluation layer.

mod bitmap_grid;

pub use bitmap_grid::{BitmapGridIndex, GridDim};

//! Table schemas.

use std::fmt;

use crate::error::{EngineError, EngineResult};
use crate::value::DataType;

/// A named, typed column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (unique within the table).
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Creates a field.
    #[must_use]
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Self {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered set of uniquely named fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema, rejecting duplicate column names.
    pub fn new(fields: Vec<Field>) -> EngineResult<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(EngineError::DuplicateName(f.name.clone()));
            }
        }
        Ok(Self { fields })
    }

    /// The fields in declaration order.
    #[must_use]
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a column by name.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field by name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self
            .fields
            .iter()
            .map(|x| format!("{} {}", x.name, x.dtype))
            .collect();
        write!(f, "({})", cols.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let s = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Float),
        ])
        .unwrap();
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("c"), None);
        assert_eq!(s.field("a").unwrap().dtype, DataType::Int);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Float),
        ]);
        assert_eq!(r.unwrap_err(), EngineError::DuplicateName("a".into()));
    }
}

//! Materialised relations: a base table scan or the product of joins.

use std::sync::Arc;

use crate::table::Table;

/// A materialised relation over one or more base tables.
///
/// Each logical row is a tuple of row-ids, one per base table, stored
/// flattened with stride `tables.len()`. Single-table relations use an
/// implicit identity mapping to avoid materialising row-id vectors for
/// full scans.
#[derive(Debug, Clone)]
pub struct Relation {
    tables: Vec<Arc<Table>>,
    /// Flattened row-id tuples; empty when `identity`.
    row_ids: Vec<u32>,
    len: usize,
    identity: bool,
}

impl Relation {
    /// A full scan of one table (identity row mapping).
    #[must_use]
    pub fn table(table: Arc<Table>) -> Self {
        let len = table.num_rows();
        Self {
            tables: vec![table],
            row_ids: Vec::new(),
            len,
            identity: true,
        }
    }

    /// A relation over one table restricted to the given rows.
    #[must_use]
    pub fn table_subset(table: Arc<Table>, rows: Vec<u32>) -> Self {
        let len = rows.len();
        Self {
            tables: vec![table],
            row_ids: rows,
            len,
            identity: false,
        }
    }

    /// A relation over several tables with explicit flattened row-id tuples
    /// (`row_ids.len() == len * tables.len()`).
    #[must_use]
    pub fn from_rows(tables: Vec<Arc<Table>>, row_ids: Vec<u32>) -> Self {
        let stride = tables.len().max(1);
        assert_eq!(
            row_ids.len() % stride,
            0,
            "row ids must be a multiple of the stride"
        );
        let len = row_ids.len() / stride;
        Self {
            tables,
            row_ids,
            len,
            identity: false,
        }
    }

    /// The base tables, in position order.
    #[must_use]
    pub fn tables(&self) -> &[Arc<Table>] {
        &self.tables
    }

    /// Number of logical rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the relation has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether logical rows map 1:1 onto base-table rows (a full scan);
    /// the kernel path walks zone blocks directly in that case.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// Base-table row ids of a non-identity single-table relation, in
    /// logical-row order (`None` otherwise). Lets the kernel path group
    /// consecutive rows by zone block without per-row stride math.
    #[must_use]
    pub(crate) fn single_table_rows(&self) -> Option<&[u32]> {
        if self.tables.len() == 1 && !self.identity {
            Some(&self.row_ids)
        } else {
            None
        }
    }

    /// The base-table row id backing logical `row` for table `table_idx`.
    #[inline]
    #[must_use]
    pub fn base_row(&self, row: usize, table_idx: usize) -> u32 {
        debug_assert!(row < self.len);
        debug_assert!(table_idx < self.tables.len());
        if self.identity {
            row as u32
        } else {
            self.row_ids[row * self.tables.len() + table_idx]
        }
    }

    /// Numeric value of column `col_idx` of table `table_idx` at logical
    /// `row` (`None` for string columns).
    #[inline]
    #[must_use]
    pub fn get_f64(&self, row: usize, table_idx: usize, col_idx: usize) -> Option<f64> {
        let base = self.base_row(row, table_idx) as usize;
        self.tables[table_idx].column(col_idx).get_f64(base)
    }

    /// String value of column `col_idx` of table `table_idx` at logical
    /// `row` (`None` for numeric columns).
    #[inline]
    #[must_use]
    pub fn get_str(&self, row: usize, table_idx: usize, col_idx: usize) -> Option<&str> {
        let base = self.base_row(row, table_idx) as usize;
        self.tables[table_idx].column(col_idx).get_str(base)
    }

    /// Keeps only the logical rows for which `keep` returns true.
    #[must_use]
    pub fn filter(&self, mut keep: impl FnMut(usize) -> bool) -> Relation {
        let stride = self.tables.len();
        let mut row_ids = Vec::new();
        for row in 0..self.len {
            if keep(row) {
                for t in 0..stride {
                    row_ids.push(self.base_row(row, t));
                }
            }
        }
        Relation::from_rows(self.tables.clone(), row_ids)
    }

    /// Concatenates the columns of two relations row-wise given pairs of
    /// matching logical rows `(left_row, right_row)`.
    #[must_use]
    pub fn zip_join(left: &Relation, right: &Relation, pairs: &[(u32, u32)]) -> Relation {
        let mut tables = Vec::with_capacity(left.tables.len() + right.tables.len());
        tables.extend(left.tables.iter().cloned());
        tables.extend(right.tables.iter().cloned());
        let stride = tables.len();
        let mut row_ids = Vec::with_capacity(pairs.len() * stride);
        for &(l, r) in pairs {
            for t in 0..left.tables.len() {
                row_ids.push(left.base_row(l as usize, t));
            }
            for t in 0..right.tables.len() {
                row_ids.push(right.base_row(r as usize, t));
            }
        }
        Relation::from_rows(tables, row_ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::table::TableBuilder;
    use crate::value::{DataType, Value};

    fn t(name: &str, vals: &[i64]) -> Arc<Table> {
        let mut b = TableBuilder::new(name, vec![Field::new("x", DataType::Int)]).unwrap();
        for &v in vals {
            b.push_row(vec![Value::Int(v)]);
        }
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn identity_scan() {
        let rel = Relation::table(t("a", &[10, 20, 30]));
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.base_row(2, 0), 2);
        assert_eq!(rel.get_f64(1, 0, 0), Some(20.0));
    }

    #[test]
    fn subset() {
        let rel = Relation::table_subset(t("a", &[10, 20, 30]), vec![2, 0]);
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.get_f64(0, 0, 0), Some(30.0));
        assert_eq!(rel.get_f64(1, 0, 0), Some(10.0));
    }

    #[test]
    fn filter_materialises() {
        let rel = Relation::table(t("a", &[1, 2, 3, 4]));
        let f = rel.filter(|row| row % 2 == 0);
        assert_eq!(f.len(), 2);
        assert_eq!(f.get_f64(1, 0, 0), Some(3.0));
    }

    #[test]
    fn zip_join_concatenates_tables() {
        let l = Relation::table(t("a", &[1, 2]));
        let r = Relation::table(t("b", &[10, 20, 30]));
        let j = Relation::zip_join(&l, &r, &[(0, 2), (1, 0)]);
        assert_eq!(j.len(), 2);
        assert_eq!(j.tables().len(), 2);
        assert_eq!(j.get_f64(0, 0, 0), Some(1.0));
        assert_eq!(j.get_f64(0, 1, 0), Some(30.0));
        assert_eq!(j.get_f64(1, 1, 0), Some(10.0));
    }

    #[test]
    #[should_panic(expected = "multiple of the stride")]
    fn from_rows_validates_stride() {
        let a = t("a", &[1]);
        let b = t("b", &[1]);
        let _ = Relation::from_rows(vec![a, b], vec![0, 0, 0]);
    }
}

//! Per-tuple refinement scoring.
//!
//! §5.1 of the paper: a cell query selects the tuples whose per-predicate
//! refinement scores fall into one grid cell of the refined space. This
//! module resolves an [`AcqQuery`]'s column references against a catalog
//! once ([`ResolvedQuery`]) and binds them to a concrete materialised
//! [`Relation`] ([`BoundQuery`]) so that scoring a tuple is a handful of
//! array reads.

use acq_query::{AcqQuery, PredFunction};

use crate::catalog::Catalog;
use crate::error::{EngineError, EngineResult};
use crate::relation::Relation;

/// A column resolved to its table name and column index.
pub(crate) type ResolvedCol = (String, usize);

/// One side of a resolved join predicate: table, column, scale, offset.
pub(crate) type ResolvedJoinSide<'a> = (&'a str, usize, f64, f64);

/// Where a predicate's inputs live, resolved to table names + column ids.
#[derive(Debug, Clone)]
enum Source {
    /// Numeric selection predicate.
    Attr { table: String, col: usize },
    /// Join predicate `|l - r|` with linear scaling on both sides.
    Join {
        ltable: String,
        lcol: usize,
        lscale: f64,
        loff: f64,
        rtable: String,
        rcol: usize,
        rscale: f64,
        roff: f64,
    },
    /// Categorical predicate over a string column.
    Cat { table: String, col: usize },
}

/// An [`AcqQuery`] with every column reference resolved against a catalog.
#[derive(Debug, Clone)]
pub struct ResolvedQuery {
    /// The underlying logical query.
    pub query: AcqQuery,
    sources: Vec<Source>,
    flex: Vec<usize>,
    /// Aggregated column, as (table name, column index); `None` for COUNT.
    agg: Option<(String, usize)>,
    /// Structural joins resolved to (table, col) name/index pairs.
    structural: Vec<(ResolvedCol, ResolvedCol)>,
}

impl ResolvedQuery {
    /// Resolves `query` against `catalog`, verifying every referenced table
    /// and column exists with a usable type.
    pub fn resolve(catalog: &Catalog, query: &AcqQuery) -> EngineResult<Self> {
        let col_of = |cr: &acq_query::ColRef| -> EngineResult<(String, usize)> {
            let table_name = cr
                .table
                .clone()
                .ok_or_else(|| EngineError::UnknownColumn(cr.clone()))?;
            let table = catalog.table(&table_name)?;
            let idx = table
                .schema()
                .index_of(&cr.column)
                .ok_or_else(|| EngineError::UnknownColumn(cr.clone()))?;
            Ok((table_name, idx))
        };

        let mut sources = Vec::with_capacity(query.predicates.len());
        for p in &query.predicates {
            sources.push(match &p.func {
                PredFunction::Attr(c) => {
                    let (table, col) = col_of(c)?;
                    Source::Attr { table, col }
                }
                PredFunction::JoinDelta { left, right } => {
                    let (ltable, lcol) = col_of(&left.col)?;
                    let (rtable, rcol) = col_of(&right.col)?;
                    Source::Join {
                        ltable,
                        lcol,
                        lscale: left.scale,
                        loff: left.offset,
                        rtable,
                        rcol,
                        rscale: right.scale,
                        roff: right.offset,
                    }
                }
                PredFunction::Categorical { col, .. } => {
                    let (table, c) = col_of(col)?;
                    Source::Cat { table, col: c }
                }
            });
        }

        let agg = match &query.constraint.spec.col {
            Some(c) => Some(col_of(c)?),
            None => None,
        };

        let mut structural = Vec::with_capacity(query.structural_joins.len());
        for j in &query.structural_joins {
            structural.push((col_of(&j.left)?, col_of(&j.right)?));
        }

        Ok(Self {
            query: query.clone(),
            sources,
            flex: query.flexible(),
            agg,
            structural,
        })
    }

    /// Indices of the flexible predicates (refined-space dimensions).
    #[must_use]
    pub fn flex(&self) -> &[usize] {
        &self.flex
    }

    /// Number of refinement dimensions.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.flex.len()
    }

    /// Structural joins as resolved (table, column) pairs.
    pub(crate) fn structural_joins(&self) -> &[(ResolvedCol, ResolvedCol)] {
        &self.structural
    }

    pub(crate) fn source_tables(&self, idx: usize) -> Vec<&str> {
        match &self.sources[idx] {
            Source::Attr { table, .. } | Source::Cat { table, .. } => vec![table],
            Source::Join { ltable, rtable, .. } => vec![ltable, rtable],
        }
    }

    pub(crate) fn join_parts(
        &self,
        idx: usize,
    ) -> Option<(ResolvedJoinSide<'_>, ResolvedJoinSide<'_>)> {
        match &self.sources[idx] {
            Source::Join {
                ltable,
                lcol,
                lscale,
                loff,
                rtable,
                rcol,
                rscale,
                roff,
            } => Some((
                (ltable, *lcol, *lscale, *loff),
                (rtable, *rcol, *rscale, *roff),
            )),
            _ => None,
        }
    }

    /// Scores a single-table (Attr or Categorical) predicate directly
    /// against one base-table row, for per-table prefilters that run before
    /// any join. Panics on join predicates, which are never table-local.
    pub(crate) fn score_local(&self, idx: usize, table: &crate::table::Table, row: usize) -> f64 {
        let pred = &self.query.predicates[idx];
        match &self.sources[idx] {
            Source::Attr { col, .. } => table
                .column(*col)
                .get_f64(row)
                .map_or(f64::INFINITY, |v| pred.score_value(v)),
            Source::Cat { col, .. } => table
                .column(*col)
                .get_str(row)
                .map_or(f64::INFINITY, |s| pred.score_category(s)),
            Source::Join { .. } => unreachable!("join predicates are not table-local"),
        }
    }

    /// `Some` when `rel` is exactly one base table and every predicate is
    /// an `Attr` selection on it — the shape the zone-pruned cell kernels
    /// handle. Joins, categorical predicates, or a foreign aggregate column
    /// opt out (the scalar path remains correct for them).
    pub(crate) fn single_table_plan(&self, rel: &Relation) -> Option<SingleTablePlan> {
        if rel.tables().len() != 1 {
            return None;
        }
        let tname = rel.tables()[0].name();
        let mut cols = Vec::with_capacity(self.sources.len());
        for s in &self.sources {
            match s {
                Source::Attr { table, col } if table == tname => cols.push(*col),
                _ => return None,
            }
        }
        let agg = match &self.agg {
            Some((table, col)) => {
                if table != tname {
                    return None;
                }
                Some(*col)
            }
            None => None,
        };
        Some(SingleTablePlan { cols, agg })
    }

    /// Binds the resolved query to a concrete relation (mapping table names
    /// to the relation's table positions).
    pub fn bind<'a>(&'a self, rel: &Relation) -> EngineResult<BoundQuery<'a>> {
        let pos_of = |name: &str| -> EngineResult<usize> {
            rel.tables()
                .iter()
                .position(|t| t.name() == name)
                .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
        };
        let mut srcs = Vec::with_capacity(self.sources.len());
        for s in &self.sources {
            srcs.push(match s {
                Source::Attr { table, col } => BSource::Attr {
                    t: pos_of(table)?,
                    c: *col,
                },
                Source::Cat { table, col } => BSource::Cat {
                    t: pos_of(table)?,
                    c: *col,
                },
                Source::Join {
                    ltable,
                    lcol,
                    lscale,
                    loff,
                    rtable,
                    rcol,
                    rscale,
                    roff,
                } => BSource::Join {
                    lt: pos_of(ltable)?,
                    lc: *lcol,
                    lscale: *lscale,
                    loff: *loff,
                    rt: pos_of(rtable)?,
                    rc: *rcol,
                    rscale: *rscale,
                    roff: *roff,
                },
            });
        }
        let agg = match &self.agg {
            Some((table, col)) => Some((pos_of(table)?, *col)),
            None => None,
        };
        Ok(BoundQuery {
            rq: self,
            srcs,
            agg,
        })
    }
}

/// Column layout of a query whose predicates all live on one base table;
/// feeds the zone-pruned cell kernels in the executor.
#[derive(Debug, Clone)]
pub(crate) struct SingleTablePlan {
    /// Base-table column index of each predicate's attribute, in predicate
    /// order.
    pub cols: Vec<usize>,
    /// Aggregate column index (`None` for COUNT).
    pub agg: Option<usize>,
}

#[derive(Debug, Clone, Copy)]
enum BSource {
    Attr {
        t: usize,
        c: usize,
    },
    Cat {
        t: usize,
        c: usize,
    },
    Join {
        lt: usize,
        lc: usize,
        lscale: f64,
        loff: f64,
        rt: usize,
        rc: usize,
        rscale: f64,
        roff: f64,
    },
}

/// A [`ResolvedQuery`] bound to one relation's table layout; the hot scoring
/// path of the engine.
#[derive(Debug)]
pub struct BoundQuery<'a> {
    rq: &'a ResolvedQuery,
    srcs: Vec<BSource>,
    agg: Option<(usize, usize)>,
}

impl BoundQuery<'_> {
    /// Computes the tuple's refinement scores over the flexible predicates
    /// into `out` (length = dims). Returns `false` when the tuple can never
    /// be admitted (a NOREFINE violation, a fixed-side violation, or a
    /// refinement beyond a predicate's cap).
    #[inline]
    pub fn score_into(&self, rel: &Relation, row: usize, out: &mut [f64]) -> bool {
        debug_assert_eq!(out.len(), self.rq.flex.len());
        let mut k = 0usize;
        for (i, pred) in self.rq.query.predicates.iter().enumerate() {
            let score = match self.srcs[i] {
                BSource::Attr { t, c } => match rel.get_f64(row, t, c) {
                    Some(v) => pred.score_value(v),
                    None => f64::INFINITY,
                },
                BSource::Join {
                    lt,
                    lc,
                    lscale,
                    loff,
                    rt,
                    rc,
                    rscale,
                    roff,
                } => match (rel.get_f64(row, lt, lc), rel.get_f64(row, rt, rc)) {
                    (Some(l), Some(r)) => {
                        pred.score_value(((lscale * l + loff) - (rscale * r + roff)).abs())
                    }
                    _ => f64::INFINITY,
                },
                BSource::Cat { t, c } => match rel.get_str(row, t, c) {
                    Some(s) => pred.score_category(s),
                    None => f64::INFINITY,
                },
            };
            if score.is_infinite() {
                return false;
            }
            if pred.refinable {
                out[k] = score;
                k += 1;
            }
            // Non-refinable predicates score either 0 or +inf, so a finite
            // score needs no further checks.
        }
        debug_assert_eq!(k, out.len());
        true
    }

    /// The aggregated column's value for the tuple (0 for COUNT). String
    /// aggregate columns are rejected at bind time by type checks upstream;
    /// if one slips through, the tuple contributes 0.
    #[inline]
    #[must_use]
    pub fn agg_value(&self, rel: &Relation, row: usize) -> f64 {
        match self.agg {
            Some((t, c)) => rel.get_f64(row, t, c).unwrap_or(0.0),
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::table::TableBuilder;
    use crate::value::{DataType, Value};
    use acq_query::{AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide};

    fn catalog() -> Catalog {
        let mut b = TableBuilder::new(
            "t",
            vec![
                Field::new("x", DataType::Float),
                Field::new("y", DataType::Float),
            ],
        )
        .unwrap();
        for (x, y) in [(1.0, 10.0), (2.0, 60.0), (3.0, 200.0)] {
            b.push_row(vec![Value::Float(x), Value::Float(y)]);
        }
        let mut c = Catalog::new();
        c.register(b.finish().unwrap()).unwrap();
        c
    }

    fn query() -> AcqQuery {
        AcqQuery::builder()
            .table("t")
            .predicate(Predicate::select(
                ColRef::new("t", "y"),
                Interval::new(0.0, 50.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 2.0))
            .build()
            .unwrap()
    }

    #[test]
    fn resolve_and_score() {
        let cat = catalog();
        let rq = ResolvedQuery::resolve(&cat, &query()).unwrap();
        assert_eq!(rq.dims(), 1);
        let rel = Relation::table(cat.table("t").unwrap());
        let bound = rq.bind(&rel).unwrap();
        let mut s = [0.0];
        assert!(bound.score_into(&rel, 0, &mut s));
        assert_eq!(s[0], 0.0);
        assert!(bound.score_into(&rel, 1, &mut s));
        assert!((s[0] - 20.0).abs() < 1e-12); // y=60 on [0,50]
        assert!(bound.score_into(&rel, 2, &mut s));
        assert!((s[0] - 300.0).abs() < 1e-12);
    }

    #[test]
    fn norefine_violation_excludes() {
        let cat = catalog();
        let mut q = query();
        q.predicates.push(
            Predicate::select(
                ColRef::new("t", "x"),
                Interval::new(0.0, 2.0),
                RefineSide::Upper,
            )
            .no_refine(),
        );
        let rq = ResolvedQuery::resolve(&cat, &q).unwrap();
        let rel = Relation::table(cat.table("t").unwrap());
        let bound = rq.bind(&rel).unwrap();
        let mut s = [0.0];
        assert!(bound.score_into(&rel, 1, &mut s)); // x=2 ok
        assert!(!bound.score_into(&rel, 2, &mut s)); // x=3 violates NOREFINE
    }

    #[test]
    fn resolve_rejects_unknown_columns() {
        let cat = catalog();
        let mut q = query();
        q.predicates[0] = Predicate::select(
            ColRef::new("t", "nope"),
            Interval::new(0.0, 1.0),
            RefineSide::Upper,
        );
        assert!(matches!(
            ResolvedQuery::resolve(&cat, &q).unwrap_err(),
            EngineError::UnknownColumn(_)
        ));
    }

    #[test]
    fn agg_value_reads_column() {
        let cat = catalog();
        let mut q = query();
        q.constraint =
            AggConstraint::new(AggregateSpec::sum(ColRef::new("t", "x")), CmpOp::Ge, 1.0);
        let rq = ResolvedQuery::resolve(&cat, &q).unwrap();
        let rel = Relation::table(cat.table("t").unwrap());
        let bound = rq.bind(&rel).unwrap();
        assert_eq!(bound.agg_value(&rel, 2), 3.0);
    }
}

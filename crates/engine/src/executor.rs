//! Query execution: base-relation materialisation, cell queries, and full
//! refined-query aggregates.
//!
//! The paper's evaluation layer receives two kinds of requests:
//!
//! * ACQUIRE issues **cell queries** — "aggregate the tuples whose
//!   refinement scores fall in this one grid cell" (§5.1.1);
//! * the baseline techniques issue **full queries** — "aggregate the tuples
//!   admitted by this whole refined query" (§8.2).
//!
//! Both run against a *base relation*: the (possibly joined) tuple universe
//! of the query, materialised once per search. NOREFINE predicates prefilter
//! it (tuples violating them can never be admitted); refinable predicates
//! keep every tuple within the search's per-dimension refinement caps.

use acq_query::{AcqQuery, Interval, PredFunction, Predicate};

use crate::aggregate::{AggState, UdaRegistry};
use crate::catalog::Catalog;
use crate::column::NumSlice;
use crate::error::{EngineError, EngineResult};
use crate::join::{band_join, hash_equi_join};
use crate::relation::Relation;
use crate::scoring::ResolvedQuery;
use crate::stats::ExecStats;
use crate::table::Table;
use crate::zone::{classify, BlockClass, BlockStat, CellScan, ZONE_BLOCK};

/// Default cap on materialised cross products (rows).
pub const DEFAULT_CROSS_PRODUCT_LIMIT: u64 = 20_000_000;

/// One dimension of a cell query: the refinement-score range the tuple must
/// fall into.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellRange {
    /// The tuple must already satisfy the predicate (score exactly 0) —
    /// grid coordinate 0.
    Zero,
    /// Score in the half-open bucket `(lo, hi]` — grid coordinate `k >= 1`
    /// with `lo = (k-1)·step`, `hi = k·step`.
    Open {
        /// Exclusive lower score bound.
        lo: f64,
        /// Inclusive upper score bound.
        hi: f64,
    },
}

impl CellRange {
    /// Whether a tuple score falls in this range.
    #[inline]
    #[must_use]
    pub fn contains(&self, s: f64) -> bool {
        match self {
            Self::Zero => s == 0.0,
            Self::Open { lo, hi } => s > *lo && s <= *hi,
        }
    }

    /// The inclusive upper score bound of the range.
    #[must_use]
    pub fn upper(&self) -> f64 {
        match self {
            Self::Zero => 0.0,
            Self::Open { hi, .. } => *hi,
        }
    }
}

/// The engine's execution entry point: owns the catalog, the UDA registry
/// and the work counters.
#[derive(Debug)]
pub struct Executor {
    catalog: Catalog,
    uda: UdaRegistry,
    stats: ExecStats,
    cross_product_limit: u64,
    /// Whether cell queries may use the zone-map pruned kernel path.
    zone_pruning: bool,
    /// Human-readable trace of the most recent base-relation
    /// materialisation (scan prefilters, join order, band widths).
    last_plan: Vec<String>,
}

impl Executor {
    /// Creates an executor over a catalog.
    #[must_use]
    pub fn new(catalog: Catalog) -> Self {
        Self {
            catalog,
            uda: UdaRegistry::new(),
            stats: ExecStats::default(),
            cross_product_limit: DEFAULT_CROSS_PRODUCT_LIMIT,
            zone_pruning: true,
            last_plan: Vec::new(),
        }
    }

    /// Replaces the UDA registry.
    #[must_use]
    pub fn with_uda_registry(mut self, uda: UdaRegistry) -> Self {
        self.uda = uda;
        self
    }

    /// Sets the cross-product row limit.
    #[must_use]
    pub fn with_cross_product_limit(mut self, limit: u64) -> Self {
        self.cross_product_limit = limit;
        self
    }

    /// Enables or disables the zone-map pruned cell path (builder form).
    /// Results are bit-identical either way; pruning only changes how much
    /// work cell queries do.
    #[must_use]
    pub fn with_zone_pruning(mut self, on: bool) -> Self {
        self.zone_pruning = on;
        self
    }

    /// Enables or disables the zone-map pruned cell path.
    pub fn set_zone_pruning(&mut self, on: bool) {
        self.zone_pruning = on;
    }

    /// Whether the zone-map pruned cell path is enabled.
    #[must_use]
    pub fn zone_pruning(&self) -> bool {
        self.zone_pruning
    }

    /// The catalog.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The UDA registry.
    #[must_use]
    pub fn uda_registry(&self) -> &UdaRegistry {
        &self.uda
    }

    /// Mutable UDA registry (to register aggregates).
    pub fn uda_registry_mut(&mut self) -> &mut UdaRegistry {
        &mut self.uda
    }

    /// Accumulated work counters.
    #[must_use]
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Resets the work counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Mutable access to the work counters, for evaluation layers that run
    /// on top of the engine (cached scores, grid indexes) but still account
    /// their work here.
    pub fn stats_mut(&mut self) -> &mut ExecStats {
        &mut self.stats
    }

    /// Human-readable trace of the most recent
    /// [`Executor::base_relation`] call: one line per scan, join and cross
    /// product, in execution order.
    #[must_use]
    pub fn last_plan(&self) -> &[String] {
        &self.last_plan
    }

    /// Resolves a query's column references against the catalog.
    pub fn resolve(&self, query: &AcqQuery) -> EngineResult<ResolvedQuery> {
        ResolvedQuery::resolve(&self.catalog, query)
    }

    /// Fills in each predicate's attribute domain from table statistics
    /// (used to bound the useful refinement of every dimension).
    pub fn populate_domains(&self, query: &mut AcqQuery) -> EngineResult<()> {
        for pred in &mut query.predicates {
            if pred.domain.is_some() {
                continue;
            }
            match &pred.func {
                PredFunction::Attr(c) => {
                    let (table, idx) = self.catalog.resolve(c)?;
                    let field = &table.schema().fields()[idx];
                    pred.domain = table.numeric_domain(&field.name);
                }
                PredFunction::JoinDelta { left, right } => {
                    let (lt, lidx) = self.catalog.resolve(&left.col)?;
                    let (rt, ridx) = self.catalog.resolve(&right.col)?;
                    let lname = lt.schema().fields()[lidx].name.clone();
                    let rname = rt.schema().fields()[ridx].name.clone();
                    if let (Some(ld), Some(rd)) =
                        (lt.numeric_domain(&lname), rt.numeric_domain(&rname))
                    {
                        let (llo, lhi) = (left.eval(ld.lo()), left.eval(ld.hi()));
                        let (rlo, rhi) = (right.eval(rd.lo()), right.eval(rd.hi()));
                        let (llo, lhi) = (llo.min(lhi), llo.max(lhi));
                        let (rlo, rhi) = (rlo.min(rhi), rlo.max(rhi));
                        let max_delta = (lhi - rlo).max(rhi - llo).max(0.0);
                        pred.domain = Some(Interval::new(0.0, max_delta));
                    }
                }
                PredFunction::Categorical { .. } => {
                    // Categorical predicates carry their [0, 100] score
                    // domain from construction.
                }
            }
        }
        Ok(())
    }

    /// Materialises the query's base relation: every tuple combination that
    /// could be admitted by *some* refinement within `flex_caps` (one PScore
    /// cap per flexible predicate, parallel to `rq.flex()`).
    ///
    /// * NOREFINE selection predicates prefilter their tables;
    /// * flexible selection predicates prefilter to `score <= cap`;
    /// * NOREFINE equi-joins run as hash joins;
    /// * join predicates run as band joins at their cap width;
    /// * disconnected tables fall back to a size-limited cross product.
    pub fn base_relation(
        &mut self,
        rq: &ResolvedQuery,
        flex_caps: &[f64],
    ) -> EngineResult<Relation> {
        assert_eq!(flex_caps.len(), rq.dims(), "one cap per flexible predicate");
        self.last_plan.clear();
        let q = &rq.query;

        // Map predicate index -> cap (flexible) for quick lookup.
        let mut cap_of = vec![f64::INFINITY; q.predicates.len()];
        for (k, &i) in rq.flex().iter().enumerate() {
            cap_of[i] = flex_caps[k];
        }

        // --- per-table scans with prefilters --------------------------------
        let mut components: Vec<Relation> = Vec::with_capacity(q.tables.len());
        let mut comp_of: Vec<usize> = Vec::with_capacity(q.tables.len());
        for (ti, name) in q.tables.iter().enumerate() {
            let table = self.catalog.table(name)?;
            let scanned = self.scan_table(rq, &cap_of, name, &table)?;
            self.last_plan.push(format!(
                "scan {name}: {} of {} rows pass the table-local prefilters",
                scanned.len(),
                table.num_rows()
            ));
            components.push(scanned);
            comp_of.push(ti);
        }

        let table_pos = |q: &AcqQuery, name: &str| -> EngineResult<usize> {
            q.tables
                .iter()
                .position(|t| t == name)
                .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
        };

        // Union-find-lite: merge components as joins connect them.
        let merge = |components: &mut Vec<Relation>,
                     comp_of: &mut Vec<usize>,
                     a: usize,
                     b: usize,
                     joined: Relation| {
            let (keep, drop) = (a.min(b), a.max(b));
            components[keep] = joined;
            components[drop] = Relation::from_rows(Vec::new(), Vec::new());
            for c in comp_of.iter_mut() {
                if *c == drop {
                    *c = keep;
                }
            }
        };

        // --- structural NOREFINE equi-joins ---------------------------------
        for ((lname, lcol), (rname, rcol)) in rq.structural_joins().iter().cloned() {
            let (lt, rt) = (table_pos(q, &lname)?, table_pos(q, &rname)?);
            let (ca, cb) = (comp_of[lt], comp_of[rt]);
            if ca == cb {
                let rel = &components[ca];
                let (lp, rp) = (rel_pos(rel, &lname)?, rel_pos(rel, &rname)?);
                self.stats.tuples_scanned += rel.len() as u64;
                let filtered = rel.filter(|row| {
                    matches!(
                        (rel.get_f64(row, lp, lcol), rel.get_f64(row, rp, rcol)),
                        (Some(l), Some(r)) if l == r
                    )
                });
                let (lc_name, rc_name) = (
                    self.catalog.table(&lname)?.schema().fields()[lcol]
                        .name
                        .clone(),
                    self.catalog.table(&rname)?.schema().fields()[rcol]
                        .name
                        .clone(),
                );
                self.last_plan.push(format!(
                    "filter {lname}.{lc_name} = {rname}.{rc_name} (same component): {} rows remain",
                    filtered.len()
                ));
                components[ca] = filtered;
            } else {
                let (lrel, rrel) = (&components[ca], &components[cb]);
                let (lp, rp) = (rel_pos(lrel, &lname)?, rel_pos(rrel, &rname)?);
                let joined = hash_equi_join(lrel, (lp, lcol), rrel, (rp, rcol), &mut self.stats);
                let (lc_name, rc_name) = (
                    self.catalog.table(&lname)?.schema().fields()[lcol]
                        .name
                        .clone(),
                    self.catalog.table(&rname)?.schema().fields()[rcol]
                        .name
                        .clone(),
                );
                self.last_plan.push(format!(
                    "hash join on {lname}.{lc_name} = {rname}.{rc_name}: {} x {} -> {} rows",
                    lrel.len(),
                    rrel.len(),
                    joined.len()
                ));
                merge(&mut components, &mut comp_of, ca, cb, joined);
            }
        }

        // --- join predicates as band joins at cap width ---------------------
        for (i, pred) in q.predicates.iter().enumerate() {
            let Some(((lname, lcol, lscale, loff), (rname, rcol, rscale, roff))) =
                rq.join_parts(i).map(|((a, b, c, d), (e, f, g, h))| {
                    ((a.to_string(), b, c, d), (e.to_string(), f, g, h))
                })
            else {
                continue;
            };
            let cap = if pred.refinable { cap_of[i] } else { 0.0 };
            let width = if cap.is_finite() {
                pred.refined_interval(cap).hi()
            } else {
                match pred.max_useful_score() {
                    Some(s) => pred.refined_interval(s).hi(),
                    None => f64::INFINITY,
                }
            };
            let (lt, rt) = (table_pos(q, &lname)?, table_pos(q, &rname)?);
            let (ca, cb) = (comp_of[lt], comp_of[rt]);
            if ca == cb {
                let rel = &components[ca];
                let (lp, rp) = (rel_pos(rel, &lname)?, rel_pos(rel, &rname)?);
                self.stats.tuples_scanned += rel.len() as u64;
                components[ca] = rel.filter(|row| {
                    match (rel.get_f64(row, lp, lcol), rel.get_f64(row, rp, rcol)) {
                        (Some(l), Some(r)) => {
                            ((lscale * l + loff) - (rscale * r + roff)).abs() <= width
                        }
                        _ => false,
                    }
                });
            } else if width.is_finite() {
                let (lrel, rrel) = (&components[ca], &components[cb]);
                let (lp, rp) = (rel_pos(lrel, &lname)?, rel_pos(rrel, &rname)?);
                let joined = band_join(
                    lrel,
                    (lp, lcol),
                    (lscale, loff),
                    rrel,
                    (rp, rcol),
                    (rscale, roff),
                    width,
                    &mut self.stats,
                );
                let (lc_name, rc_name) = (
                    self.catalog.table(&lname)?.schema().fields()[lcol]
                        .name
                        .clone(),
                    self.catalog.table(&rname)?.schema().fields()[rcol]
                        .name
                        .clone(),
                );
                self.last_plan.push(format!(
                    "band join |{lname}.{lc_name} - {rname}.{rc_name}| <= {width}:                      {} x {} -> {} rows",
                    lrel.len(),
                    rrel.len(),
                    joined.len()
                ));
                merge(&mut components, &mut comp_of, ca, cb, joined);
            } else {
                // Unbounded band: fall through to the cross-product stage,
                // which enforces the size limit.
            }
        }

        // --- cross products for anything still disconnected -----------------
        let mut live: Vec<usize> = {
            let mut seen = Vec::new();
            for &c in &comp_of {
                if !seen.contains(&c) {
                    seen.push(c);
                }
            }
            seen
        };
        while live.len() > 1 {
            let (a, b) = (live[0], live[1]);
            let (ra, rb) = (&components[a], &components[b]);
            let est = ra.len() as u64 * rb.len() as u64;
            if est > self.cross_product_limit {
                return Err(EngineError::CrossProductTooLarge {
                    estimated: est,
                    limit: self.cross_product_limit,
                });
            }
            self.stats.tuples_scanned += (ra.len() + rb.len()) as u64;
            self.stats.rows_joined += est;
            let mut pairs = Vec::with_capacity(est as usize);
            for i in 0..ra.len() {
                for j in 0..rb.len() {
                    pairs.push((i as u32, j as u32));
                }
            }
            let joined = Relation::zip_join(ra, rb, &pairs);
            self.last_plan.push(format!(
                "cross product (no connecting predicate): {} x {} -> {} rows",
                ra.len(),
                rb.len(),
                joined.len()
            ));
            merge(&mut components, &mut comp_of, a, b, joined);
            live = {
                let mut seen = Vec::new();
                for &c in &comp_of {
                    if !seen.contains(&c) {
                        seen.push(c);
                    }
                }
                seen
            };
        }

        Ok(components.swap_remove(live[0]))
    }

    /// Scans one table, applying the prefilters that are local to it.
    fn scan_table(
        &mut self,
        rq: &ResolvedQuery,
        cap_of: &[f64],
        name: &str,
        table: &std::sync::Arc<Table>,
    ) -> EngineResult<Relation> {
        self.stats.tuples_scanned += table.num_rows() as u64;
        // Predicates entirely local to this table.
        let local: Vec<usize> = (0..rq.query.predicates.len())
            .filter(|&i| {
                let tabs = rq.source_tables(i);
                tabs.len() == 1 && tabs[0] == name && !rq.query.predicates[i].is_join()
            })
            .collect();
        if local.is_empty() {
            return Ok(Relation::table(table.clone()));
        }
        let kept: Vec<u32> = (0..table.num_rows())
            .filter(|&row| {
                local.iter().all(|&i| {
                    let s = rq.score_local(i, table, row);
                    // NOREFINE violations score infinite and are dropped;
                    // flexible predicates keep tuples up to the search cap
                    // (inclusive: a boundary tuple belongs to the top cell).
                    s.is_finite() && s <= cap_of[i]
                })
            })
            .map(|r| r as u32)
            .collect();
        if kept.len() == table.num_rows() {
            Ok(Relation::table(table.clone()))
        } else {
            Ok(Relation::table_subset(table.clone(), kept))
        }
    }

    /// Executes a **cell query** (§5.1.1): aggregates the tuples of `rel`
    /// whose refinement-score vector lies in `cell` (one range per flexible
    /// predicate).
    pub fn cell_aggregate(
        &mut self,
        rq: &ResolvedQuery,
        rel: &Relation,
        cell: &[CellRange],
    ) -> EngineResult<AggState> {
        self.stats.cell_queries += 1;
        let (state, scan) = self.cell_scan(rq, rel, cell)?;
        self.commit_scan(&scan);
        Ok(state)
    }

    /// Cell query restricted to candidate rows (used by index-backed
    /// evaluation layers, §7.4). Does not bump the cell-query counter.
    ///
    /// Every candidate is visited (and counted in `tuples_scanned`: the
    /// index already pruned the rest), but when the kernel plan applies the
    /// per-candidate predicate evaluation is skipped for candidates whose
    /// zone block classifies as fully-outside or fully-inside the cell.
    pub fn cell_aggregate_rows(
        &mut self,
        rq: &ResolvedQuery,
        rel: &Relation,
        cell: &[CellRange],
        rows: impl Iterator<Item = usize>,
    ) -> EngineResult<AggState> {
        assert_eq!(cell.len(), rq.dims(), "one range per flexible predicate");
        let mut state = AggState::empty(&rq.query.constraint.spec, &self.uda)?;
        if self.zone_pruning {
            if let Some(plan) = KernelPlan::build(rq, rel, cell) {
                let mut scan = CellScan::default();
                let nblocks = rel.tables()[0].num_rows().div_ceil(ZONE_BLOCK);
                let mut classes: Vec<Option<BlockClass>> = vec![None; nblocks];
                // Qualifying base rows in candidate order; folding them at
                // the end preserves the scalar path's update order exactly.
                let mut quals: Vec<u32> = Vec::new();
                for row in rows {
                    scan.tuples_scanned += 1;
                    let base = rel.base_row(row, 0) as usize;
                    let b = base / ZONE_BLOCK;
                    let cls = match classes[b] {
                        Some(c) => c,
                        None => {
                            let c = plan.classify_block(b);
                            match c {
                                BlockClass::Skip => scan.zones_pruned += 1,
                                BlockClass::Full => scan.zones_full += 1,
                                BlockClass::Scan => scan.zones_scanned += 1,
                            }
                            classes[b] = Some(c);
                            c
                        }
                    };
                    match cls {
                        BlockClass::Skip => {}
                        BlockClass::Full => quals.push(base as u32),
                        BlockClass::Scan => {
                            if plan.row_qualifies(base) {
                                quals.push(base as u32);
                            }
                        }
                    }
                }
                plan.fold_gather(&mut state, &quals);
                self.commit_scan(&scan);
                return Ok(state);
            }
        }
        let bound = rq.bind(rel)?;
        let mut scores = vec![0.0; rq.dims()];
        let mut scanned = 0u64;
        for row in rows {
            scanned += 1;
            if !bound.score_into(rel, row, &mut scores) {
                continue;
            }
            if scores.iter().zip(cell).all(|(s, r)| r.contains(*s)) {
                state.update(bound.agg_value(rel, row));
            }
        }
        self.stats.tuples_scanned += scanned;
        Ok(state)
    }

    /// Shared-state variant of [`Executor::cell_aggregate`] for concurrent
    /// cell evaluation: takes `&self`, touches no work counters, and returns
    /// the scan accounting (tuples + zone-block classes) so the caller can
    /// commit the work later in a deterministic (serial emission) order.
    /// The scan itself is identical to [`Executor::cell_aggregate`], so the
    /// returned state is bit-identical.
    pub fn cell_aggregate_shared(
        &self,
        rq: &ResolvedQuery,
        rel: &Relation,
        cell: &[CellRange],
    ) -> EngineResult<(AggState, CellScan)> {
        self.cell_scan(rq, rel, cell)
    }

    /// The one cell-scan implementation behind both the serial and the
    /// shared cell path: zone-map pruned kernels when the query shape
    /// allows, the scalar row loop otherwise. Pure with respect to
    /// `self.stats` — accounting is returned, not committed.
    fn cell_scan(
        &self,
        rq: &ResolvedQuery,
        rel: &Relation,
        cell: &[CellRange],
    ) -> EngineResult<(AggState, CellScan)> {
        assert_eq!(cell.len(), rq.dims(), "one range per flexible predicate");
        let mut state = AggState::empty(&rq.query.constraint.spec, &self.uda)?;
        let mut scan = CellScan::default();
        if self.zone_pruning {
            if let Some(plan) = KernelPlan::build(rq, rel, cell) {
                if rel.is_identity() {
                    plan.scan_identity(rel.len(), &mut state, &mut scan);
                    return Ok((state, scan));
                }
                if let Some(rows) = rel.single_table_rows() {
                    plan.scan_rows(rows, &mut state, &mut scan);
                    return Ok((state, scan));
                }
            }
        }
        // Scalar fallback: joins, categorical/string predicate columns, or
        // pruning disabled.
        let bound = rq.bind(rel)?;
        let mut scores = vec![0.0; rq.dims()];
        for row in 0..rel.len() {
            scan.tuples_scanned += 1;
            if !bound.score_into(rel, row, &mut scores) {
                continue;
            }
            if scores.iter().zip(cell).all(|(s, r)| r.contains(*s)) {
                state.update(bound.agg_value(rel, row));
            }
        }
        Ok((state, scan))
    }

    /// Applies a cell scan's deferred accounting to the work counters.
    fn commit_scan(&mut self, scan: &CellScan) {
        self.stats.tuples_scanned += scan.tuples_scanned;
        self.stats.zones_pruned += scan.zones_pruned;
        self.stats.zones_full += scan.zones_full;
        self.stats.zones_scanned += scan.zones_scanned;
    }

    /// Executes a **full refined query**: aggregates the tuples admitted
    /// when each flexible predicate `k` is refined by `bounds[k]` percent.
    /// This is what the baseline techniques do for every candidate query.
    pub fn full_aggregate(
        &mut self,
        rq: &ResolvedQuery,
        rel: &Relation,
        bounds: &[f64],
    ) -> EngineResult<AggState> {
        assert_eq!(bounds.len(), rq.dims(), "one bound per flexible predicate");
        self.stats.full_queries += 1;
        self.stats.tuples_scanned += rel.len() as u64;
        let bound = rq.bind(rel)?;
        let mut state = AggState::empty(&rq.query.constraint.spec, &self.uda)?;
        let mut scores = vec![0.0; rq.dims()];
        for row in 0..rel.len() {
            if !bound.score_into(rel, row, &mut scores) {
                continue;
            }
            if scores.iter().zip(bounds).all(|(s, b)| s <= b) {
                state.update(bound.agg_value(rel, row));
            }
        }
        Ok(state)
    }

    /// The aggregate of the *original* (unrefined) query — `A_actual` of the
    /// input, step 1 of the system architecture (Fig. 2).
    pub fn original_aggregate(
        &mut self,
        rq: &ResolvedQuery,
        rel: &Relation,
    ) -> EngineResult<AggState> {
        let zeros = vec![0.0; rq.dims()];
        self.full_aggregate(rq, rel, &zeros)
    }
}

/// One predicate of the kernel path, bound to its base-table column values
/// and zone map, plus the cell range it must satisfy (`None` = NOREFINE).
struct KernelDim<'a> {
    pred: &'a Predicate,
    vals: NumSlice<'a>,
    zones: &'a [BlockStat],
    range: Option<CellRange>,
}

/// The vectorised cell-query plan: applies when the relation is a single
/// table and every predicate is a numeric attribute selection on it.
/// Everything else (joins, categorical predicates, string columns) keeps
/// the scalar path, which stays correct for all shapes.
struct KernelPlan<'a> {
    dims: Vec<KernelDim<'a>>,
    /// Aggregate column values; `None` contributes `0.0` per qualifying row
    /// (COUNT, or a non-numeric aggregate column), exactly like
    /// [`BoundQuery::agg_value`](crate::scoring::BoundQuery::agg_value).
    agg: Option<NumSlice<'a>>,
}

impl<'a> KernelPlan<'a> {
    fn build(rq: &'a ResolvedQuery, rel: &'a Relation, cell: &[CellRange]) -> Option<Self> {
        let plan = rq.single_table_plan(rel)?;
        let table = &rel.tables()[0];
        let mut dims = Vec::with_capacity(plan.cols.len());
        let mut k = 0usize;
        for (i, pred) in rq.query.predicates.iter().enumerate() {
            let col = plan.cols[i];
            let vals = table.column(col).num_slice()?;
            let zones = table.zones(col).blocks();
            let range = if pred.refinable {
                let r = cell[k];
                k += 1;
                Some(r)
            } else {
                None
            };
            dims.push(KernelDim {
                pred,
                vals,
                zones,
                range,
            });
        }
        debug_assert_eq!(k, cell.len());
        let agg = plan.agg.and_then(|c| table.column(c).num_slice());
        Some(Self { dims, agg })
    }

    /// Meet of the per-dimension block classes (short-circuits on `Skip`).
    fn classify_block(&self, b: usize) -> BlockClass {
        let mut cls = BlockClass::Full;
        for d in &self.dims {
            cls = cls.and(classify(d.pred, d.range.as_ref(), &d.zones[b]));
            if cls == BlockClass::Skip {
                return BlockClass::Skip;
            }
        }
        cls
    }

    /// Whether one base row's score vector lies in the cell. Equivalent to
    /// the scalar `score_into` + `CellRange::contains` chain: infinite
    /// scores fail `contains` on flexible dimensions, and NOREFINE scores
    /// are `0.0` exactly when finite.
    #[inline]
    fn row_qualifies(&self, row: usize) -> bool {
        for d in &self.dims {
            let s = d.pred.score_value(d.vals.get(row));
            let ok = match &d.range {
                Some(r) => r.contains(s),
                None => s == 0.0,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Full cell scan over an identity (full-table) relation: walk zone
    /// blocks in order, skipping, wholesale-aggregating or scanning each.
    fn scan_identity(&self, n: usize, state: &mut AggState, scan: &mut CellScan) {
        let mut sel: Vec<u32> = Vec::with_capacity(ZONE_BLOCK);
        let mut start = 0usize;
        let mut b = 0usize;
        while start < n {
            let end = (start + ZONE_BLOCK).min(n);
            match self.classify_block(b) {
                BlockClass::Skip => scan.zones_pruned += 1,
                BlockClass::Full => {
                    scan.zones_full += 1;
                    self.fold_contig(state, start, end);
                }
                BlockClass::Scan => {
                    scan.zones_scanned += 1;
                    scan.tuples_scanned += (end - start) as u64;
                    sel.clear();
                    for r in start..end {
                        if self.row_qualifies(r) {
                            sel.push(r as u32);
                        }
                    }
                    self.fold_gather(state, &sel);
                }
            }
            start = end;
            b += 1;
        }
    }

    /// Full cell scan over a subset relation: group consecutive base rows
    /// by zone block (prefilters keep row ids ascending, so each block is
    /// one run) and classify each run once.
    fn scan_rows(&self, rows: &[u32], state: &mut AggState, scan: &mut CellScan) {
        let mut sel: Vec<u32> = Vec::with_capacity(ZONE_BLOCK);
        let n = rows.len();
        let mut i = 0usize;
        while i < n {
            let b = rows[i] as usize / ZONE_BLOCK;
            let mut j = i + 1;
            while j < n && rows[j] as usize / ZONE_BLOCK == b {
                j += 1;
            }
            let run = &rows[i..j];
            match self.classify_block(b) {
                BlockClass::Skip => scan.zones_pruned += 1,
                BlockClass::Full => {
                    scan.zones_full += 1;
                    self.fold_gather(state, run);
                }
                BlockClass::Scan => {
                    scan.zones_scanned += 1;
                    scan.tuples_scanned += run.len() as u64;
                    sel.clear();
                    for &r in run {
                        if self.row_qualifies(r as usize) {
                            sel.push(r);
                        }
                    }
                    self.fold_gather(state, &sel);
                }
            }
            i = j;
        }
    }

    /// Folds the contiguous base rows `start..end` into the aggregate, in
    /// row order — bit-identical to per-row `update` calls.
    fn fold_contig(&self, state: &mut AggState, start: usize, end: usize) {
        if let AggState::Count(c) = state {
            // COUNT is associative over u64 exactly, so a full block folds
            // in O(1); value aggregates keep the per-row fold order.
            *c += (end - start) as u64;
        } else if let Some(vals) = self.agg {
            state.update_many((start..end).map(|r| vals.get(r)));
        } else {
            state.update_many((start..end).map(|_| 0.0));
        }
    }

    /// Folds the given base rows into the aggregate, in slice order.
    fn fold_gather(&self, state: &mut AggState, rows: &[u32]) {
        if let AggState::Count(c) = state {
            *c += rows.len() as u64;
        } else if let Some(vals) = self.agg {
            state.update_many(rows.iter().map(|&r| vals.get(r as usize)));
        } else {
            state.update_many(rows.iter().map(|_| 0.0));
        }
    }
}

fn rel_pos(rel: &Relation, name: &str) -> EngineResult<usize> {
    rel.tables()
        .iter()
        .position(|t| t.name() == name)
        .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
}

// The parallel Explore phase shares the executor, its base relation and the
// resolved query across worker threads; keep these types `Send + Sync`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Executor>();
    assert_send_sync::<Relation>();
    assert_send_sync::<ResolvedQuery>();
    assert_send_sync::<AggState>();
    assert_send_sync::<CellRange>();
    assert_send_sync::<EngineError>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::table::TableBuilder;
    use crate::value::{DataType, Value};
    use acq_query::{AggConstraint, AggregateSpec, CmpOp, ColRef, Predicate, RefineSide};

    fn single_table_catalog() -> Catalog {
        let mut b = TableBuilder::new(
            "t",
            vec![
                Field::new("x", DataType::Float),
                Field::new("y", DataType::Float),
            ],
        )
        .unwrap();
        // y values: 10, 20, ..., 100
        for i in 1..=10 {
            b.push_row(vec![Value::Float(i as f64), Value::Float(i as f64 * 10.0)]);
        }
        let mut c = Catalog::new();
        c.register(b.finish().unwrap()).unwrap();
        c
    }

    fn count_query() -> AcqQuery {
        AcqQuery::builder()
            .table("t")
            .predicate(Predicate::select(
                ColRef::new("t", "y"),
                Interval::new(0.0, 30.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 5.0))
            .build()
            .unwrap()
    }

    #[test]
    fn original_aggregate_counts_satisfying_tuples() {
        let mut ex = Executor::new(single_table_catalog());
        let rq = ex.resolve(&count_query()).unwrap();
        let rel = ex.base_relation(&rq, &[f64::INFINITY]).unwrap();
        let a = ex.original_aggregate(&rq, &rel).unwrap();
        assert_eq!(a.value(), Some(3.0)); // y in {10,20,30}
    }

    #[test]
    fn full_aggregate_expands_with_bounds() {
        let mut ex = Executor::new(single_table_catalog());
        let rq = ex.resolve(&count_query()).unwrap();
        let rel = ex.base_relation(&rq, &[f64::INFINITY]).unwrap();
        // Refining [0,30] by 100% gives [0,60]: y in {10..60} -> 6 tuples.
        let a = ex.full_aggregate(&rq, &rel, &[100.0]).unwrap();
        assert_eq!(a.value(), Some(6.0));
    }

    #[test]
    fn cell_aggregate_partitions_the_data() {
        let mut ex = Executor::new(single_table_catalog());
        let rq = ex.resolve(&count_query()).unwrap();
        let rel = ex.base_relation(&rq, &[f64::INFINITY]).unwrap();
        // Cells of step 100% partition scores {0} U (0,100] U (100,200]...
        let zero = ex.cell_aggregate(&rq, &rel, &[CellRange::Zero]).unwrap();
        assert_eq!(zero.value(), Some(3.0));
        let c1 = ex
            .cell_aggregate(&rq, &rel, &[CellRange::Open { lo: 0.0, hi: 100.0 }])
            .unwrap();
        assert_eq!(c1.value(), Some(3.0)); // y in {40,50,60}: scores 33..100
        let c2 = ex
            .cell_aggregate(
                &rq,
                &rel,
                &[CellRange::Open {
                    lo: 100.0,
                    hi: 200.0,
                }],
            )
            .unwrap();
        assert_eq!(c2.value(), Some(3.0)); // y in {70,80,90}
    }

    #[test]
    fn base_relation_prefilters_by_cap() {
        let mut ex = Executor::new(single_table_catalog());
        let rq = ex.resolve(&count_query()).unwrap();
        // Cap 100%: scores > 100 (y > 60) are excluded from the universe.
        let rel = ex.base_relation(&rq, &[100.0]).unwrap();
        assert_eq!(rel.len(), 6);
        // Boundary tuple (y=60, score exactly 100) is kept.
        let a = ex.full_aggregate(&rq, &rel, &[100.0]).unwrap();
        assert_eq!(a.value(), Some(6.0));
    }

    #[test]
    fn base_relation_prefilters_norefine() {
        let mut ex = Executor::new(single_table_catalog());
        let mut q = count_query();
        q.predicates.push(
            Predicate::select(
                ColRef::new("t", "x"),
                Interval::new(0.0, 4.0),
                RefineSide::Upper,
            )
            .no_refine(),
        );
        let rq = ex.resolve(&q).unwrap();
        let rel = ex.base_relation(&rq, &[f64::INFINITY]).unwrap();
        assert_eq!(rel.len(), 4); // x <= 4
    }

    fn two_table_catalog() -> Catalog {
        let mut a = TableBuilder::new(
            "a",
            vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Float),
            ],
        )
        .unwrap();
        for i in 0..5 {
            a.push_row(vec![Value::Int(i), Value::Float(i as f64)]);
        }
        let mut b = TableBuilder::new(
            "b",
            vec![
                Field::new("k", DataType::Int),
                Field::new("w", DataType::Float),
            ],
        )
        .unwrap();
        for i in 0..5 {
            b.push_row(vec![Value::Int(i * 2), Value::Float(10.0 * i as f64)]);
        }
        let mut c = Catalog::new();
        c.register(a.finish().unwrap()).unwrap();
        c.register(b.finish().unwrap()).unwrap();
        c
    }

    #[test]
    fn structural_join_materialises_matches() {
        let mut ex = Executor::new(two_table_catalog());
        let q = AcqQuery::builder()
            .table("a")
            .table("b")
            .join(ColRef::new("a", "k"), ColRef::new("b", "k"))
            .predicate(Predicate::select(
                ColRef::new("b", "w"),
                Interval::new(0.0, 100.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 2.0))
            .build()
            .unwrap();
        let rq = ex.resolve(&q).unwrap();
        let rel = ex.base_relation(&rq, &[f64::INFINITY]).unwrap();
        // a.k in {0..4}, b.k in {0,2,4,6,8}: matches k in {0,2,4}.
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn refinable_join_band_is_capped() {
        let mut ex = Executor::new(two_table_catalog());
        let q = AcqQuery::builder()
            .table("a")
            .table("b")
            .predicate(Predicate::equi_join(
                ColRef::new("a", "k"),
                ColRef::new("b", "k"),
            ))
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 5.0))
            .build()
            .unwrap();
        let rq = ex.resolve(&q).unwrap();
        // Cap = 1 percent == band width 1 for equi-joins.
        let rel = ex.base_relation(&rq, &[1.0]).unwrap();
        // |a.k - b.k| <= 1 pairs: a0-b0, a1-b0, a1-b2(=2)? |1-2|=1 yes...
        let mut expected = 0;
        for ak in 0..5i64 {
            for bk in [0i64, 2, 4, 6, 8] {
                if (ak - bk).abs() <= 1 {
                    expected += 1;
                }
            }
        }
        assert_eq!(rel.len(), expected);
    }

    #[test]
    fn cross_product_limit_enforced() {
        let mut ex = Executor::new(two_table_catalog()).with_cross_product_limit(10);
        let q = AcqQuery::builder()
            .table("a")
            .table("b")
            .predicate(Predicate::select(
                ColRef::new("a", "v"),
                Interval::new(0.0, 100.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 2.0))
            .build()
            .unwrap();
        let rq = ex.resolve(&q).unwrap();
        let err = ex.base_relation(&rq, &[f64::INFINITY]).unwrap_err();
        assert!(matches!(err, EngineError::CrossProductTooLarge { .. }));
    }

    #[test]
    fn sum_aggregate_over_cells() {
        let mut ex = Executor::new(single_table_catalog());
        let mut q = count_query();
        q.constraint =
            AggConstraint::new(AggregateSpec::sum(ColRef::new("t", "x")), CmpOp::Ge, 10.0);
        let rq = ex.resolve(&q).unwrap();
        let rel = ex.base_relation(&rq, &[f64::INFINITY]).unwrap();
        let zero = ex.cell_aggregate(&rq, &rel, &[CellRange::Zero]).unwrap();
        assert_eq!(zero.value(), Some(1.0 + 2.0 + 3.0));
    }

    #[test]
    fn last_plan_describes_materialisation() {
        let mut ex = Executor::new(two_table_catalog());
        let q = AcqQuery::builder()
            .table("a")
            .table("b")
            .join(ColRef::new("a", "k"), ColRef::new("b", "k"))
            .predicate(Predicate::select(
                ColRef::new("b", "w"),
                Interval::new(0.0, 100.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 2.0))
            .build()
            .unwrap();
        let rq = ex.resolve(&q).unwrap();
        let _ = ex.base_relation(&rq, &[f64::INFINITY]).unwrap();
        let plan = ex.last_plan().join("\n");
        assert!(plan.contains("scan a:"), "{plan}");
        assert!(plan.contains("scan b:"), "{plan}");
        assert!(plan.contains("hash join on a.k = b.k"), "{plan}");
    }

    /// 5000 sorted rows: zone blocks carry tight value bands, so the
    /// pruned path must skip whole blocks yet return bit-identical states.
    fn sorted_catalog() -> Catalog {
        let mut b = TableBuilder::new("t", vec![Field::new("y", DataType::Float)]).unwrap();
        for i in 0..5000 {
            b.push_row(vec![Value::Float(i as f64)]);
        }
        let mut c = Catalog::new();
        c.register(b.finish().unwrap()).unwrap();
        c
    }

    fn sorted_query(spec: AggregateSpec) -> AcqQuery {
        AcqQuery::builder()
            .table("t")
            .predicate(Predicate::select(
                ColRef::new("t", "y"),
                Interval::new(0.0, 100.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(spec, CmpOp::Ge, 1.0))
            .build()
            .unwrap()
    }

    #[test]
    fn zone_pruned_cells_match_scalar_and_prune() {
        let mut ex = Executor::new(sorted_catalog());
        let rq = ex.resolve(&sorted_query(AggregateSpec::count())).unwrap();
        let rel = ex.base_relation(&rq, &[f64::INFINITY]).unwrap();
        let cells = [
            vec![CellRange::Zero],
            vec![CellRange::Open { lo: 0.0, hi: 100.0 }],
            vec![CellRange::Open {
                lo: 100.0,
                hi: 200.0,
            }],
        ];
        for cell in &cells {
            ex.set_zone_pruning(true);
            ex.reset_stats();
            let on = ex.cell_aggregate(&rq, &rel, cell).unwrap();
            let s_on = ex.stats();
            ex.set_zone_pruning(false);
            ex.reset_stats();
            let off = ex.cell_aggregate(&rq, &rel, cell).unwrap();
            let s_off = ex.stats();
            assert_eq!(on.value(), off.value());
            assert!(s_on.zones_pruned > 0, "expected pruning for {cell:?}");
            assert!(
                s_on.tuples_scanned < s_off.tuples_scanned,
                "{cell:?}: {} !< {}",
                s_on.tuples_scanned,
                s_off.tuples_scanned
            );
            // The scalar path reports no zone activity at all.
            assert_eq!(
                s_off.zones_pruned + s_off.zones_full + s_off.zones_scanned,
                0
            );
        }
    }

    #[test]
    fn zone_full_blocks_fold_sums_bit_identically() {
        let mut ex = Executor::new(sorted_catalog());
        let rq = ex
            .resolve(&sorted_query(AggregateSpec::sum(ColRef::new("t", "y"))))
            .unwrap();
        let rel = ex.base_relation(&rq, &[f64::INFINITY]).unwrap();
        // Band (0, 2000] covers values (100, 2100]: block [1024, 2047] is
        // fully inside and must be folded wholesale.
        let cell = vec![CellRange::Open {
            lo: 0.0,
            hi: 2000.0,
        }];
        ex.set_zone_pruning(true);
        ex.reset_stats();
        let on = ex.cell_aggregate(&rq, &rel, &cell).unwrap();
        let s_on = ex.stats();
        ex.set_zone_pruning(false);
        let off = ex.cell_aggregate(&rq, &rel, &cell).unwrap();
        assert_eq!(s_on.zones_full, 1);
        assert!(s_on.zones_pruned >= 2);
        // f64 sums in identical fold order are bit-identical.
        assert_eq!(on.value(), off.value());
    }

    #[test]
    fn zone_pruning_handles_subset_relations() {
        let mut ex = Executor::new(sorted_catalog());
        let rq = ex.resolve(&sorted_query(AggregateSpec::count())).unwrap();
        // Cap 1000%: prefilter keeps y <= 1100 (a subset relation).
        let rel = ex.base_relation(&rq, &[1000.0]).unwrap();
        assert!(!rel.is_identity());
        assert_eq!(rel.len(), 1101);
        let cell = vec![CellRange::Open { lo: 0.0, hi: 500.0 }];
        ex.set_zone_pruning(true);
        ex.reset_stats();
        let on = ex.cell_aggregate(&rq, &rel, &cell).unwrap();
        let s_on = ex.stats();
        ex.set_zone_pruning(false);
        let off = ex.cell_aggregate(&rq, &rel, &cell).unwrap();
        assert_eq!(on.value(), off.value());
        assert_eq!(on.value(), Some(500.0)); // y in (100, 600]
        assert!(s_on.zones_pruned > 0);
        assert!(s_on.tuples_scanned < rel.len() as u64);
    }

    #[test]
    fn shared_cell_scan_matches_serial_with_zone_accounting() {
        let mut ex = Executor::new(sorted_catalog());
        let rq = ex.resolve(&sorted_query(AggregateSpec::count())).unwrap();
        let rel = ex.base_relation(&rq, &[f64::INFINITY]).unwrap();
        let cell = vec![CellRange::Zero];
        ex.reset_stats();
        let serial = ex.cell_aggregate(&rq, &rel, &cell).unwrap();
        let s = ex.stats();
        let (shared, scan) = ex.cell_aggregate_shared(&rq, &rel, &cell).unwrap();
        assert_eq!(serial.value(), shared.value());
        assert_eq!(scan.tuples_scanned, s.tuples_scanned);
        assert_eq!(scan.zones_pruned, s.zones_pruned);
        assert_eq!(scan.zones_full, s.zones_full);
        assert_eq!(scan.zones_scanned, s.zones_scanned);
    }

    #[test]
    fn candidate_rows_use_zone_classes() {
        let mut ex = Executor::new(sorted_catalog());
        let rq = ex.resolve(&sorted_query(AggregateSpec::count())).unwrap();
        let rel = ex.base_relation(&rq, &[f64::INFINITY]).unwrap();
        let cell = vec![CellRange::Zero];
        // Candidates spanning a straddling block (0) and a skip block (4).
        let candidates: Vec<usize> = vec![0, 50, 100, 101, 4500];
        ex.reset_stats();
        let a = ex
            .cell_aggregate_rows(&rq, &rel, &cell, candidates.clone().into_iter())
            .unwrap();
        let s = ex.stats();
        assert_eq!(a.value(), Some(3.0)); // y in {0, 50, 100}
        assert_eq!(s.tuples_scanned, candidates.len() as u64);
        assert_eq!(s.zones_scanned, 1);
        assert_eq!(s.zones_pruned, 1);
        ex.set_zone_pruning(false);
        let b = ex
            .cell_aggregate_rows(&rq, &rel, &cell, candidates.into_iter())
            .unwrap();
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn stats_count_work() {
        let mut ex = Executor::new(single_table_catalog());
        let rq = ex.resolve(&count_query()).unwrap();
        let rel = ex.base_relation(&rq, &[f64::INFINITY]).unwrap();
        ex.reset_stats();
        let _ = ex.cell_aggregate(&rq, &rel, &[CellRange::Zero]).unwrap();
        let _ = ex.full_aggregate(&rq, &rel, &[0.0]).unwrap();
        let s = ex.stats();
        assert_eq!(s.cell_queries, 1);
        assert_eq!(s.full_queries, 1);
        assert_eq!(s.tuples_scanned, 2 * rel.len() as u64);
    }
}

//! Join operators: hash equi-joins and sort-merge band joins.

use std::collections::HashMap;

use crate::relation::Relation;
use crate::stats::ExecStats;

/// Key extraction for joins: numeric values are hashed by their bit pattern
/// (exact equality, which is what TPC-H integer keys need).
#[inline]
fn key_bits(v: f64) -> u64 {
    // Normalise -0.0 to 0.0 so the two compare equal under bit hashing.
    if v == 0.0 {
        0.0f64.to_bits()
    } else {
        v.to_bits()
    }
}

/// Hash equi-join of two relations on numeric columns
/// `left.(lt, lc) = right.(rt, rc)`; returns the combined relation.
///
/// Builds on the smaller input. NaN keys never match.
#[must_use]
pub fn hash_equi_join(
    left: &Relation,
    (lt, lc): (usize, usize),
    right: &Relation,
    (rt, rc): (usize, usize),
    stats: &mut ExecStats,
) -> Relation {
    stats.tuples_scanned += (left.len() + right.len()) as u64;
    // Build side: the smaller relation.
    let swap = right.len() < left.len();
    let (build, (bt, bc), probe, (pt, pc)) = if swap {
        (right, (rt, rc), left, (lt, lc))
    } else {
        (left, (lt, lc), right, (rt, rc))
    };

    let mut table: HashMap<u64, Vec<u32>> = HashMap::with_capacity(build.len());
    for row in 0..build.len() {
        if let Some(v) = build.get_f64(row, bt, bc) {
            if !v.is_nan() {
                table.entry(key_bits(v)).or_default().push(row as u32);
            }
        }
    }

    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for row in 0..probe.len() {
        let Some(v) = probe.get_f64(row, pt, pc) else {
            continue;
        };
        if v.is_nan() {
            continue;
        }
        if let Some(matches) = table.get(&key_bits(v)) {
            for &b in matches {
                if swap {
                    pairs.push((row as u32, b));
                } else {
                    pairs.push((b, row as u32));
                }
            }
        }
    }
    stats.rows_joined += pairs.len() as u64;
    if swap {
        Relation::zip_join(probe, build, &pairs)
    } else {
        Relation::zip_join(build, probe, &pairs)
    }
}

/// Sort-merge band join: pairs `(l, r)` with `|lv - rv| <= width`, where
/// `lv = lscale * left.(lt, lc) + loff` and similarly for the right side.
///
/// This is how refinable join predicates (`A.x = B.x` refined into
/// `|A.x - B.x| <= w`, §2.4) are executed.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn band_join(
    left: &Relation,
    (lt, lc): (usize, usize),
    (lscale, loff): (f64, f64),
    right: &Relation,
    (rt, rc): (usize, usize),
    (rscale, roff): (f64, f64),
    width: f64,
    stats: &mut ExecStats,
) -> Relation {
    stats.tuples_scanned += (left.len() + right.len()) as u64;
    let mut lv: Vec<(f64, u32)> = (0..left.len())
        .filter_map(|row| {
            let v = left.get_f64(row, lt, lc)?;
            (!v.is_nan()).then_some((lscale * v + loff, row as u32))
        })
        .collect();
    let mut rv: Vec<(f64, u32)> = (0..right.len())
        .filter_map(|row| {
            let v = right.get_f64(row, rt, rc)?;
            (!v.is_nan()).then_some((rscale * v + roff, row as u32))
        })
        .collect();
    lv.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
    rv.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));

    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut start = 0usize;
    for &(x, lrow) in &lv {
        // Advance the window start past values below x - width.
        while start < rv.len() && rv[start].0 < x - width {
            start += 1;
        }
        let mut j = start;
        while j < rv.len() && rv[j].0 <= x + width {
            pairs.push((lrow, rv[j].1));
            j += 1;
        }
    }
    stats.rows_joined += pairs.len() as u64;
    // Keep output deterministic regardless of the sort order above.
    pairs.sort_unstable();
    Relation::zip_join(left, right, &pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::table::TableBuilder;
    use crate::value::{DataType, Value};
    use std::sync::Arc;

    fn rel(name: &str, vals: &[f64]) -> Relation {
        let mut b = TableBuilder::new(name, vec![Field::new("x", DataType::Float)]).unwrap();
        for &v in vals {
            b.push_row(vec![Value::Float(v)]);
        }
        Relation::table(Arc::new(b.finish().unwrap()))
    }

    /// Reference nested-loop band join for cross-checking.
    fn nested_band(l: &[f64], r: &[f64], w: f64) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (i, &a) in l.iter().enumerate() {
            for (j, &b) in r.iter().enumerate() {
                if (a - b).abs() <= w {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    #[test]
    fn equi_join_matches() {
        let l = rel("l", &[1.0, 2.0, 3.0, 2.0]);
        let r = rel("r", &[2.0, 4.0]);
        let mut stats = ExecStats::default();
        let j = hash_equi_join(&l, (0, 0), &r, (0, 0), &mut stats);
        assert_eq!(j.len(), 2); // rows 1 and 3 of l match row 0 of r
        assert_eq!(stats.rows_joined, 2);
        assert!(stats.tuples_scanned >= 6);
        for row in 0..j.len() {
            assert_eq!(j.get_f64(row, 0, 0), j.get_f64(row, 1, 0));
        }
    }

    #[test]
    fn equi_join_empty_result() {
        let l = rel("l", &[1.0]);
        let r = rel("r", &[2.0]);
        let mut stats = ExecStats::default();
        let j = hash_equi_join(&l, (0, 0), &r, (0, 0), &mut stats);
        assert!(j.is_empty());
    }

    #[test]
    fn equi_join_ignores_nan() {
        let l = rel("l", &[f64::NAN]);
        let r = rel("r", &[f64::NAN]);
        let mut stats = ExecStats::default();
        let j = hash_equi_join(&l, (0, 0), &r, (0, 0), &mut stats);
        assert!(j.is_empty(), "NaN keys must not match");
    }

    #[test]
    fn equi_join_negative_zero() {
        let l = rel("l", &[-0.0]);
        let r = rel("r", &[0.0]);
        let mut stats = ExecStats::default();
        let j = hash_equi_join(&l, (0, 0), &r, (0, 0), &mut stats);
        assert_eq!(j.len(), 1, "-0.0 equals 0.0");
    }

    #[test]
    fn band_join_matches_nested_loop() {
        let lvals = [1.0, 5.0, 9.0, 2.5];
        let rvals = [2.0, 6.0, 20.0];
        for w in [0.0, 1.0, 3.0, 100.0] {
            let l = rel("l", &lvals);
            let r = rel("r", &rvals);
            let mut stats = ExecStats::default();
            let j = band_join(
                &l,
                (0, 0),
                (1.0, 0.0),
                &r,
                (0, 0),
                (1.0, 0.0),
                w,
                &mut stats,
            );
            let expected = nested_band(&lvals, &rvals, w);
            assert_eq!(j.len(), expected.len(), "width {w}");
            let mut got: Vec<(u32, u32)> = (0..j.len())
                .map(|row| (j.base_row(row, 0), j.base_row(row, 1)))
                .collect();
            got.sort_unstable();
            assert_eq!(got, expected, "width {w}");
        }
    }

    #[test]
    fn band_join_applies_linear_scaling() {
        // 2*l.x vs 3*r.x with width 0: 2*3 == 3*2.
        let l = rel("l", &[3.0, 1.0]);
        let r = rel("r", &[2.0, 5.0]);
        let mut stats = ExecStats::default();
        let j = band_join(
            &l,
            (0, 0),
            (2.0, 0.0),
            &r,
            (0, 0),
            (3.0, 0.0),
            0.0,
            &mut stats,
        );
        assert_eq!(j.len(), 1);
        assert_eq!(j.base_row(0, 0), 0);
        assert_eq!(j.base_row(0, 1), 0);
    }

    #[test]
    fn band_join_width_zero_is_equi() {
        let l = rel("l", &[1.0, 2.0]);
        let r = rel("r", &[2.0, 2.0]);
        let mut stats = ExecStats::default();
        let j = band_join(
            &l,
            (0, 0),
            (1.0, 0.0),
            &r,
            (0, 0),
            (1.0, 0.0),
            0.0,
            &mut stats,
        );
        assert_eq!(j.len(), 2);
    }
}

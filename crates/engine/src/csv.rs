//! CSV import/export, so catalogs can be loaded from real data.
//!
//! A small RFC-4180-style reader/writer (quoted fields, embedded commas,
//! doubled quotes, CRLF) with type inference: a column whose values all
//! parse as integers becomes `INT`, all-numeric becomes `FLOAT`, anything
//! else `STR`. Empty fields are rejected — the engine's columns are
//! non-nullable by design (see `DESIGN.md`).

use std::fmt::Write as _;
use std::path::Path;

use crate::column::ColumnData;
use crate::error::{EngineError, EngineResult};
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{DataType, Value};

/// Parses one CSV record (handles quotes); returns the fields.
fn parse_record(line: &str, source: &str, lineno: usize) -> EngineResult<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    loop {
        match chars.next() {
            None => {
                if in_quotes {
                    return Err(EngineError::Malformed {
                        source: source.to_string(),
                        line: lineno,
                        message: "unterminated quoted field".to_string(),
                    });
                }
                fields.push(std::mem::take(&mut cur));
                return Ok(fields);
            }
            Some('"') if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            Some('"') if cur.is_empty() && !in_quotes => in_quotes = true,
            Some(',') if !in_quotes => fields.push(std::mem::take(&mut cur)),
            Some(c) => cur.push(c),
        }
    }
}

/// Infers the narrowest type that fits every value of a column.
fn infer_type(values: &[(usize, Vec<String>)], col: usize) -> DataType {
    let mut ty = DataType::Int;
    for (_, row) in values {
        let v = &row[col];
        match ty {
            DataType::Int => {
                if v.parse::<i64>().is_err() {
                    ty = if v.parse::<f64>().is_ok() {
                        DataType::Float
                    } else {
                        DataType::Str
                    };
                }
            }
            DataType::Float => {
                if v.parse::<f64>().is_err() {
                    ty = DataType::Str;
                }
            }
            DataType::Str => return DataType::Str,
        }
    }
    ty
}

/// Reads a CSV file (first row = header) into a table named `name`, with
/// inferred column types.
pub fn read_csv(name: &str, path: impl AsRef<Path>) -> EngineResult<Table> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| EngineError::Io(format!("{}: {e}", path.display())))?;
    read_csv_str(name, &path.display().to_string(), &text)
}

/// Reads CSV text (first row = header) into a table named `name`.
pub fn read_csv_str(name: &str, source: &str, text: &str) -> EngineResult<Table> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let Some((hline, header)) = lines.next() else {
        return Err(EngineError::Malformed {
            source: source.to_string(),
            line: 1,
            message: "empty CSV (missing header)".to_string(),
        });
    };
    let names = parse_record(header, source, hline + 1)?;
    let ncols = names.len();

    let mut rows: Vec<(usize, Vec<String>)> = Vec::new();
    for (i, line) in lines {
        let rec = parse_record(line, source, i + 1)?;
        if rec.len() != ncols {
            return Err(EngineError::Malformed {
                source: source.to_string(),
                line: i + 1,
                message: format!("expected {ncols} fields, found {}", rec.len()),
            });
        }
        if rec.iter().any(String::is_empty) {
            return Err(EngineError::Malformed {
                source: source.to_string(),
                line: i + 1,
                message: "empty field (columns are non-nullable)".to_string(),
            });
        }
        rows.push((i + 1, rec));
    }

    let types: Vec<DataType> = (0..ncols).map(|c| infer_type(&rows, c)).collect();
    let fields: Vec<Field> = names
        .iter()
        .zip(&types)
        .map(|(n, t)| Field::new(n.trim(), *t))
        .collect();
    let schema = Schema::new(fields)?;
    let mut columns: Vec<ColumnData> = types
        .iter()
        .map(|&t| ColumnData::with_capacity(t, rows.len()))
        .collect();
    for (lineno, rec) in &rows {
        for (c, v) in rec.iter().enumerate() {
            let bad_value = || EngineError::Malformed {
                source: source.to_string(),
                line: *lineno,
                message: format!("{v:?} does not parse as inferred type {:?}", types[c]),
            };
            let value = match types[c] {
                DataType::Int => Value::Int(v.parse::<i64>().map_err(|_| bad_value())?),
                DataType::Float => Value::Float(v.parse::<f64>().map_err(|_| bad_value())?),
                DataType::Str => Value::from(v.as_str()),
            };
            columns[c].push(value);
        }
    }
    Table::from_columns(name, schema, columns)
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serialises a table as CSV text (header + rows).
#[must_use]
pub fn write_csv_string(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table
        .schema()
        .fields()
        .iter()
        .map(|f| escape(&f.name))
        .collect();
    let _ = writeln!(out, "{}", header.join(","));
    for row in 0..table.num_rows() {
        let cells: Vec<String> = (0..table.schema().len())
            .map(|c| match table.value(row, c) {
                Value::Int(i) => i.to_string(),
                // Keep a decimal point on integral floats so the column
                // re-infers as FLOAT on the way back in (schema-stable
                // round trips; caught by the csv_roundtrip property test).
                Value::Float(f) if f.fract() == 0.0 && f.is_finite() => format!("{f:.1}"),
                Value::Float(f) => format!("{f}"),
                Value::Str(s) => escape(&s),
            })
            .collect();
        let _ = writeln!(out, "{}", cells.join(","));
    }
    out
}

/// Writes a table to a CSV file.
pub fn write_csv(table: &Table, path: impl AsRef<Path>) -> EngineResult<()> {
    let path = path.as_ref();
    std::fs::write(path, write_csv_string(table))
        .map_err(|e| EngineError::Io(format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_inference() {
        let text = "id,price,name\n1,9.5,apple\n2,3,\"pear, green\"\n3,4.25,\"say \"\"hi\"\"\"\n";
        let t = read_csv_str("fruit", "test", text).unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.schema().field("id").unwrap().dtype, DataType::Int);
        assert_eq!(t.schema().field("price").unwrap().dtype, DataType::Float);
        assert_eq!(t.schema().field("name").unwrap().dtype, DataType::Str);
        assert_eq!(
            t.column_by_name("name").unwrap().get_str(1),
            Some("pear, green")
        );
        assert_eq!(
            t.column_by_name("name").unwrap().get_str(2),
            Some("say \"hi\"")
        );

        let back = write_csv_string(&t);
        let t2 = read_csv_str("fruit", "test2", &back).unwrap();
        assert_eq!(t2.num_rows(), 3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(t.value(r, c), t2.value(r, c));
            }
        }
    }

    #[test]
    fn int_column_with_float_value_widens() {
        let t = read_csv_str("t", "test", "x\n1\n2.5\n3\n").unwrap();
        assert_eq!(t.schema().field("x").unwrap().dtype, DataType::Float);
        assert_eq!(t.column_by_name("x").unwrap().get_f64(1), Some(2.5));
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(matches!(
            read_csv_str("t", "s", "").unwrap_err(),
            EngineError::Malformed { .. }
        ));
        assert!(matches!(
            read_csv_str("t", "s", "a,b\n1\n").unwrap_err(),
            EngineError::Malformed { line: 2, .. }
        ));
        assert!(matches!(
            read_csv_str("t", "s", "a\n\"oops\n").unwrap_err(),
            EngineError::Malformed { .. }
        ));
        assert!(matches!(
            read_csv_str("t", "s", "a,b\n1,\n").unwrap_err(),
            EngineError::Malformed { .. }
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("acq_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let t = read_csv_str("t", "mem", "a,b\n1,x\n2,y\n").unwrap();
        write_csv(&t, &path).unwrap();
        let t2 = read_csv("t", &path).unwrap();
        assert_eq!(t2.num_rows(), 2);
        assert_eq!(t2.column_by_name("b").unwrap().get_str(1), Some("y"));
        let missing = read_csv("t", dir.join("nope.csv"));
        assert!(matches!(missing.unwrap_err(), EngineError::Io(_)));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let t = read_csv_str("t", "s", "a\n1\n\n2\n\n").unwrap();
        assert_eq!(t.num_rows(), 2);
    }
}

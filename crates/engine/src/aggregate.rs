//! Mergeable aggregate states: the optimal-substructure "+" of §2.6.
//!
//! ACQUIRE only ever executes *cell* sub-queries and combines their partial
//! aggregates through the recurrences of §5.1.2. That combination is the
//! `merge` operation here: addition for COUNT/SUM, min/max for MIN/MAX
//! (footnote 1 of the paper), and component-wise merge of (SUM, COUNT) for
//! AVG. User-defined aggregates participate through [`UdaState`], whose
//! mergeable-state interface guarantees the optimal substructure property by
//! construction.

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use acq_query::{AggFunc, AggregateSpec};

use crate::error::{EngineError, EngineResult};

/// State of a user-defined aggregate.
///
/// Implementations must satisfy, for all states `a`, `b` and values `v`:
/// `merge` is associative and commutative with the empty state as identity —
/// exactly the optimal substructure property of §2.6.
pub trait UdaState: fmt::Debug + Send + Sync {
    /// Folds one input value into the state.
    fn update(&mut self, v: f64);
    /// Merges another state of the same concrete type into this one.
    fn merge(&mut self, other: &dyn UdaState) -> EngineResult<()>;
    /// The aggregate value, `None` when undefined on an empty input.
    fn value(&self) -> Option<f64>;
    /// Clones the state behind the trait object.
    fn clone_box(&self) -> Box<dyn UdaState>;
    /// Downcast support for `merge`.
    fn as_any(&self) -> &dyn Any;
}

impl Clone for Box<dyn UdaState> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Registry of user-defined aggregate factories, keyed by upper-case name.
#[derive(Default, Clone)]
pub struct UdaRegistry {
    factories: HashMap<String, Arc<dyn Fn() -> Box<dyn UdaState> + Send + Sync>>,
}

impl fmt::Debug for UdaRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&String> = self.factories.keys().collect();
        names.sort();
        f.debug_struct("UdaRegistry")
            .field("registered", &names)
            .finish()
    }
}

impl UdaRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a factory under `name` (case-insensitive).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn UdaState> + Send + Sync + 'static,
    ) {
        self.factories
            .insert(name.into().to_ascii_uppercase(), Arc::new(factory));
    }

    /// Instantiates an empty state for `name`.
    pub fn instantiate(&self, name: &str) -> EngineResult<Box<dyn UdaState>> {
        self.factories
            .get(&name.to_ascii_uppercase())
            .map(|f| f())
            .ok_or_else(|| EngineError::UnknownUda(name.to_string()))
    }

    /// Whether `name` is registered.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(&name.to_ascii_uppercase())
    }
}

/// A partial aggregate over some set of tuples, mergeable with disjoint
/// partials per the optimal substructure property.
#[derive(Debug, Clone)]
pub enum AggState {
    /// `COUNT(*)`.
    Count(u64),
    /// `SUM(attr)`. The sum of an empty set is 0 here (simpler than SQL's
    /// NULL and what the refinement search needs).
    Sum(f64),
    /// `MIN(attr)`, `None` on empty input.
    Min(Option<f64>),
    /// `MAX(attr)`, `None` on empty input.
    Max(Option<f64>),
    /// `AVG(attr)` decomposed into SUM and COUNT (§2.6): *"SUM and COUNT
    /// aggregates are computed and stored separately; AVERAGE is computed
    /// from these values as required"* (footnote 1).
    Avg {
        /// Running sum.
        sum: f64,
        /// Running count.
        count: u64,
    },
    /// A user-defined aggregate state.
    Uda(Box<dyn UdaState>),
}

impl AggState {
    /// An empty (identity) state for the given aggregate.
    pub fn empty(spec: &AggregateSpec, registry: &UdaRegistry) -> EngineResult<Self> {
        Ok(match &spec.func {
            AggFunc::Count => Self::Count(0),
            AggFunc::Sum => Self::Sum(0.0),
            AggFunc::Min => Self::Min(None),
            AggFunc::Max => Self::Max(None),
            AggFunc::Avg => Self::Avg { sum: 0.0, count: 0 },
            AggFunc::Uda(name) => Self::Uda(registry.instantiate(name)?),
        })
    }

    /// Folds one tuple into the state; `v` is the aggregated column's value
    /// for that tuple (ignored by COUNT).
    pub fn update(&mut self, v: f64) {
        match self {
            Self::Count(c) => *c += 1,
            Self::Sum(s) => *s += v,
            Self::Min(m) => *m = Some(m.map_or(v, |cur| cur.min(v))),
            Self::Max(m) => *m = Some(m.map_or(v, |cur| cur.max(v))),
            Self::Avg { sum, count } => {
                *sum += v;
                *count += 1;
            }
            Self::Uda(state) => state.update(v),
        }
    }

    /// Folds a run of values in iteration order. Bit-identical to calling
    /// [`AggState::update`] once per value — same accumulator, same
    /// operation order — with the variant dispatch hoisted out of the loop
    /// so the kernels' inner fold stays branch-free.
    pub fn update_many(&mut self, vals: impl Iterator<Item = f64>) {
        match self {
            Self::Count(c) => *c += vals.count() as u64,
            Self::Sum(s) => {
                for v in vals {
                    *s += v;
                }
            }
            Self::Min(m) => {
                for v in vals {
                    *m = Some(m.map_or(v, |cur| cur.min(v)));
                }
            }
            Self::Max(m) => {
                for v in vals {
                    *m = Some(m.map_or(v, |cur| cur.max(v)));
                }
            }
            Self::Avg { sum, count } => {
                for v in vals {
                    *sum += v;
                    *count += 1;
                }
            }
            Self::Uda(state) => {
                for v in vals {
                    state.update(v);
                }
            }
        }
    }

    /// Merges a partial aggregate over a disjoint tuple set into this one —
    /// the "+" of Eq. 9–17.
    pub fn merge(&mut self, other: &AggState) -> EngineResult<()> {
        match (self, other) {
            (Self::Count(a), Self::Count(b)) => *a += b,
            (Self::Sum(a), Self::Sum(b)) => *a += b,
            (Self::Min(a), Self::Min(b)) => {
                if let Some(bv) = b {
                    *a = Some(a.map_or(*bv, |av| av.min(*bv)));
                }
            }
            (Self::Max(a), Self::Max(b)) => {
                if let Some(bv) = b {
                    *a = Some(a.map_or(*bv, |av| av.max(*bv)));
                }
            }
            (Self::Avg { sum: s1, count: c1 }, Self::Avg { sum: s2, count: c2 }) => {
                *s1 += s2;
                *c1 += c2;
            }
            (Self::Uda(a), Self::Uda(b)) => a.merge(b.as_ref())?,
            _ => return Err(EngineError::StateMismatch),
        }
        Ok(())
    }

    /// The aggregate's value: `None` when undefined on empty input
    /// (MIN/MAX/AVG of zero tuples).
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        match self {
            Self::Count(c) => Some(*c as f64),
            Self::Sum(s) => Some(*s),
            Self::Min(m) => *m,
            Self::Max(m) => *m,
            Self::Avg { sum, count } => (*count > 0).then(|| sum / *count as f64),
            Self::Uda(state) => state.value(),
        }
    }

    /// Number of tuples folded in, when the state tracks it.
    #[must_use]
    pub fn count(&self) -> Option<u64> {
        match self {
            Self::Count(c) => Some(*c),
            Self::Avg { count, .. } => Some(*count),
            _ => None,
        }
    }
}

/// Sum-of-squares: the example user-defined aggregate used across the test
/// suite and documentation. Satisfies the OSP because disjoint sums of
/// squares add.
#[derive(Debug, Clone, Default)]
pub struct SumSquares {
    total: f64,
    seen: u64,
}

impl UdaState for SumSquares {
    fn update(&mut self, v: f64) {
        self.total += v * v;
        self.seen += 1;
    }

    fn merge(&mut self, other: &dyn UdaState) -> EngineResult<()> {
        let other = other
            .as_any()
            .downcast_ref::<SumSquares>()
            .ok_or(EngineError::StateMismatch)?;
        self.total += other.total;
        self.seen += other.seen;
        Ok(())
    }

    fn value(&self) -> Option<f64> {
        Some(self.total)
    }

    fn clone_box(&self) -> Box<dyn UdaState> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_query::ColRef;

    fn registry() -> UdaRegistry {
        let mut r = UdaRegistry::new();
        r.register("sumsq", || Box::<SumSquares>::default());
        r
    }

    #[test]
    fn count_update_and_merge() {
        let mut a = AggState::Count(0);
        a.update(0.0);
        a.update(0.0);
        let b = AggState::Count(5);
        a.merge(&b).unwrap();
        assert_eq!(a.value(), Some(7.0));
        assert_eq!(a.count(), Some(7));
    }

    #[test]
    fn sum_of_empty_is_zero() {
        let s = AggState::Sum(0.0);
        assert_eq!(s.value(), Some(0.0));
    }

    #[test]
    fn min_max_merge_with_empty_identity() {
        let mut m = AggState::Min(None);
        assert_eq!(m.value(), None);
        m.merge(&AggState::Min(Some(3.0))).unwrap();
        m.merge(&AggState::Min(None)).unwrap();
        m.update(-1.0);
        assert_eq!(m.value(), Some(-1.0));

        let mut x = AggState::Max(Some(2.0));
        x.merge(&AggState::Max(Some(9.0))).unwrap();
        assert_eq!(x.value(), Some(9.0));
    }

    #[test]
    fn avg_decomposes_into_sum_and_count() {
        let mut a = AggState::Avg { sum: 0.0, count: 0 };
        assert_eq!(a.value(), None);
        a.update(10.0);
        a.update(20.0);
        let b = AggState::Avg {
            sum: 30.0,
            count: 1,
        };
        a.merge(&b).unwrap();
        assert_eq!(a.value(), Some(20.0)); // (10+20+30)/3
    }

    #[test]
    fn merge_kind_mismatch_errors() {
        let mut a = AggState::Count(0);
        assert_eq!(
            a.merge(&AggState::Sum(1.0)).unwrap_err(),
            EngineError::StateMismatch
        );
    }

    /// §8.4.6: "we omit MIN since this can be written as the MAX(-1 *
    /// attribute)" — our native MIN agrees with that rewriting.
    #[test]
    fn min_is_negated_max_of_negated_values() {
        let vals = [3.0, -7.5, 0.0, 12.25, -7.4];
        let mut min = AggState::Min(None);
        let mut neg_max = AggState::Max(None);
        for &v in &vals {
            min.update(v);
            neg_max.update(-v);
        }
        assert_eq!(min.value(), neg_max.value().map(|m| -m));
    }

    #[test]
    fn merge_order_independent() {
        // OSP sanity: (a + b) + c == a + (b + c), and any order works.
        let parts = [1.0, -3.5, 2.0, 10.0];
        let mut left = AggState::Sum(0.0);
        for v in parts {
            left.update(v);
        }
        let mut right = AggState::Sum(0.0);
        for v in parts.iter().rev() {
            right.update(*v);
        }
        assert_eq!(left.value(), right.value());
    }

    #[test]
    fn uda_roundtrip() {
        let reg = registry();
        let spec = AggregateSpec::uda("SUMSQ", ColRef::new("t", "x"));
        let mut s = AggState::empty(&spec, &reg).unwrap();
        s.update(3.0);
        s.update(4.0);
        let mut t = AggState::empty(&spec, &reg).unwrap();
        t.update(1.0);
        s.merge(&t).unwrap();
        assert_eq!(s.value(), Some(26.0));
    }

    #[test]
    fn unknown_uda_errors() {
        let reg = registry();
        let spec = AggregateSpec::uda("nope", ColRef::new("t", "x"));
        assert!(matches!(
            AggState::empty(&spec, &reg).unwrap_err(),
            EngineError::UnknownUda(_)
        ));
    }

    #[test]
    fn registry_is_case_insensitive() {
        let reg = registry();
        assert!(reg.contains("SumSq"));
        assert!(reg.instantiate("SUMSQ").is_ok());
    }
}

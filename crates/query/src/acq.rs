//! The Aggregation Constrained Query itself.

use std::fmt;

use crate::aggregate::{AggConstraint, AggFunc};
use crate::error_fn::AggErrorFn;
use crate::interval::Interval;
use crate::norm::Norm;
use crate::predicate::{ColRef, PredFunction, Predicate};

/// A structural equi-join marked NOREFINE: it defines how relations are
/// connected but never participates in refinement (e.g. the
/// `s_suppkey = ps_suppkey NOREFINE` joins of the paper's Q2').
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquiJoin {
    /// Left join key.
    pub left: ColRef,
    /// Right join key.
    pub right: ColRef,
}

impl fmt::Display for EquiJoin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} = {}) NOREFINE", self.left, self.right)
    }
}

/// Errors raised while constructing or validating an [`AcqQuery`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AcqError {
    /// The query references no tables.
    NoTables,
    /// No predicate is refinable, so the refined space has zero dimensions.
    NoRefinablePredicate,
    /// A column reference lacks a table qualifier after binding.
    UnresolvedColumn(ColRef),
    /// The aggregate needs a column argument but none was given.
    MissingAggregateColumn(AggFunc),
    /// `COUNT` takes no column argument.
    UnexpectedAggregateColumn,
    /// The aggregate lacks the optimal substructure property.
    UnsupportedAggregate(String),
    /// The norm parameters do not match the query.
    InvalidNorm(String),
    /// Target aggregate values must be finite.
    InvalidTarget(f64),
}

impl fmt::Display for AcqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoTables => write!(f, "query references no tables"),
            Self::NoRefinablePredicate => {
                write!(f, "every predicate is NOREFINE; nothing can be refined")
            }
            Self::UnresolvedColumn(c) => write!(f, "unresolved column reference: {c}"),
            Self::MissingAggregateColumn(a) => {
                write!(f, "aggregate {a} requires a column argument")
            }
            Self::UnexpectedAggregateColumn => write!(f, "COUNT(*) takes no column argument"),
            Self::UnsupportedAggregate(msg) => write!(f, "{msg}"),
            Self::InvalidNorm(msg) => write!(f, "invalid norm: {msg}"),
            Self::InvalidTarget(t) => write!(f, "aggregate target must be finite, got {t}"),
        }
    }
}

impl std::error::Error for AcqError {}

/// An Aggregation Constrained Query: tables, structural joins, predicates
/// (refinable and NOREFINE), the aggregate constraint, and the error measure
/// used to judge candidate refinements.
#[derive(Debug, Clone, PartialEq)]
pub struct AcqQuery {
    /// Referenced tables, in FROM-clause order.
    pub tables: Vec<String>,
    /// NOREFINE equi-joins connecting the tables.
    pub structural_joins: Vec<EquiJoin>,
    /// All predicates (refinable ones span the refined space).
    pub predicates: Vec<Predicate>,
    /// The `CONSTRAINT` clause.
    pub constraint: AggConstraint,
    /// Aggregate error measure (§2.5); defaults per aggregate.
    pub error_fn: AggErrorFn,
}

impl AcqQuery {
    /// Starts a builder.
    #[must_use]
    pub fn builder() -> AcqQueryBuilder {
        AcqQueryBuilder::default()
    }

    /// Indices (into [`AcqQuery::predicates`]) of the refinable predicates,
    /// i.e. the dimensions of the refined space, in declaration order.
    #[must_use]
    pub fn flexible(&self) -> Vec<usize> {
        self.predicates
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.refinable.then_some(i))
            .collect()
    }

    /// Number of refinement dimensions `d`.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.predicates.iter().filter(|p| p.refinable).count()
    }

    /// Validates the query for structural soundness.
    pub fn validate(&self) -> Result<(), AcqError> {
        if self.tables.is_empty() {
            return Err(AcqError::NoTables);
        }
        if self.dims() == 0 {
            return Err(AcqError::NoRefinablePredicate);
        }
        if !self.constraint.target.is_finite() {
            return Err(AcqError::InvalidTarget(self.constraint.target));
        }
        match (&self.constraint.spec.func, &self.constraint.spec.col) {
            (AggFunc::Count, Some(_)) => return Err(AcqError::UnexpectedAggregateColumn),
            (f, None) if f.needs_column() => {
                return Err(AcqError::MissingAggregateColumn(f.clone()))
            }
            _ => {}
        }
        for col in self.referenced_columns() {
            if col.table.is_none() {
                return Err(AcqError::UnresolvedColumn(col.clone()));
            }
        }
        Ok(())
    }

    /// Validates the query together with the norm that will score it.
    pub fn validate_with_norm(&self, norm: &Norm) -> Result<(), AcqError> {
        self.validate()?;
        norm.validate(self.dims()).map_err(AcqError::InvalidNorm)
    }

    /// All column references in the query (joins, predicates, aggregate).
    #[must_use]
    pub fn referenced_columns(&self) -> Vec<&ColRef> {
        let mut cols = Vec::new();
        for j in &self.structural_joins {
            cols.push(&j.left);
            cols.push(&j.right);
        }
        for p in &self.predicates {
            match &p.func {
                PredFunction::Attr(c) => cols.push(c),
                PredFunction::JoinDelta { left, right } => {
                    cols.push(&left.col);
                    cols.push(&right.col);
                }
                PredFunction::Categorical { col, .. } => cols.push(col),
            }
        }
        if let Some(c) = &self.constraint.spec.col {
            cols.push(c);
        }
        cols
    }

    /// The per-predicate intervals of the query refined by the given PScore
    /// vector over its flexible predicates; NOREFINE predicates keep their
    /// original intervals.
    #[must_use]
    pub fn refined_intervals(&self, flex_scores: &[f64]) -> Vec<Interval> {
        let flex = self.flexible();
        assert_eq!(
            flex.len(),
            flex_scores.len(),
            "one PScore per flexible predicate"
        );
        let mut intervals: Vec<Interval> = self.predicates.iter().map(|p| p.interval).collect();
        for (k, &i) in flex.iter().enumerate() {
            intervals[i] = self.predicates[i].refined_interval(flex_scores[k]);
        }
        intervals
    }

    /// Renders the query in the paper's extended SQL (`CONSTRAINT` +
    /// `NOREFINE` keywords, §2.1).
    #[must_use]
    pub fn to_sql(&self) -> String {
        self.render_sql(None)
    }

    /// Renders the query refined by `flex_scores`, i.e. one of ACQUIRE's
    /// output queries.
    #[must_use]
    pub fn refined_sql(&self, flex_scores: &[f64]) -> String {
        self.render_sql(Some(flex_scores))
    }

    fn render_sql(&self, flex_scores: Option<&[f64]>) -> String {
        let intervals = match flex_scores {
            Some(s) => self.refined_intervals(s),
            None => self.predicates.iter().map(|p| p.interval).collect(),
        };
        let mut out = format!(
            "SELECT * FROM {} {}",
            self.tables.join(", "),
            self.constraint
        );
        let mut clauses: Vec<String> = self
            .structural_joins
            .iter()
            .map(ToString::to_string)
            .collect();
        for (p, iv) in self.predicates.iter().zip(&intervals) {
            for (clause, fixed) in render_predicate(p, iv) {
                if fixed || !p.refinable {
                    clauses.push(format!("{clause} NOREFINE"));
                } else {
                    clauses.push(clause);
                }
            }
        }
        if !clauses.is_empty() {
            out.push_str(" WHERE ");
            out.push_str(&clauses.join(" AND "));
        }
        out
    }
}

/// Formats a bound for SQL rendering. Uses Rust's shortest
/// exact-round-trip float formatting: the printed literal parses back to
/// the identical `f64`, so re-compiling a rendered query never moves a
/// predicate bound (a six-digit truncation here would silently exclude
/// boundary tuples — caught by the `acq-sql` round-trip property test).
fn fmt_bound(v: f64) -> String {
    format!("{v}")
}

/// Renders one predicate as `(clause, fixed)` pairs; `fixed` marks guard
/// clauses that must carry NOREFINE so the rendered statement re-compiles
/// with the *same* refinability structure (§2.2 splits ranges into two
/// one-sided predicates — the fixed side must not silently become
/// refinable on the way back in).
fn render_predicate(p: &Predicate, iv: &Interval) -> Vec<(String, bool)> {
    match &p.func {
        PredFunction::Attr(c) => {
            if iv.width() == 0.0 {
                return vec![(format!("({c} = {})", fmt_bound(iv.lo())), false)];
            }
            match p.refine {
                crate::RefineSide::Upper => {
                    // The lower bound is the fixed side; omit it when it is
                    // no tighter than the data domain (the binder recreates
                    // it from statistics), otherwise emit a NOREFINE guard.
                    let redundant = p.domain.is_some_and(|d| iv.lo() <= d.lo());
                    let mut out = Vec::new();
                    if !redundant {
                        out.push((format!("({c} >= {})", fmt_bound(iv.lo())), true));
                    }
                    out.push((format!("({c} <= {})", fmt_bound(iv.hi())), false));
                    out
                }
                crate::RefineSide::Lower => {
                    let redundant = p.domain.is_some_and(|d| iv.hi() >= d.hi());
                    let mut out = vec![(format!("({c} >= {})", fmt_bound(iv.lo())), false)];
                    if !redundant {
                        out.push((format!("({c} <= {})", fmt_bound(iv.hi())), true));
                    }
                    out
                }
            }
        }
        PredFunction::JoinDelta { left, right } => {
            if iv.hi() == 0.0 {
                vec![(format!("({left} = {right})"), false)]
            } else {
                vec![(
                    format!("(|{left} - {right}| <= {})", fmt_bound(iv.hi())),
                    false,
                )]
            }
        }
        PredFunction::Categorical {
            col,
            accepted,
            ontology,
        } => {
            // A refined categorical predicate rolls the accepted set up; we
            // render the roll-up level implied by the interval's upper bound.
            let height = ontology.height().max(1) as f64;
            let levels = (iv.hi() / (100.0 / height)).round() as u32;
            if levels == 0 {
                vec![(format!("({col} IN {{{}}})", accepted.join(", ")), false)]
            } else {
                vec![(
                    format!("({col} IN rollup({{{}}}, {levels}))", accepted.join(", ")),
                    false,
                )]
            }
        }
    }
}

/// Fluent builder for [`AcqQuery`]. `build` validates the result.
#[derive(Debug, Default)]
pub struct AcqQueryBuilder {
    tables: Vec<String>,
    structural_joins: Vec<EquiJoin>,
    predicates: Vec<Predicate>,
    constraint: Option<AggConstraint>,
    error_fn: Option<AggErrorFn>,
}

impl AcqQueryBuilder {
    /// Adds a table to the FROM clause.
    #[must_use]
    pub fn table(mut self, name: impl Into<String>) -> Self {
        self.tables.push(name.into());
        self
    }

    /// Adds a NOREFINE structural equi-join.
    #[must_use]
    pub fn join(mut self, left: ColRef, right: ColRef) -> Self {
        self.structural_joins.push(EquiJoin { left, right });
        self
    }

    /// Adds a predicate (refinable unless marked otherwise).
    #[must_use]
    pub fn predicate(mut self, p: Predicate) -> Self {
        self.predicates.push(p);
        self
    }

    /// Sets the aggregate constraint.
    #[must_use]
    pub fn constraint(mut self, c: AggConstraint) -> Self {
        self.constraint = Some(c);
        self
    }

    /// Overrides the default aggregate error function.
    #[must_use]
    pub fn error_fn(mut self, e: AggErrorFn) -> Self {
        self.error_fn = Some(e);
        self
    }

    /// Builds and validates the query.
    pub fn build(self) -> Result<AcqQuery, AcqError> {
        let constraint = self.constraint.ok_or(AcqError::InvalidTarget(f64::NAN))?;
        let error_fn = self
            .error_fn
            .unwrap_or_else(|| AggErrorFn::default_for(&constraint.spec.func, constraint.op));
        let q = AcqQuery {
            tables: self.tables,
            structural_joins: self.structural_joins,
            predicates: self.predicates,
            constraint,
            error_fn,
        };
        q.validate()?;
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggregateSpec, CmpOp};
    use crate::predicate::RefineSide;

    fn q3() -> AcqQuery {
        // The paper's Q3: SELECT * FROM A, B WHERE A.x = B.x AND B.y < 50
        AcqQuery::builder()
            .table("A")
            .table("B")
            .predicate(Predicate::equi_join(
                ColRef::new("A", "x"),
                ColRef::new("B", "x"),
            ))
            .predicate(Predicate::select(
                ColRef::new("B", "y"),
                Interval::new(0.0, 50.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(
                AggregateSpec::count(),
                CmpOp::Eq,
                1000.0,
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_valid_query() {
        let q = q3();
        assert_eq!(q.dims(), 2);
        assert_eq!(q.flexible(), vec![0, 1]);
        assert_eq!(q.error_fn, AggErrorFn::Relative);
    }

    #[test]
    fn flexible_skips_norefine() {
        let mut q = q3();
        q.predicates[0].refinable = false;
        assert_eq!(q.dims(), 1);
        assert_eq!(q.flexible(), vec![1]);
    }

    #[test]
    fn validate_rejects_empty_tables() {
        let r = AcqQuery::builder()
            .predicate(Predicate::select(
                ColRef::new("B", "y"),
                Interval::new(0.0, 50.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 10.0))
            .build();
        assert_eq!(r.unwrap_err(), AcqError::NoTables);
    }

    #[test]
    fn validate_rejects_all_norefine() {
        let r = AcqQuery::builder()
            .table("B")
            .predicate(
                Predicate::select(
                    ColRef::new("B", "y"),
                    Interval::new(0.0, 50.0),
                    RefineSide::Upper,
                )
                .no_refine(),
            )
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 10.0))
            .build();
        assert_eq!(r.unwrap_err(), AcqError::NoRefinablePredicate);
    }

    #[test]
    fn validate_rejects_unresolved_columns() {
        let r = AcqQuery::builder()
            .table("B")
            .predicate(Predicate::select(
                ColRef::bare("y"),
                Interval::new(0.0, 50.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 10.0))
            .build();
        assert!(matches!(r.unwrap_err(), AcqError::UnresolvedColumn(_)));
    }

    #[test]
    fn validate_aggregate_column_arity() {
        let missing = AcqQuery::builder()
            .table("B")
            .predicate(Predicate::select(
                ColRef::new("B", "y"),
                Interval::new(0.0, 50.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(
                AggregateSpec {
                    func: AggFunc::Sum,
                    col: None,
                },
                CmpOp::Ge,
                10.0,
            ))
            .build();
        assert!(matches!(
            missing.unwrap_err(),
            AcqError::MissingAggregateColumn(AggFunc::Sum)
        ));

        let extra = AcqQuery::builder()
            .table("B")
            .predicate(Predicate::select(
                ColRef::new("B", "y"),
                Interval::new(0.0, 50.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(
                AggregateSpec {
                    func: AggFunc::Count,
                    col: Some(ColRef::new("B", "y")),
                },
                CmpOp::Eq,
                10.0,
            ))
            .build();
        assert_eq!(extra.unwrap_err(), AcqError::UnexpectedAggregateColumn);
    }

    #[test]
    fn refined_intervals_only_touch_flexible_dims() {
        let mut q = q3();
        q.predicates[0].refinable = false;
        let ivs = q.refined_intervals(&[20.0]);
        assert_eq!(ivs[0], Interval::point(0.0)); // NOREFINE equi-join unchanged
        assert_eq!(ivs[1], Interval::new(0.0, 60.0)); // Example 3 refinement
    }

    #[test]
    fn sql_rendering_roundtrips_the_paper_shape() {
        let q = q3();
        let sql = q.to_sql();
        assert!(sql.contains("SELECT * FROM A, B"), "{sql}");
        assert!(sql.contains("CONSTRAINT COUNT(*) = 1000"), "{sql}");
        assert!(sql.contains("(A.x = B.x)"), "{sql}");
        assert!(sql.contains("(B.y >= 0) NOREFINE"), "{sql}");
        assert!(sql.contains("(B.y <= 50)"), "{sql}");

        let refined = q.refined_sql(&[10.0, 20.0]);
        assert!(refined.contains("(|A.x - B.x| <= 10)"), "{refined}");
        assert!(refined.contains("(B.y <= 60)"), "{refined}");
    }

    #[test]
    fn norm_validation_is_checked() {
        let q = q3();
        assert!(q.validate_with_norm(&Norm::L1).is_ok());
        let bad = Norm::WeightedLp {
            p: 1.0,
            weights: vec![1.0],
        };
        assert!(matches!(
            q.validate_with_norm(&bad),
            Err(AcqError::InvalidNorm(_))
        ));
    }
}

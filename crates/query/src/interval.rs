//! Closed numeric intervals of acceptable predicate-function values.

use std::fmt;

/// A closed interval `[lo, hi]` of acceptable values for a predicate
/// function (the paper's `P_I = (min_I, max_I)`, §2.2).
///
/// Degenerate intervals (`lo == hi`) are allowed and arise from equality
/// predicates (`p_size = 10`) and equi-joins (`A.x = B.x`, whose delta
/// interval is `[0, 0]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates an interval. Panics if `lo > hi` or either bound is NaN; the
    /// query model never produces such intervals and the early panic keeps
    /// downstream arithmetic honest.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            !lo.is_nan() && !hi.is_nan(),
            "interval bounds must not be NaN"
        );
        assert!(
            lo <= hi,
            "interval lower bound {lo} exceeds upper bound {hi}"
        );
        Self { lo, hi }
    }

    /// A degenerate point interval `[v, v]`.
    #[must_use]
    pub fn point(v: f64) -> Self {
        Self::new(v, v)
    }

    /// Lower bound.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width `hi - lo`; zero for point intervals.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `v` lies inside the closed interval.
    #[must_use]
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }

    /// Whether `other` is fully contained in `self`.
    #[must_use]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.lo <= other.lo && self.hi >= other.hi
    }

    /// Returns the interval with its lower bound moved down by `amount >= 0`.
    #[must_use]
    pub fn expand_lower(&self, amount: f64) -> Self {
        debug_assert!(amount >= 0.0);
        Self::new(self.lo - amount, self.hi)
    }

    /// Returns the interval with its upper bound moved up by `amount >= 0`.
    #[must_use]
    pub fn expand_upper(&self, amount: f64) -> Self {
        debug_assert!(amount >= 0.0);
        Self::new(self.lo, self.hi + amount)
    }

    /// Returns the intersection with `other`, or `None` if disjoint.
    #[must_use]
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then(|| Interval::new(lo, hi))
    }

    /// Smallest interval covering both `self` and `other`.
    #[must_use]
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Distance from `v` to the interval: zero inside, otherwise the gap to
    /// the nearest bound.
    #[must_use]
    pub fn distance(&self, v: f64) -> f64 {
        if v < self.lo {
            self.lo - v
        } else if v > self.hi {
            v - self.hi
        } else {
            0.0
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let i = Interval::new(0.0, 50.0);
        assert_eq!(i.lo(), 0.0);
        assert_eq!(i.hi(), 50.0);
        assert_eq!(i.width(), 50.0);
    }

    #[test]
    fn point_interval_has_zero_width() {
        let p = Interval::point(10.0);
        assert_eq!(p.width(), 0.0);
        assert!(p.contains(10.0));
        assert!(!p.contains(10.0001));
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn rejects_inverted_bounds() {
        let _ = Interval::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn rejects_nan() {
        let _ = Interval::new(f64::NAN, 1.0);
    }

    #[test]
    fn contains_is_closed_on_both_ends() {
        let i = Interval::new(2.0, 4.0);
        assert!(i.contains(2.0));
        assert!(i.contains(4.0));
        assert!(!i.contains(1.999_999));
        assert!(!i.contains(4.000_001));
    }

    #[test]
    fn expansion_moves_exactly_one_bound() {
        let i = Interval::new(0.0, 50.0);
        let up = i.expand_upper(10.0);
        assert_eq!((up.lo(), up.hi()), (0.0, 60.0));
        let down = i.expand_lower(5.0);
        assert_eq!((down.lo(), down.hi()), (-5.0, 50.0));
    }

    #[test]
    fn intersect_and_hull() {
        let a = Interval::new(0.0, 10.0);
        let b = Interval::new(5.0, 20.0);
        let c = Interval::new(15.0, 16.0);
        assert_eq!(a.intersect(&b), Some(Interval::new(5.0, 10.0)));
        assert_eq!(a.intersect(&c), None);
        assert_eq!(a.hull(&c), Interval::new(0.0, 16.0));
    }

    #[test]
    fn containment() {
        let outer = Interval::new(0.0, 10.0);
        assert!(outer.contains_interval(&Interval::new(2.0, 3.0)));
        assert!(outer.contains_interval(&outer));
        assert!(!outer.contains_interval(&Interval::new(-1.0, 3.0)));
    }

    #[test]
    fn distance_outside_and_inside() {
        let i = Interval::new(0.0, 50.0);
        assert_eq!(i.distance(25.0), 0.0);
        assert_eq!(i.distance(60.0), 10.0);
        assert_eq!(i.distance(-4.0), 4.0);
    }
}

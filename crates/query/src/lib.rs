//! # acq-query — the Aggregation Constrained Query (ACQ) model
//!
//! This crate defines the *logical* representation of Aggregation Constrained
//! Queries as introduced in *"Refinement Driven Processing of Aggregation
//! Constrained Queries"* (Vartak, Raghavan, Rundensteiner, Madden; EDBT 2016).
//!
//! An ACQ is an ordinary select/join query plus a constraint on an aggregate
//! computed over the query's **result set** (not over individual tuples), for
//! example `COUNT(*) = 1_000_000` or `SUM(ps_availqty) >= 100_000`. Because
//! attribute predicates and aggregate constraints are orthogonal, an ACQ is
//! answered by *refining* (usually widening) the query's predicates as little
//! as possible until the aggregate constraint is met.
//!
//! The crate provides:
//!
//! * [`Interval`] — closed numeric intervals of acceptable predicate-function
//!   values (§2.2 of the paper);
//! * [`Predicate`] / [`PredFunction`] — the decomposition of each predicate
//!   into a monotonic *predicate function* `P_F` and a *predicate interval*
//!   `P_I`, covering selection predicates, equi-joins and non-equi joins, and
//!   categorical predicates scored through an ontology (§2.2, §2.4, §7.3);
//! * [`Norm`] — `L1`, general `Lp`, `L∞` and weighted vector norms used to
//!   fold a per-predicate refinement vector into a single query refinement
//!   score `QScore` (§2.3, Eq. 3);
//! * [`AggregateSpec`] / [`AggConstraint`] — the `CONSTRAINT AGG(attr) Op X`
//!   clause, the five built-in aggregates with the optimal-substructure
//!   property (§2.6) plus named user-defined aggregates;
//! * [`AggErrorFn`] — relative and hinge aggregate error measures (§2.5);
//! * [`AcqQuery`] — the full query: tables, structural (NOREFINE) equi-joins,
//!   predicates, the aggregate constraint and its error function;
//! * [`OntologyTree`] — taxonomy trees for measuring refinement distance
//!   between categorical values (§7.3).
//!
//! Everything here is purely logical; execution lives in `acq-engine` and the
//! refinement search in `acquire-core`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod acq;
mod aggregate;
mod error_fn;
mod interval;
mod norm;
mod ontology;
mod predicate;
mod score;

pub use acq::{AcqError, AcqQuery, AcqQueryBuilder, EquiJoin};
pub use aggregate::{AggConstraint, AggFunc, AggregateSpec, CmpOp};
pub use error_fn::AggErrorFn;
pub use interval::Interval;
pub use norm::Norm;
pub use ontology::{OntologyError, OntologyNodeId, OntologyTree};
pub use predicate::{
    ColRef, LinearExpr, PredFunction, Predicate, RefineSide, EQUIJOIN_WIDTH_BASIS,
};
pub use score::{dominates, PScores};
